"""Disk-backed key-value store.

IPS delegates durability to HBase; :class:`FileKVStore` is the
single-machine stand-in that actually survives a process restart, so the
recovery paths (cache miss after crash, region rebuild) can be exercised
for real.  The design is a minimal append-only log with an in-memory
index:

* every ``set``/``delete`` appends a CRC32-framed record
  ``[0xC3][crc][op][version][key][value]`` to the log file; the checksum
  covers everything after itself, so a bit flip or torn write is detected
  before the record is applied;
* the full key -> (offset, version) index lives in memory and is rebuilt
  by scanning the log on open; the scan stops at the first torn or
  corrupt record and truncates the file there — everything before it
  committed, everything after it never happened;
* logs written before the checksum existed are still readable: a record
  whose lead byte is a raw op code (1 or 2) parses with the legacy
  un-checksummed framing;
* :meth:`compact_log` rewrites the log keeping only live records (in the
  checksummed format), the same role HBase compactions play.

Writes are flushed per operation (``durability="always"``) or on
:meth:`sync` (``durability="batch"``), trading safety for throughput the
way production tuning does.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path

from ..errors import StorageError, VersionConflictError
from .kvstore import VersionedValue
from .wal import fsync_dir

_OP_SET = 1
_OP_DELETE = 2
_HEADER = struct.Struct("<BQII")  # op, version, key_len, value_len
#: Lead byte of CRC-framed records.  Legacy records begin with their op
#: byte (1 or 2), so the formats are distinguishable per record.
_MAGIC_CRC = 0xC3
_CRC_FRAME = struct.Struct("<BI")  # magic, crc32 of everything after


class FileKVStore:
    """Append-only-log KV store with versioned ``xget``/``xset``."""

    def __init__(self, path: str | Path, durability: str = "always") -> None:
        if durability not in ("always", "batch"):
            raise StorageError(
                f"durability must be 'always' or 'batch', got {durability!r}"
            )
        self._path = Path(path)
        self._durability = durability
        self._lock = threading.Lock()
        #: key -> (value, version); values cached in memory for reads, the
        #: log is the durable copy.
        self._index: dict[bytes, VersionedValue] = {}
        self.read_count = 0
        self.write_count = 0
        #: What the opening scan had to cut off (0 for a clean log).
        self.replay_truncated_bytes = 0
        self.replay_corrupt_records = 0
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._replay_log()
        self._log = open(self._path, "ab")

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------

    def _replay_log(self) -> None:
        """Rebuild the index; stop and truncate at the first bad record.

        A torn frame, a CRC mismatch, a nonsense op, or an unknown lead
        byte all mean the same thing: the record never committed (or rot
        got to it), and nothing after it can be trusted — the framing has
        lost sync.  The file is cut back to the last good record so later
        appends cannot hide behind garbage.
        """
        if not self._path.exists():
            return
        data = self._path.read_bytes()
        pos = 0
        while pos < len(data):
            lead = data[pos]
            if lead == _MAGIC_CRC:
                body_start = pos + _CRC_FRAME.size
                if body_start + _HEADER.size > len(data):
                    break  # Torn frame.
                _, crc = _CRC_FRAME.unpack_from(data, pos)
                op, version, key_len, value_len = _HEADER.unpack_from(
                    data, body_start
                )
                end = body_start + _HEADER.size + key_len + value_len
                if end > len(data):
                    break  # Torn body.
                body = data[body_start:end]
                if zlib.crc32(body) != crc or op not in (_OP_SET, _OP_DELETE):
                    self.replay_corrupt_records += 1
                    break
                key_start = body_start + _HEADER.size
                key = data[key_start : key_start + key_len]
                value = data[key_start + key_len : end]
            elif lead in (_OP_SET, _OP_DELETE):
                # Legacy pre-checksum record: nothing to verify beyond
                # the frame lengths.
                if pos + _HEADER.size > len(data):
                    break
                op, version, key_len, value_len = _HEADER.unpack_from(data, pos)
                end = pos + _HEADER.size + key_len + value_len
                if end > len(data):
                    break
                key_start = pos + _HEADER.size
                key = data[key_start : key_start + key_len]
                value = data[key_start + key_len : end]
            else:
                self.replay_corrupt_records += 1
                break
            if op == _OP_SET:
                self._index[key] = VersionedValue(value, version)
            else:
                self._index.pop(key, None)
            pos = end
        if pos < len(data):
            self.replay_truncated_bytes = len(data) - pos
            with open(self._path, "r+b") as log:
                log.truncate(pos)
                log.flush()
                os.fsync(log.fileno())

    @staticmethod
    def _encode_record(
        op: int, key: bytes, value: bytes, version: int
    ) -> bytes:
        body = _HEADER.pack(op, version, len(key), len(value)) + key + value
        return _CRC_FRAME.pack(_MAGIC_CRC, zlib.crc32(body)) + body

    def _append(self, op: int, key: bytes, value: bytes, version: int) -> None:
        self._log.write(self._encode_record(op, key, value, version))
        if self._durability == "always":
            self._log.flush()
            os.fsync(self._log.fileno())

    def sync(self) -> None:
        """Force buffered records to disk (for durability='batch')."""
        with self._lock:
            self._log.flush()
            os.fsync(self._log.fileno())

    def close(self) -> None:
        with self._lock:
            self._log.flush()
            self._log.close()

    # ------------------------------------------------------------------
    # KVStore surface
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        with self._lock:
            self.read_count += 1
            stored = self._index.get(key)
            return stored.value if stored is not None else None

    def set(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self.write_count += 1
            current = self._index.get(key)
            version = current.version + 1 if current is not None else 1
            self._append(_OP_SET, key, value, version)
            self._index[key] = VersionedValue(value, version)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self.write_count += 1
            if key in self._index:
                self._append(_OP_DELETE, key, b"", 0)
                del self._index[key]

    def xget(self, key: bytes) -> VersionedValue | None:
        with self._lock:
            self.read_count += 1
            return self._index.get(key)

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        with self._lock:
            current = self._index.get(key)
            current_version = current.version if current is not None else 0
            if held_version is None:
                if current is not None:
                    raise VersionConflictError(key, 0, current_version)
            elif held_version != current_version:
                raise VersionConflictError(key, held_version, current_version)
            new_version = current_version + 1
            self.write_count += 1
            self._append(_OP_SET, key, value, new_version)
            self._index[key] = VersionedValue(value, new_version)
            return new_version

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def keys(self):
        with self._lock:
            return iter(list(self._index.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def total_value_bytes(self) -> int:
        with self._lock:
            return sum(len(stored.value) for stored in self._index.values())

    def log_bytes(self) -> int:
        """On-disk log size including dead records."""
        with self._lock:
            self._log.flush()
            return self._path.stat().st_size

    def compact_log(self) -> int:
        """Rewrite the log with only live records; returns bytes reclaimed.

        The HBase-compaction analogue: overwritten and deleted records
        accumulate in the append-only log until a rewrite drops them.
        """
        with self._lock:
            self._log.flush()
            before = self._path.stat().st_size
            temp_path = self._path.with_suffix(".compact")
            with open(temp_path, "wb") as temp:
                for key, stored in self._index.items():
                    temp.write(
                        self._encode_record(
                            _OP_SET, key, stored.value, stored.version
                        )
                    )
                temp.flush()
                os.fsync(temp.fileno())
            self._log.close()
            os.replace(temp_path, self._path)
            fsync_dir(self._path.parent)
            self._log = open(self._path, "ab")
            return before - self._path.stat().st_size
