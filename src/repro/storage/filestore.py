"""Disk-backed key-value store.

IPS delegates durability to HBase; :class:`FileKVStore` is the
single-machine stand-in that actually survives a process restart, so the
recovery paths (cache miss after crash, region rebuild) can be exercised
for real.  The design is a minimal append-only log with an in-memory
index:

* every ``set``/``delete`` appends a length-prefixed record
  ``[op][version][key][value]`` to the log file;
* the full key -> (offset, version) index lives in memory and is rebuilt
  by scanning the log on open;
* :meth:`compact_log` rewrites the log keeping only live records, the
  same role HBase compactions play.

Writes are flushed per operation (``durability="always"``) or on
:meth:`sync` (``durability="batch"``), trading safety for throughput the
way production tuning does.
"""

from __future__ import annotations

import os
import struct
import threading
from pathlib import Path

from ..errors import StorageError, VersionConflictError
from .kvstore import VersionedValue

_OP_SET = 1
_OP_DELETE = 2
_HEADER = struct.Struct("<BQII")  # op, version, key_len, value_len


class FileKVStore:
    """Append-only-log KV store with versioned ``xget``/``xset``."""

    def __init__(self, path: str | Path, durability: str = "always") -> None:
        if durability not in ("always", "batch"):
            raise StorageError(
                f"durability must be 'always' or 'batch', got {durability!r}"
            )
        self._path = Path(path)
        self._durability = durability
        self._lock = threading.Lock()
        #: key -> (value, version); values cached in memory for reads, the
        #: log is the durable copy.
        self._index: dict[bytes, VersionedValue] = {}
        self.read_count = 0
        self.write_count = 0
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._replay_log()
        self._log = open(self._path, "ab")

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------

    def _replay_log(self) -> None:
        if not self._path.exists():
            return
        with open(self._path, "rb") as log:
            while True:
                header = log.read(_HEADER.size)
                if not header:
                    break
                if len(header) < _HEADER.size:
                    # Torn tail from a crash mid-append: ignore it, the
                    # record never committed.
                    break
                op, version, key_len, value_len = _HEADER.unpack(header)
                key = log.read(key_len)
                value = log.read(value_len)
                if len(key) < key_len or len(value) < value_len:
                    break  # Torn record.
                if op == _OP_SET:
                    self._index[key] = VersionedValue(value, version)
                elif op == _OP_DELETE:
                    self._index.pop(key, None)
                else:
                    raise StorageError(f"corrupt log: unknown op {op}")

    def _append(self, op: int, key: bytes, value: bytes, version: int) -> None:
        record = _HEADER.pack(op, version, len(key), len(value)) + key + value
        self._log.write(record)
        if self._durability == "always":
            self._log.flush()
            os.fsync(self._log.fileno())

    def sync(self) -> None:
        """Force buffered records to disk (for durability='batch')."""
        with self._lock:
            self._log.flush()
            os.fsync(self._log.fileno())

    def close(self) -> None:
        with self._lock:
            self._log.flush()
            self._log.close()

    # ------------------------------------------------------------------
    # KVStore surface
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        with self._lock:
            self.read_count += 1
            stored = self._index.get(key)
            return stored.value if stored is not None else None

    def set(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self.write_count += 1
            current = self._index.get(key)
            version = current.version + 1 if current is not None else 1
            self._append(_OP_SET, key, value, version)
            self._index[key] = VersionedValue(value, version)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self.write_count += 1
            if key in self._index:
                self._append(_OP_DELETE, key, b"", 0)
                del self._index[key]

    def xget(self, key: bytes) -> VersionedValue | None:
        with self._lock:
            self.read_count += 1
            return self._index.get(key)

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        with self._lock:
            current = self._index.get(key)
            current_version = current.version if current is not None else 0
            if held_version is None:
                if current is not None:
                    raise VersionConflictError(key, 0, current_version)
            elif held_version != current_version:
                raise VersionConflictError(key, held_version, current_version)
            new_version = current_version + 1
            self.write_count += 1
            self._append(_OP_SET, key, value, new_version)
            self._index[key] = VersionedValue(value, new_version)
            return new_version

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def keys(self):
        with self._lock:
            return iter(list(self._index.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def total_value_bytes(self) -> int:
        with self._lock:
            return sum(len(stored.value) for stored in self._index.values())

    def log_bytes(self) -> int:
        """On-disk log size including dead records."""
        with self._lock:
            self._log.flush()
            return self._path.stat().st_size

    def compact_log(self) -> int:
        """Rewrite the log with only live records; returns bytes reclaimed.

        The HBase-compaction analogue: overwritten and deleted records
        accumulate in the append-only log until a rewrite drops them.
        """
        with self._lock:
            self._log.flush()
            before = self._path.stat().st_size
            temp_path = self._path.with_suffix(".compact")
            with open(temp_path, "wb") as temp:
                for key, stored in self._index.items():
                    temp.write(
                        _HEADER.pack(_OP_SET, stored.version, len(key), len(stored.value))
                        + key
                        + stored.value
                    )
                temp.flush()
                os.fsync(temp.fileno())
            self._log.close()
            os.replace(temp_path, self._path)
            self._log = open(self._path, "ab")
            return before - self._path.stat().st_size
