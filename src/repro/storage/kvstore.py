"""Key-value store substrate.

The paper's IPS uses HBase through a deliberately tiny surface: plain
``set``/``get`` for bulk persistence, plus versioned ``xset``/``xget`` for
the fine-grained slice scheme, where every write is fenced by the version
it read (Fig. 14) so meta and slice values stay mutually consistent.

:class:`InMemoryKVStore` implements that surface with per-key versions and
an optional :class:`FailureInjector` so tests and the availability
experiment (Fig. 17) can exercise storage errors deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Iterator, Protocol

from ..errors import StorageError, VersionConflictError


@dataclass(frozen=True)
class VersionedValue:
    """A stored value together with its write version."""

    value: bytes
    version: int


class KVStore(Protocol):
    """The storage surface IPS depends on."""

    def get(self, key: bytes) -> bytes | None:
        ...

    def set(self, key: bytes, value: bytes) -> None:
        ...

    def delete(self, key: bytes) -> None:
        ...

    def xget(self, key: bytes) -> VersionedValue | None:
        ...

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        ...

    def keys(self) -> Iterator[bytes]:
        ...


class FailureInjector:
    """Deterministic fault source for storage operations.

    ``fail_next(n)`` forces the next *n* operations to raise; a seeded
    ``failure_rate`` makes a fraction of operations fail randomly (used by
    the availability experiment).
    """

    def __init__(self, failure_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {failure_rate}")
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._forced_failures = 0
        self._lock = threading.Lock()

    def fail_next(self, count: int = 1) -> None:
        with self._lock:
            self._forced_failures += count

    def set_rate(self, failure_rate: float) -> None:
        """Hot-update the random failure rate (chaos engine control knob)."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {failure_rate}")
        with self._lock:
            self.failure_rate = failure_rate

    def check(self, operation: str) -> None:
        with self._lock:
            if self._forced_failures > 0:
                self._forced_failures -= 1
                raise StorageError(f"injected failure during {operation}")
            if self.failure_rate > 0.0 and self._rng.random() < self.failure_rate:
                raise StorageError(f"injected random failure during {operation}")


class InMemoryKVStore:
    """Thread-safe in-memory KV store with per-key versioning.

    Versions start at 1 and increment on every successful write.  ``xset``
    with ``held_version=None`` requires the key to be absent (insert-only
    fence); otherwise the held version must equal the current version or
    :class:`~repro.errors.VersionConflictError` is raised.
    """

    def __init__(self, failure_injector: FailureInjector | None = None) -> None:
        self._data: dict[bytes, VersionedValue] = {}
        self._lock = threading.Lock()
        self._injector = failure_injector
        self.read_count = 0
        self.write_count = 0

    # -- plain API -------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._maybe_fail("get")
        with self._lock:
            self.read_count += 1
            stored = self._data.get(key)
            return stored.value if stored is not None else None

    def set(self, key: bytes, value: bytes) -> None:
        self._maybe_fail("set")
        with self._lock:
            self.write_count += 1
            current = self._data.get(key)
            version = current.version + 1 if current is not None else 1
            self._data[key] = VersionedValue(value, version)

    def delete(self, key: bytes) -> None:
        self._maybe_fail("delete")
        with self._lock:
            self.write_count += 1
            self._data.pop(key, None)

    # -- versioned API (Fig. 14) ------------------------------------------

    def xget(self, key: bytes) -> VersionedValue | None:
        self._maybe_fail("xget")
        with self._lock:
            self.read_count += 1
            return self._data.get(key)

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        """Write fenced by the version the caller last read.

        Returns the new version.  Raises
        :class:`~repro.errors.VersionConflictError` when the held version is
        stale, signalling the caller to reload before retrying.
        """
        self._maybe_fail("xset")
        with self._lock:
            current = self._data.get(key)
            current_version = current.version if current is not None else 0
            if held_version is None:
                if current is not None:
                    raise VersionConflictError(key, 0, current_version)
            elif held_version != current_version:
                raise VersionConflictError(key, held_version, current_version)
            new_version = current_version + 1
            self.write_count += 1
            self._data[key] = VersionedValue(value, new_version)
            return new_version

    # -- introspection ----------------------------------------------------

    def keys(self) -> Iterator[bytes]:
        with self._lock:
            return iter(list(self._data.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._data

    def total_value_bytes(self) -> int:
        with self._lock:
            return sum(len(stored.value) for stored in self._data.values())

    def _maybe_fail(self, operation: str) -> None:
        if self._injector is not None:
            self._injector.check(operation)

    @property
    def failure_injector(self) -> FailureInjector | None:
        return self._injector

    def attach_failure_injector(self, injector: FailureInjector | None) -> None:
        """Install (or remove) a fault source after construction.

        The chaos engine uses this to target stores that were built without
        one — e.g. the per-region replicas of a live deployment.
        """
        self._injector = injector
