"""Profile persistence modes (§III-E, Figs. 12-14).

Two interchangeable persistence managers:

* :class:`BulkPersistence` — the simple model: the key is the profile id,
  the value is the whole profile serialized and compressed (Fig. 12).
* :class:`FineGrainedPersistence` — the slice-split model for very large
  profiles: a *meta* record lists the slice keys, every slice is stored
  under its own key, and the versioned ``xset``/``xget`` protocol of
  Fig. 14 keeps meta and slices consistent — slice values are written
  first, the meta record last, and any reader holding a stale meta version
  reloads before proceeding.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Protocol

from ..core.profile import ProfileData
from ..core.slice import Slice
from ..errors import SerializationError, StorageError, VersionConflictError
from ..obs.trace import NULL_TRACER
from .compression import compress, decompress
from .kvstore import KVStore
from .serialization import ProfileCodec, read_varint, write_varint


@dataclass
class PersistenceStats:
    """Accounting for flush/load traffic (feeds Table II and ablations)."""

    profiles_flushed: int = 0
    profiles_loaded: int = 0
    slices_flushed: int = 0
    slices_loaded: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    version_conflicts: int = 0
    orphan_slices_swept: int = 0


class PersistenceManager(Protocol):
    """What the cache layer needs from a persistence mode."""

    stats: PersistenceStats

    def flush(self, profile: ProfileData) -> None:
        ...

    def load(self, profile_id: int) -> ProfileData | None:
        ...

    def delete(self, profile_id: int) -> None:
        ...


def _profile_key(table: str, profile_id: int) -> bytes:
    return f"{table}/p/{profile_id}".encode()


def _meta_key(table: str, profile_id: int) -> bytes:
    return f"{table}/m/{profile_id}".encode()


def _slice_key(table: str, profile_id: int, slice_id: int) -> bytes:
    return f"{table}/s/{profile_id}/{slice_id}".encode()


def _ids_under_prefix(store: KVStore, prefix: bytes) -> set[int]:
    """Profile ids whose key is ``prefix + str(id)`` (key-space scan)."""
    ids: set[int] = set()
    for key in store.keys():
        if key.startswith(prefix):
            try:
                ids.add(int(key[len(prefix) :]))
            except ValueError:
                continue
    return ids


class BulkPersistence:
    """Whole-profile persistence: one key, one compressed value."""

    def __init__(self, store: KVStore, table: str, tracer=NULL_TRACER) -> None:
        self._store = store
        self._table = table
        self.stats = PersistenceStats()
        self.tracer = tracer

    def flush(self, profile: ProfileData) -> None:
        with self.tracer.span(
            "storage.flush", profile=profile.profile_id
        ) as span:
            blob = compress(ProfileCodec.encode_profile(profile))
            self._store.set(_profile_key(self._table, profile.profile_id), blob)
            self.stats.profiles_flushed += 1
            self.stats.bytes_written += len(blob)
            span.tag(bytes=len(blob))

    def load(self, profile_id: int) -> ProfileData | None:
        with self.tracer.span("storage.load", profile=profile_id) as span:
            blob = self._store.get(_profile_key(self._table, profile_id))
            if blob is None:
                span.tag(found=False)
                return None
            self.stats.profiles_loaded += 1
            self.stats.bytes_read += len(blob)
            span.tag(found=True, bytes=len(blob))
            return ProfileCodec.decode_profile(decompress(blob))

    def delete(self, profile_id: int) -> None:
        self._store.delete(_profile_key(self._table, profile_id))

    def stored_profile_ids(self) -> set[int]:
        """Every profile id persisted for this table (recovery/checkpoint)."""
        return _ids_under_prefix(self._store, f"{self._table}/p/".encode())

    def serialized_size(self, profile: ProfileData) -> int:
        """Size after serialization + compression (the paper's <40 KB figure)."""
        return len(compress(ProfileCodec.encode_profile(profile)))


# ----------------------------------------------------------------------
# Fine-grained mode
# ----------------------------------------------------------------------


@dataclass
class SliceMetaEntry:
    """One row of the slice meta structure (Fig. 13)."""

    slice_id: int
    start_ms: int
    end_ms: int


def _encode_meta(
    profile: ProfileData, entries: list[SliceMetaEntry]
) -> bytes:
    out = bytearray()
    write_varint(out, profile.profile_id)
    write_varint(out, profile.write_granularity_ms)
    write_varint(out, len(entries))
    for entry in entries:
        write_varint(out, entry.slice_id)
        write_varint(out, entry.start_ms)
        write_varint(out, entry.end_ms)
    return bytes(out)


def _decode_meta(blob: bytes) -> tuple[int, int, list[SliceMetaEntry]]:
    pos = 0
    profile_id, pos = read_varint(blob, pos)
    granularity, pos = read_varint(blob, pos)
    count, pos = read_varint(blob, pos)
    entries = []
    for _ in range(count):
        slice_id, pos = read_varint(blob, pos)
        start_ms, pos = read_varint(blob, pos)
        end_ms, pos = read_varint(blob, pos)
        entries.append(SliceMetaEntry(slice_id, start_ms, end_ms))
    if pos != len(blob):
        raise SerializationError("trailing bytes after slice meta")
    return profile_id, granularity, entries


class FineGrainedPersistence:
    """Slice-split persistence with the Fig. 14 version-fencing protocol.

    Flush order (writes): new/changed slice values first (each compressed
    individually), then the meta record via ``xset`` fenced by the version
    read at the start of the flush.  A concurrent flusher that bumped the
    meta version causes :class:`VersionConflictError`; the flush retries
    after reloading the current meta, so the final state always matches
    some complete flush.

    Slice keys are content-addressed by ``(start_ms, end_ms)`` identity of
    the slice at flush time; slices dropped by compaction leave garbage
    values behind which :meth:`flush` deletes once the new meta is durable.
    """

    def __init__(
        self,
        store: KVStore,
        table: str,
        max_retries: int = 4,
        tracer=NULL_TRACER,
    ) -> None:
        self._store = store
        self._table = table
        self._max_retries = max_retries
        self.stats = PersistenceStats()
        self.tracer = tracer
        self._next_slice_id = 0
        self._id_lock = threading.Lock()

    def _allocate_slice_id(self) -> int:
        with self._id_lock:
            self._next_slice_id += 1
            return self._next_slice_id

    def flush(self, profile: ProfileData) -> None:
        with self.tracer.span(
            "storage.flush", profile=profile.profile_id
        ) as span:
            for attempt in range(self._max_retries):
                try:
                    self._flush_once(profile)
                    span.tag(slices=len(profile.slices), attempts=attempt + 1)
                    return
                except VersionConflictError:
                    self.stats.version_conflicts += 1
                    if attempt == self._max_retries - 1:
                        raise
            raise StorageError("unreachable")  # pragma: no cover

    def _flush_once(self, profile: ProfileData) -> None:
        meta_key = _meta_key(self._table, profile.profile_id)
        current = self._store.xget(meta_key)
        held_version = current.version if current is not None else None
        previous_ids = set()
        if current is not None:
            _, _, previous_entries = _decode_meta(current.value)
            previous_ids = {entry.slice_id for entry in previous_entries}

        # 1. Write every slice value under a fresh id.
        entries = []
        for profile_slice in profile.slices:
            slice_id = self._allocate_slice_id()
            blob = compress(ProfileCodec.encode_slice(profile_slice))
            self._store.set(
                _slice_key(self._table, profile.profile_id, slice_id), blob
            )
            self.stats.slices_flushed += 1
            self.stats.bytes_written += len(blob)
            entries.append(
                SliceMetaEntry(slice_id, profile_slice.start_ms, profile_slice.end_ms)
            )

        # 2. Publish the meta record, fenced by the version we read.
        meta_blob = _encode_meta(profile, entries)
        self._store.xset(meta_key, meta_blob, held_version)
        self.stats.profiles_flushed += 1
        self.stats.bytes_written += len(meta_blob)

        # 3. Garbage-collect slice values orphaned by this flush.
        for orphan_id in previous_ids:
            self._store.delete(
                _slice_key(self._table, profile.profile_id, orphan_id)
            )

    def load(self, profile_id: int) -> ProfileData | None:
        return self._load(profile_id, window=None)

    def load_window(
        self, profile_id: int, start_ms: int, end_ms: int
    ) -> ProfileData | None:
        """Load only the slices overlapping ``[start_ms, end_ms)``.

        This is the payoff of the slice-split scheme (§III-E): reloading a
        large profile for a short-window query fetches a handful of slice
        values instead of the whole profile, bounding both KV traffic and
        deserialization cost.  The returned profile is *partial*; callers
        must not flush it back as the complete profile.
        """
        if end_ms <= start_ms:
            raise StorageError(
                f"empty load window [{start_ms}, {end_ms})"
            )
        return self._load(profile_id, window=(start_ms, end_ms))

    def _load(
        self, profile_id: int, window: tuple[int, int] | None
    ) -> ProfileData | None:
        with self.tracer.span("storage.load", profile=profile_id) as span:
            profile = self._load_inner(profile_id, window)
            span.tag(found=profile is not None)
            return profile

    def _load_inner(
        self, profile_id: int, window: tuple[int, int] | None
    ) -> ProfileData | None:
        meta = self._store.xget(_meta_key(self._table, profile_id))
        if meta is None:
            return None
        stored_id, granularity, entries = _decode_meta(meta.value)
        if stored_id != profile_id:
            raise StorageError(
                f"meta record for {profile_id} claims profile {stored_id}"
            )
        self.stats.bytes_read += len(meta.value)
        if window is not None:
            start_ms, end_ms = window
            entries = [
                entry
                for entry in entries
                if entry.start_ms < end_ms and start_ms < entry.end_ms
            ]
        slices: list[Slice] = []
        for entry in entries:
            blob = self._store.get(
                _slice_key(self._table, profile_id, entry.slice_id)
            )
            if blob is None:
                # A slice vanished under us: the meta we hold is stale
                # relative to a concurrent flush. Reload from the top.
                return self._load(profile_id, window)
            self.stats.slices_loaded += 1
            self.stats.bytes_read += len(blob)
            slices.append(ProfileCodec.decode_slice(decompress(blob)))
        profile = ProfileData(profile_id, granularity)
        profile.replace_slices(slices)
        self.stats.profiles_loaded += 1
        return profile

    def delete(self, profile_id: int) -> None:
        meta_key = _meta_key(self._table, profile_id)
        meta = self._store.xget(meta_key)
        if meta is None:
            return
        _, _, entries = _decode_meta(meta.value)
        self._store.delete(meta_key)
        for entry in entries:
            self._store.delete(_slice_key(self._table, profile_id, entry.slice_id))

    def stored_profile_ids(self) -> set[int]:
        """Every profile id with a meta record (recovery/checkpoint)."""
        return _ids_under_prefix(self._store, f"{self._table}/m/".encode())

    def sweep_orphans(self) -> int:
        """Delete slice values no meta record references; returns the count.

        A flush that dies between step 1 (slice values written) and step 2
        (meta ``xset``) leaks its fresh slice keys forever — no meta ever
        points at them, and the step 3 GC of later flushes only collects
        ids that *were* published.  Recovery calls this sweep to reclaim
        them.  Must not run concurrently with flushers: a sweep cannot
        tell an orphan from a slice whose meta publish is in flight.
        """
        slice_prefix = f"{self._table}/s/".encode()
        by_profile: dict[int, list[tuple[int, bytes]]] = {}
        for key in self._store.keys():
            if not key.startswith(slice_prefix):
                continue
            try:
                profile_part, slice_part = key[len(slice_prefix) :].split(b"/")
                profile_id, slice_id = int(profile_part), int(slice_part)
            except ValueError:
                continue
            by_profile.setdefault(profile_id, []).append((slice_id, key))
        swept = 0
        for profile_id, slices in sorted(by_profile.items()):
            meta = self._store.xget(_meta_key(self._table, profile_id))
            referenced: set[int] = set()
            if meta is not None:
                _, _, entries = _decode_meta(meta.value)
                referenced = {entry.slice_id for entry in entries}
            for slice_id, key in sorted(slices):
                if slice_id not in referenced:
                    self._store.delete(key)
                    swept += 1
        self.stats.orphan_slices_swept += swept
        return swept
