"""Master/slave KV replication for multi-region deployments (§III-G, Fig. 15).

In the paper's multi-region layout, exactly one IPS instance per profile
range persists to the *master* KV cluster; instances in other regions read
from their local *slave* cluster, which replicates from the master
asynchronously.  Consistency is deliberately weak: a node that fails over
may load slightly stale data, which is acceptable for recommendations.

:class:`ReplicatedKVCluster` models one master plus N regional slaves with
a configurable replication lag measured in *applied operations*: writes go
to the master immediately and are queued per slave, and :meth:`pump`
applies queued operations (all of them by default, or a bounded number to
simulate lag).

The op model is shared with the process-cluster replication layer
(:mod:`repro.net.replication`): every op carries a **monotonic sequence
number** assigned at the master, each slave tracks the highest sequence it
has applied, and lag is observable both as queued ops and as a sequence
gap.  Pass a :class:`~repro.obs.registry.MetricsRegistry` to surface
per-slave lag as ``replication_lag_ops{layer="sim",peer=<region>}``
gauges — the same metric family the net-layer workers report through the
node registry, so the dashboard and SLO layer read sim and process lag
identically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..errors import StorageError
from .kvstore import InMemoryKVStore, KVStore

#: Gauge family shared between this sim layer (``layer="sim"``) and the
#: process-cluster replication reports (``layer="net"``).
REPLICATION_LAG_GAUGE = "replication_lag_ops"


@dataclass(frozen=True)
class ReplicationOp:
    """One sequence-numbered replication operation (shared op model)."""

    seq: int
    key: bytes
    value: bytes | None  # None encodes a delete.


class _SlaveHandle:
    def __init__(self, region: str) -> None:
        self.region = region
        self.store = InMemoryKVStore()
        self.queue: deque[ReplicationOp] = deque()
        self.applied_ops = 0
        #: Highest sequence number applied to this slave's store.
        self.applied_seq = 0


class ReplicatedKVCluster:
    """One master store plus per-region read-only slaves."""

    def __init__(
        self,
        regions: list[str],
        master_region: str,
        metrics=None,
    ) -> None:
        if master_region not in regions:
            raise StorageError(
                f"master region {master_region!r} not in regions {regions}"
            )
        self.master_region = master_region
        self.master = InMemoryKVStore()
        self._slaves = {
            region: _SlaveHandle(region)
            for region in regions
            if region != master_region
        }
        self._lock = threading.Lock()
        #: Monotonic sequence of the newest op written through the master.
        self.last_seq = 0
        #: When set, caps ops applied per slave per :meth:`pump` call — the
        #: chaos engine's replica-lag-spike knob (``0`` stalls replication
        #: entirely, ``None`` removes the throttle).
        self._pump_throttle: int | None = None
        self._lag_gauges = {}
        if metrics is not None:
            self._lag_gauges = {
                region: metrics.gauge(
                    REPLICATION_LAG_GAUGE, layer="sim", peer=region
                )
                for region in self._slaves
            }

    # -- write path (master only) -----------------------------------------

    def write_store(self) -> KVStore:
        """The store the single persisting instance writes to."""
        return _ReplicatingWriter(self)

    # -- read path ---------------------------------------------------------

    def read_store(self, region: str) -> KVStore:
        """The store instances in ``region`` read from."""
        if region == self.master_region:
            return self.master
        try:
            return self._slaves[region].store
        except KeyError:
            raise StorageError(f"unknown region {region!r}") from None

    # -- replication pump ----------------------------------------------------

    def pump(self, region: str | None = None, max_ops: int | None = None) -> int:
        """Apply queued replication ops to slaves.

        ``max_ops`` bounds work per slave so tests can hold a slave behind
        the master (stale reads).  Returns total ops applied.
        """
        applied = 0
        with self._lock:
            slaves = (
                list(self._slaves.values())
                if region is None
                else [self._slaves[region]]
            )
            throttle = self._pump_throttle
        for slave in slaves:
            budget = max_ops
            if throttle is not None:
                budget = throttle if budget is None else min(budget, throttle)
            while slave.queue and (budget is None or budget > 0):
                op = slave.queue.popleft()
                if op.value is None:
                    slave.store.delete(op.key)
                else:
                    slave.store.set(op.key, op.value)
                slave.applied_ops += 1
                slave.applied_seq = op.seq
                applied += 1
                if budget is not None:
                    budget -= 1
            self._publish_lag(slave)
        return applied

    def set_pump_throttle(self, max_ops: int | None) -> None:
        """Cap ops applied per slave per pump (``0`` stalls, ``None`` clears)."""
        if max_ops is not None and max_ops < 0:
            raise StorageError(f"pump throttle must be >= 0, got {max_ops}")
        with self._lock:
            self._pump_throttle = max_ops

    @property
    def pump_throttle(self) -> int | None:
        with self._lock:
            return self._pump_throttle

    def injection_store(self, region: str) -> InMemoryKVStore:
        """The raw store backing a region, for fault-injector attachment.

        The master region's writer is an adapter; faults must land on the
        underlying master store so reads and writes both feel them.
        """
        if region == self.master_region:
            return self.master
        try:
            return self._slaves[region].store
        except KeyError:
            raise StorageError(f"unknown region {region!r}") from None

    def lag(self, region: str) -> int:
        """Number of operations a slave is behind the master."""
        if region == self.master_region:
            return 0
        return len(self._slaves[region].queue)

    def applied_seq(self, region: str) -> int:
        """Highest master sequence number a slave has applied."""
        if region == self.master_region:
            return self.last_seq
        return self._slaves[region].applied_seq

    def lag_snapshot(self) -> dict[str, int]:
        """Per-slave queued-op lag, the shape the fleet reports use."""
        return {region: len(s.queue) for region, s in self._slaves.items()}

    def _publish_lag(self, slave: _SlaveHandle) -> None:
        gauge = self._lag_gauges.get(slave.region)
        if gauge is not None:
            gauge.set(len(slave.queue))

    def _enqueue(self, key: bytes, value: bytes | None) -> None:
        with self._lock:
            self.last_seq += 1
            op = ReplicationOp(self.last_seq, key, value)
            for slave in self._slaves.values():
                slave.queue.append(op)
        for slave in self._slaves.values():
            self._publish_lag(slave)


class _ReplicatingWriter:
    """KVStore adapter that writes through the master and queues replication."""

    def __init__(self, cluster: ReplicatedKVCluster) -> None:
        self._cluster = cluster

    def get(self, key: bytes) -> bytes | None:
        return self._cluster.master.get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self._cluster.master.set(key, value)
        self._cluster._enqueue(key, value)

    def delete(self, key: bytes) -> None:
        self._cluster.master.delete(key)
        self._cluster._enqueue(key, None)

    def xget(self, key: bytes):
        return self._cluster.master.xget(key)

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        version = self._cluster.master.xset(key, value, held_version)
        self._cluster._enqueue(key, value)
        return version

    def keys(self):
        return self._cluster.master.keys()
