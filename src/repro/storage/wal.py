"""Per-node write-ahead log: the durability contract behind the ack.

IPS §III-E persists profiles asynchronously off the dirty list, which
means an ack says nothing about durability — a crashed node silently
loses every acked-but-unflushed write.  This module supplies the missing
contract: a write is acked only after its WAL record is durable, and a
restarting node replays the log tail to rebuild exactly the acked state
(see :mod:`repro.server.recovery`).

Record framing (all little-endian, reusing the :class:`FileKVStore`
length-prefixed idiom)::

    record := [length u32][crc u32][sequence u64][payload]

``length`` counts the bytes after itself (crc + sequence + payload) and
``crc`` is the CRC32 of ``sequence || payload``, so a torn or bit-flipped
record is detected before a single byte of it is applied.  Sequence
numbers are strictly monotonic; replay stops (and truncates) at the first
record that is torn, corrupt, or out of order — everything before it
committed, everything after it never happened.

Sync modes, mirroring the ``durability=`` knob of the file store:

* ``"always"``  — fsync inside every :meth:`append`; the append *is* the
  commit, so per-write acks are crash-safe.
* ``"group"``   — appends buffer; an fsync runs every ``group_size``
  appends or on an explicit :meth:`commit` (the ack barrier a batched
  write call issues once for the whole batch).
* ``"manual"``  — only :meth:`commit` ever syncs (benchmarks/ablations).

The physical file is abstracted behind :class:`LogFile` so the
crash-point harness can model machine-death semantics precisely:
:class:`MemoryLogFile` distinguishes written bytes from *durable* (synced)
bytes and can be "crashed" back to the durable prefix, torn mid-record.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

from ..errors import StorageError

_FRAME = struct.Struct("<II")  # length (after itself), crc32
_SEQ = struct.Struct("<Q")
_HEADER_LEN = _FRAME.size + _SEQ.size

SYNC_MODES = ("always", "group", "manual")


class CrashPointSite(Protocol):
    """Seam the crash-point harness plugs into WAL/checkpoint writes.

    ``write`` routes physical bytes through the harness so it can tear a
    record at a chosen byte offset; ``reach`` marks a named point (e.g.
    post-append/pre-fsync) where a crash may fire.  The default
    :data:`NULL_SITE` does neither and costs one call.
    """

    def write(self, site: str, data: bytes, sink) -> None:
        ...

    def reach(self, site: str) -> None:
        ...


class _NullSite:
    def write(self, site: str, data: bytes, sink) -> None:
        sink(data)

    def reach(self, site: str) -> None:
        return None


NULL_SITE = _NullSite()


def fsync_dir(path: Path) -> None:
    """Make a rename inside ``path`` durable.

    ``os.replace`` updates a directory entry; fsyncing the replaced file
    does not cover that entry, so after a crash the rename itself may be
    lost.  Databases fsync the parent directory after every rename — so
    do we.
    """
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Log files
# ----------------------------------------------------------------------


class LogFile(Protocol):
    """Append-only byte log with explicit sync and atomic rewrite."""

    def append(self, data: bytes) -> None:
        ...

    def fsync(self) -> None:
        ...

    def read_all(self) -> bytes:
        ...

    def rewrite(self, data: bytes) -> None:
        ...

    def size(self) -> int:
        ...

    def close(self) -> None:
        ...


class FileLogFile:
    """Real on-disk log file (fsync-backed durability)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")

    def append(self, data: bytes) -> None:
        self._handle.write(data)

    def fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def read_all(self) -> bytes:
        self._handle.flush()
        return self.path.read_bytes()

    def rewrite(self, data: bytes) -> None:
        """Atomically replace the whole log (checkpoint truncation)."""
        temp_path = self.path.with_suffix(self.path.suffix + ".rewrite")
        with open(temp_path, "wb") as temp:
            temp.write(data)
            temp.flush()
            os.fsync(temp.fileno())
        self._handle.close()
        os.replace(temp_path, self.path)
        # Without this, a crash can undo the rename itself: e.g. the WAL
        # truncation survives but the checkpoint rewrite does not, and
        # recovery replays the truncated tail onto the *old* base.
        fsync_dir(self.path.parent)
        self._handle = open(self.path, "ab")

    def size(self) -> int:
        self._handle.flush()
        return self.path.stat().st_size

    def close(self) -> None:
        self._handle.flush()
        self._handle.close()


class MemoryLogFile:
    """In-memory log file with machine-crash semantics.

    Written bytes sit in a volatile buffer until :meth:`fsync` extends the
    durable watermark over them; :meth:`crash` discards everything past
    the watermark — the byte-accurate model of a machine dying between a
    buffered write and its sync.  :meth:`rewrite` is atomic, as the real
    file's tmp-plus-rename is.
    """

    def __init__(self) -> None:
        self._data = bytearray()
        self._durable = 0
        self.crash_count = 0

    def append(self, data: bytes) -> None:
        self._data.extend(data)

    def fsync(self) -> None:
        self._durable = len(self._data)

    def read_all(self) -> bytes:
        return bytes(self._data)

    def durable_bytes(self) -> bytes:
        return bytes(self._data[: self._durable])

    def rewrite(self, data: bytes) -> None:
        self._data = bytearray(data)
        self._durable = len(self._data)

    def size(self) -> int:
        return len(self._data)

    def close(self) -> None:
        return None

    def crash(self) -> None:
        """Machine death: everything past the durable watermark is gone."""
        self.crash_count += 1
        del self._data[self._durable :]


# ----------------------------------------------------------------------
# The log
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WALRecord:
    """One committed log record."""

    sequence: int
    payload: bytes


@dataclass
class ReplayReport:
    """What a replay scan found (feeds recovery counters)."""

    records: int = 0
    bytes_scanned: int = 0
    torn_tail_bytes: int = 0
    corrupt_records: int = 0
    first_sequence: int = 0
    last_sequence: int = 0


@dataclass
class WALStats:
    appends: int = 0
    commits: int = 0
    bytes_appended: int = 0
    truncations: int = 0
    records_dropped_by_truncate: int = 0


class WriteAheadLog:
    """CRC32-framed, sequence-numbered write-ahead log over a log file."""

    def __init__(
        self,
        log_file: LogFile | str | Path,
        sync: str = "always",
        group_size: int = 32,
        site: CrashPointSite = NULL_SITE,
    ) -> None:
        if sync not in SYNC_MODES:
            raise StorageError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        if isinstance(log_file, (str, Path)):
            log_file = FileLogFile(log_file)
        self._file = log_file
        self._sync = sync
        self._group_size = group_size
        self._site = site
        self._lock = threading.Lock()
        self._unsynced = 0
        self.stats = WALStats()
        # Adopt the existing tail: the next append continues the sequence,
        # and any torn garbage after the last valid record is cut off now
        # so it cannot prefix-corrupt records appended later.
        report = self._scan(self._file.read_all(), repair=True)
        self.last_sequence = report.last_sequence

    @property
    def sync_mode(self) -> str:
        return self._sync

    def ensure_sequence_at_least(self, sequence: int) -> None:
        """Seed the sequence space; never moves it backwards.

        A checkpoint truncates the log, so a process restart can open an
        *empty* file whose scan yields ``last_sequence == 0`` while the
        checkpoint barrier sits at some higher value.  New appends would
        then be numbered inside the already-checkpointed range and
        recovery's ``sequence <= checkpoint_sequence`` dedup would
        silently discard them — acked-write loss.  The durability layer
        calls this with the checkpoint barrier at open and recover time.
        """
        with self._lock:
            if sequence > self.last_sequence:
                self.last_sequence = sequence

    # ------------------------------------------------------------------
    # Append / commit
    # ------------------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one record; returns its sequence number.

        In ``"always"`` mode the record is durable when this returns — the
        caller may ack immediately.  In the other modes the caller must
        :meth:`commit` (or rely on the group barrier) before acking.
        """
        with self._lock:
            sequence = self.last_sequence + 1
            body = _SEQ.pack(sequence) + payload
            record = _FRAME.pack(len(body), zlib.crc32(body)) + body
            self._site.write("wal.append", record, self._file.append)
            self.last_sequence = sequence
            self.stats.appends += 1
            self.stats.bytes_appended += len(record)
            self._unsynced += 1
            self._site.reach("wal.pre_fsync")
            if self._sync == "always" or (
                self._sync == "group" and self._unsynced >= self._group_size
            ):
                self._commit_locked()
            return sequence

    def append_many(self, payloads: Iterable[bytes]) -> list[int]:
        """Append a batch, then force one group commit (the batch ack)."""
        sequences = [self.append(payload) for payload in payloads]
        if self._sync != "manual":
            self.commit()
        return sequences

    def commit(self) -> None:
        """Group-commit barrier: make every appended record durable."""
        with self._lock:
            self._commit_locked()

    def _commit_locked(self) -> None:
        if self._unsynced == 0:
            return
        self._file.fsync()
        self._unsynced = 0
        self.stats.commits += 1

    # ------------------------------------------------------------------
    # Replay / truncation
    # ------------------------------------------------------------------

    def replay(self) -> tuple[list[WALRecord], ReplayReport]:
        """Parse every committed record currently in the file.

        Never raises on damage: a torn or corrupt record ends the scan and
        everything from it on is reported (and already truncated at open
        time for garbage that predates this process).
        """
        with self._lock:
            records: list[WALRecord] = []
            report = self._scan(
                self._file.read_all(), repair=False, out=records
            )
            return records, report

    def _scan(
        self,
        data: bytes,
        repair: bool,
        out: list[WALRecord] | None = None,
    ) -> ReplayReport:
        report = ReplayReport()
        pos = 0
        last_sequence = 0
        while pos < len(data):
            if pos + _HEADER_LEN > len(data):
                break  # Torn frame header.
            length, crc = _FRAME.unpack_from(data, pos)
            end = pos + _FRAME.size + length
            if length < _SEQ.size or end > len(data):
                break  # Torn body (or nonsense length from a bit flip).
            body = data[pos + _FRAME.size : end]
            if zlib.crc32(body) != crc:
                report.corrupt_records += 1
                break
            (sequence,) = _SEQ.unpack_from(body, 0)
            if sequence <= last_sequence:
                report.corrupt_records += 1
                break  # Sequence went backwards: framing drifted.
            if report.records == 0:
                report.first_sequence = sequence
            last_sequence = sequence
            if out is not None:
                out.append(WALRecord(sequence, body[_SEQ.size :]))
            report.records += 1
            pos = end
        report.bytes_scanned = pos
        report.torn_tail_bytes = len(data) - pos
        report.last_sequence = last_sequence
        if repair and report.torn_tail_bytes:
            self._file.rewrite(data[:pos])
        return report

    def truncate_through(self, sequence: int) -> int:
        """Drop every record with ``sequence <=`` the checkpoint barrier.

        Rewrites the log atomically with only the surviving tail; returns
        the number of records dropped.
        """
        with self._lock:
            self._commit_locked()
            records: list[WALRecord] = []
            self._scan(self._file.read_all(), repair=False, out=records)
            survivors = bytearray()
            dropped = 0
            for record in records:
                if record.sequence <= sequence:
                    dropped += 1
                    continue
                body = _SEQ.pack(record.sequence) + record.payload
                survivors.extend(
                    _FRAME.pack(len(body), zlib.crc32(body)) + body
                )
            self._site.reach("wal.truncate")
            self._file.rewrite(bytes(survivors))
            self.stats.truncations += 1
            self.stats.records_dropped_by_truncate += dropped
            return dropped

    # ------------------------------------------------------------------

    def pending_records(self) -> int:
        """Records currently in the log (the replay a crash would cost)."""
        with self._lock:
            return self._scan(self._file.read_all(), repair=False).records

    def size_bytes(self) -> int:
        return self._file.size()

    def close(self) -> None:
        with self._lock:
            self._commit_locked()
            self._file.close()
