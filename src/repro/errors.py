"""Exception hierarchy for the IPS reproduction.

Every error raised by the library derives from :class:`IPSError` so callers
can catch the whole family with a single except clause.  Subsystems raise the
most specific subclass that applies; the RPC and client layers translate
transport problems into :class:`RPCError` subclasses so upstream retry logic
can distinguish transient failures from programming errors.
"""

from __future__ import annotations


class IPSError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(IPSError):
    """A configuration value is missing, malformed or inconsistent."""


class TableNotFoundError(IPSError):
    """A request referenced an IPS table that does not exist."""

    def __init__(self, table: str) -> None:
        super().__init__(f"table not found: {table!r}")
        self.table = table


class ProfileNotFoundError(IPSError):
    """A query referenced a profile id with no stored data."""

    def __init__(self, profile_id: int) -> None:
        super().__init__(f"profile not found: {profile_id}")
        self.profile_id = profile_id


class InvalidTimeRangeError(IPSError):
    """A time range is empty, inverted or otherwise unusable."""


class InvalidQueryError(IPSError):
    """A read request combines parameters in an unsupported way."""


class SerializationError(IPSError):
    """Profile data could not be encoded or decoded."""


class CompressionError(IPSError):
    """A compressed block is corrupt or uses an unknown framing."""


class StorageError(IPSError):
    """The persistent key-value store failed an operation."""


class VersionConflictError(StorageError):
    """A versioned ``xset`` lost the race against a newer write.

    This mirrors the version fencing of the paper's Fig. 14: the caller holds
    a stale version and must reload before retrying.
    """

    def __init__(self, key: bytes, held: int, current: int) -> None:
        super().__init__(
            f"stale version for key {key!r}: held {held}, current {current}"
        )
        self.key = key
        self.held = held
        self.current = current


class QuotaExceededError(IPSError):
    """A caller exceeded its server-side QPS quota and was rejected."""

    def __init__(self, caller: str, quota: float) -> None:
        super().__init__(f"caller {caller!r} exceeded quota of {quota:g} qps")
        self.caller = caller
        self.quota = quota


class RPCError(IPSError):
    """Base class for transport-level failures."""


class RPCTimeoutError(RPCError):
    """The simulated transport did not answer within the deadline."""


class NodeUnavailableError(RPCError):
    """The target IPS instance is down or unreachable."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node unavailable: {node_id}")
        self.node_id = node_id


class NoHealthyNodeError(RPCError):
    """The client could not find any healthy instance for a key."""


class RegionUnavailableError(RPCError):
    """An entire region is marked failed and cannot serve reads."""

    def __init__(self, region: str) -> None:
        super().__init__(f"region unavailable: {region}")
        self.region = region
