"""Exception hierarchy for the IPS reproduction.

Every error raised by the library derives from :class:`IPSError` so callers
can catch the whole family with a single except clause.  Subsystems raise the
most specific subclass that applies; the RPC and client layers translate
transport problems into :class:`RPCError` subclasses so upstream retry logic
can distinguish transient failures from programming errors.
"""

from __future__ import annotations


class IPSError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(IPSError):
    """A configuration value is missing, malformed or inconsistent."""


class TableNotFoundError(IPSError):
    """A request referenced an IPS table that does not exist."""

    def __init__(self, table: str) -> None:
        super().__init__(f"table not found: {table!r}")
        self.table = table


class ProfileNotFoundError(IPSError):
    """A query referenced a profile id with no stored data."""

    def __init__(self, profile_id: int) -> None:
        super().__init__(f"profile not found: {profile_id}")
        self.profile_id = profile_id


class InvalidTimeRangeError(IPSError):
    """A time range is empty, inverted or otherwise unusable."""


class InvalidQueryError(IPSError):
    """A read request combines parameters in an unsupported way."""


class SerializationError(IPSError):
    """Profile data could not be encoded or decoded."""


class CompressionError(IPSError):
    """A compressed block is corrupt or uses an unknown framing."""


class StorageError(IPSError):
    """The persistent key-value store failed an operation."""


class VersionConflictError(StorageError):
    """A versioned ``xset`` lost the race against a newer write.

    This mirrors the version fencing of the paper's Fig. 14: the caller holds
    a stale version and must reload before retrying.
    """

    def __init__(self, key: bytes, held: int, current: int) -> None:
        super().__init__(
            f"stale version for key {key!r}: held {held}, current {current}"
        )
        self.key = key
        self.held = held
        self.current = current


class WALCorruptionError(StorageError):
    """A write-ahead-log record failed its CRC or framing check.

    Raised only by explicit integrity probes; replay never raises it —
    corruption truncates the log at the last valid record instead, because
    a torn tail is the *expected* outcome of a crash mid-append.
    """


class SimulatedCrashError(BaseException):
    """Process death injected by the crash-point harness.

    Deliberately derives from :class:`BaseException`, not
    :class:`IPSError`: a simulated crash must rip through the ``except
    Exception`` handlers that make the serving and flush paths resilient,
    exactly as a real SIGKILL would.  Only the harness itself catches it.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"simulated crash at {site}{suffix}")
        self.site = site


class QuotaExceededError(IPSError):
    """A caller exceeded its server-side QPS quota and was rejected."""

    def __init__(self, caller: str, quota: float) -> None:
        super().__init__(f"caller {caller!r} exceeded quota of {quota:g} qps")
        self.caller = caller
        self.quota = quota


class RetryableError:
    """Marker mixin: retrying the operation (ideally against another
    replica) has a reasonable chance of succeeding.

    The retry taxonomy below is the single source of truth the cluster
    client and the resilience layer share, so both classify errors
    identically.  New exception types opt into retries either by mixing
    this class in or by appearing in :data:`RETRYABLE_ERRORS`.
    """


class RPCError(IPSError):
    """Base class for transport-level failures."""


class RPCTimeoutError(RPCError, RetryableError):
    """The simulated transport did not answer within the deadline."""


class NodeUnavailableError(RPCError, RetryableError):
    """The target IPS instance is down or unreachable."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node unavailable: {node_id}")
        self.node_id = node_id


class NoHealthyNodeError(RPCError):
    """The client could not find any healthy instance for a key."""


class RegionUnavailableError(RPCError):
    """An entire region is marked failed and cannot serve reads."""

    def __init__(self, region: str) -> None:
        super().__init__(f"region unavailable: {region}")
        self.region = region


class CircuitOpenError(RPCError, RetryableError):
    """A per-node circuit breaker is open and rejected the call locally.

    Retryable in the routing sense: another node may serve the key; the
    broken node itself must not be retried until its breaker half-opens.
    """

    def __init__(self, node_id: str) -> None:
        super().__init__(f"circuit open for node: {node_id}")
        self.node_id = node_id


class DeadlineExceededError(RPCError):
    """The per-request deadline expired before the request completed.

    Deliberately *not* retryable: there is no time budget left, so the
    client surfaces the error instead of burning another attempt.
    """

    def __init__(self, operation: str, budget_ms: float) -> None:
        super().__init__(
            f"deadline exceeded after {budget_ms:g} ms during {operation}"
        )
        self.operation = operation
        self.budget_ms = budget_ms


#: Errors a retry may fix (transient transport / storage hiccups).  Kept in
#: sync with the :class:`RetryableError` mixin; prefer :func:`is_retryable`.
RETRYABLE_ERRORS = (NodeUnavailableError, RPCTimeoutError, StorageError,
                    CircuitOpenError)

#: Errors that fail a whole region for the request (handled by region
#: failover, never by same-region retries).
REGION_FATAL_ERRORS = (RegionUnavailableError, NoHealthyNodeError,
                       QuotaExceededError)


def is_retryable(exc: BaseException) -> bool:
    """Shared retryability test for the client and the resilience layer.

    An exception is retryable when it carries the :class:`RetryableError`
    mixin or is one of the legacy :data:`RETRYABLE_ERRORS` types, and is
    not region-fatal or deadline-related.
    """
    if isinstance(exc, (DeadlineExceededError,) + REGION_FATAL_ERRORS):
        return False
    return isinstance(exc, (RetryableError,) + RETRYABLE_ERRORS)


def is_region_fatal(exc: BaseException) -> bool:
    """True when the error fails the whole region for this request."""
    return isinstance(exc, REGION_FATAL_ERRORS)
