"""repro: a reproduction of IPS — Unified Profile Management for
Ubiquitous Online Recommendations (ICDE 2021).

IPS is ByteDance's Instance Profile Service: an in-memory, write-back
profile store that serves feature computations (top-K / filter / decay
over arbitrary time windows) for online recommendation, with automatic
compaction, truncation and long-tail shrinking, read-write isolation,
per-caller quotas, consistent-hash sharding and multi-region replication.

Quick start::

    from repro import IPSCluster, TableConfig, TimeRange, SortType

    config = TableConfig(name="feed", attributes=("click", "like"))
    cluster = IPSCluster(config, num_nodes=4)
    client = cluster.client("my-app")

    client.add_profile(profile_id=1, timestamp_ms=..., slot=0, type_id=0,
                       fid=42, counts={"click": 1})
    cluster.run_background_cycle()   # merge write tables, flush cache
    top = client.get_profile_topk(1, 0, 0, TimeRange.current(86_400_000),
                                  SortType.ATTRIBUTE, k=10,
                                  sort_attribute="click")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .clock import (
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
    Clock,
    SimulatedClock,
    SystemClock,
)
from .config import (
    ShrinkConfig,
    SlotShrinkPolicy,
    TableConfig,
    TimeBand,
    TimeDimensionConfig,
    TruncateConfig,
    format_duration_ms,
    parse_duration_ms,
)
from .core import (
    FeatureResult,
    ProfileEngine,
    SortType,
    TimeRange,
    TimeRangeKind,
)
from .chaos import ChaosEngine, ChaosEvent, paper_fault_timeline
from .cluster import (
    AutoScaler,
    IPSClient,
    IPSCluster,
    MultiRegionDeployment,
    ResilienceConfig,
    ScalingPolicy,
)
from .assembly import AssembledFeatures, FeatureAssembler, FeatureSpec
from .catalog import FeatureCatalog
from .highlevel import CTRFeature, FeatureClient
from .monitoring import BatchQueryMetrics, ClusterMonitor, ClusterSnapshot
from .obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    render_span_tree,
)
from .errors import (
    ConfigError,
    IPSError,
    InvalidQueryError,
    InvalidTimeRangeError,
    ProfileNotFoundError,
    QuotaExceededError,
    StorageError,
    VersionConflictError,
)
from .server import BatchKeyResult, BatchReadOutcome, IPSNode, IPSService

__version__ = "0.1.0"

__all__ = [
    "AssembledFeatures",
    "AutoScaler",
    "BatchKeyResult",
    "BatchQueryMetrics",
    "BatchReadOutcome",
    "CTRFeature",
    "ChaosEngine",
    "ChaosEvent",
    "FeatureAssembler",
    "FeatureCatalog",
    "FeatureSpec",
    "Clock",
    "ClusterMonitor",
    "ClusterSnapshot",
    "ConfigError",
    "Counter",
    "FeatureClient",
    "FeatureResult",
    "Gauge",
    "Histogram",
    "IPSClient",
    "IPSCluster",
    "IPSError",
    "IPSNode",
    "IPSService",
    "InvalidQueryError",
    "InvalidTimeRangeError",
    "MILLIS_PER_DAY",
    "MILLIS_PER_HOUR",
    "MILLIS_PER_MINUTE",
    "MILLIS_PER_SECOND",
    "MetricsRegistry",
    "MultiRegionDeployment",
    "NULL_TRACER",
    "NullTracer",
    "ProfileEngine",
    "ProfileNotFoundError",
    "QuotaExceededError",
    "ResilienceConfig",
    "ScalingPolicy",
    "ShrinkConfig",
    "SimulatedClock",
    "SlotShrinkPolicy",
    "SortType",
    "Span",
    "StorageError",
    "SystemClock",
    "TableConfig",
    "TimeBand",
    "TimeDimensionConfig",
    "TimeRange",
    "TimeRangeKind",
    "Tracer",
    "TruncateConfig",
    "VersionConflictError",
    "format_duration_ms",
    "paper_fault_timeline",
    "parse_duration_ms",
    "render_span_tree",
    "__version__",
]
