"""Feature assembly for serving and training (§I).

The paper: "With the help of IPS, we can extract thousands of features
for a single request, assemble them for serving and flush them into
training data in parallel to avoid training-serving skew."

:class:`FeatureAssembler` implements that contract: a fixed list of
:class:`FeatureSpec` declarations is evaluated against IPS for one
profile per request, producing a deterministic, fixed-width
:class:`AssembledFeatures` record.  The *same* record is returned to the
ranking model and (optionally) published to a training topic — both sides
see byte-identical features, which is the skew-avoidance mechanism.

Each spec yields ``2 * k`` numbers: the top-k feature ids and their
primary counts, zero-padded to width so models get a stable input shape
regardless of how much history a user has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

from .clock import MILLIS_PER_DAY
from .core.query import FeatureResult, SortType
from .core.timerange import TimeRange
from .errors import ConfigError
from .ingest.streams import Topic


@dataclass(frozen=True)
class FeatureSpec:
    """One declared feature extraction.

    ``kind`` selects the IPS read API: ``"topk"`` (optionally weighted via
    ``weights``) or ``"decay"`` (exponential, parameterised by
    ``half_life_ms``).  ``attribute`` names the counter used both for
    sorting (top-K) and as the emitted value; ``None`` means total counts.
    """

    name: str
    slot: int
    window_ms: int
    type_id: int | None = None
    kind: Literal["topk", "decay"] = "topk"
    k: int = 8
    attribute: str | None = None
    weights: Mapping[str, float] | None = None
    half_life_ms: int = MILLIS_PER_DAY

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("feature spec needs a name")
        if self.k <= 0:
            raise ConfigError(f"spec {self.name!r}: k must be positive")
        if self.window_ms <= 0:
            raise ConfigError(f"spec {self.name!r}: window must be positive")
        if self.kind not in ("topk", "decay"):
            raise ConfigError(f"spec {self.name!r}: unknown kind {self.kind!r}")
        if self.weights is not None and self.kind != "topk":
            raise ConfigError(f"spec {self.name!r}: weights imply kind='topk'")

    @property
    def width(self) -> int:
        """Numbers this spec contributes to the flat vector."""
        return 2 * self.k


@dataclass(frozen=True)
class AssembledFeatures:
    """The per-request feature record shared by serving and training."""

    profile_id: int
    timestamp_ms: int
    #: spec name -> ((fid, value), ...) padded with (0, 0) to k pairs.
    features: Mapping[str, tuple[tuple[int, int], ...]]

    def vector(self) -> list[int]:
        """Flatten to the fixed-width model input, spec order preserved."""
        flat: list[int] = []
        for pairs in self.features.values():
            for fid, value in pairs:
                flat.append(fid)
                flat.append(value)
        return flat


@dataclass
class AssemblerStats:
    requests: int = 0
    specs_evaluated: int = 0
    training_records_published: int = 0


class FeatureAssembler:
    """Evaluates a spec list against IPS, once per ranking request."""

    def __init__(
        self,
        client,
        specs: Sequence[FeatureSpec],
        attributes: Sequence[str],
        training_topic: Topic | None = None,
    ) -> None:
        if not specs:
            raise ConfigError("assembler needs at least one feature spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate feature spec names in {names}")
        self._client = client
        self._specs = tuple(specs)
        self._attributes = tuple(attributes)
        self._training_topic = training_topic
        self.stats = AssemblerStats()
        # Validate attributes eagerly so misconfigured specs fail at
        # construction, not in the serving path.
        for spec in specs:
            if spec.attribute is not None and spec.attribute not in self._attributes:
                raise ConfigError(
                    f"spec {spec.name!r}: unknown attribute {spec.attribute!r}"
                )
            for weight_attr in (spec.weights or {}):
                if weight_attr not in self._attributes:
                    raise ConfigError(
                        f"spec {spec.name!r}: unknown weight attribute "
                        f"{weight_attr!r}"
                    )

    @property
    def vector_width(self) -> int:
        """Total flat-vector width (stable across requests)."""
        return sum(spec.width for spec in self._specs)

    # ------------------------------------------------------------------

    def assemble(self, profile_id: int, timestamp_ms: int) -> AssembledFeatures:
        """Extract every spec for one request and publish for training."""
        self.stats.requests += 1
        features: dict[str, tuple[tuple[int, int], ...]] = {}
        for spec in self._specs:
            self.stats.specs_evaluated += 1
            rows = self._evaluate(profile_id, spec)
            features[spec.name] = self._pad(rows, spec)
        record = AssembledFeatures(
            profile_id=profile_id,
            timestamp_ms=timestamp_ms,
            features=features,
        )
        if self._training_topic is not None:
            # The identical record goes to training: no skew by design.
            self._training_topic.produce(profile_id, record, timestamp_ms)
            self.stats.training_records_published += 1
        return record

    def _evaluate(self, profile_id: int, spec: FeatureSpec) -> list[FeatureResult]:
        window = TimeRange.current(spec.window_ms)
        if spec.kind == "decay":
            return self._client.get_profile_decay(
                profile_id, spec.slot, spec.type_id, window,
                decay_function="exponential",
                decay_factor=spec.half_life_ms,
                k=spec.k,
                sort_attribute=spec.attribute,
            )
        if spec.weights is not None:
            return self._client.get_profile_topk(
                profile_id, spec.slot, spec.type_id, window,
                SortType.WEIGHTED, spec.k, sort_weights=dict(spec.weights),
            )
        if spec.attribute is not None:
            return self._client.get_profile_topk(
                profile_id, spec.slot, spec.type_id, window,
                SortType.ATTRIBUTE, spec.k, sort_attribute=spec.attribute,
            )
        return self._client.get_profile_topk(
            profile_id, spec.slot, spec.type_id, window, SortType.TOTAL, spec.k
        )

    def _pad(
        self, rows: list[FeatureResult], spec: FeatureSpec
    ) -> tuple[tuple[int, int], ...]:
        value_index = (
            self._attributes.index(spec.attribute)
            if spec.attribute is not None
            else None
        )
        pairs: list[tuple[int, int]] = []
        for row in rows[: spec.k]:
            value = row.total() if value_index is None else row.count(value_index)
            pairs.append((row.fid, value))
        while len(pairs) < spec.k:
            pairs.append((0, 0))
        return tuple(pairs)
