"""Process-per-node cluster over a real socket transport.

Everything under ``repro.net`` escapes the simulation: this package is the
one place in the library allowed to touch the real wall clock and
``asyncio`` (enforced by ``tools/check_clock_usage.py``), because its job
is to run each :class:`~repro.server.node.IPSNode` as its **own OS
process** behind a real TCP seam — the deployment shape the in-process
cluster only models.

Layering:

* :mod:`repro.net.wire` — length-prefixed, CRC32-framed wire codec for
  requests/responses (reuses the varint primitives of
  :mod:`repro.storage.serialization`);
* :mod:`repro.net.transport` — the shared :class:`Transport` interface
  with two implementations: :class:`InProcessTransport` (the existing
  simulated ``server/rpc.py`` path) and :class:`SocketTransport` (a real
  blocking TCP client), plus :class:`RemoteNode`, the duck-typed node
  facade the cluster client routes to;
* :mod:`repro.net.registry` — node registry with heartbeat liveness,
  TTL eviction and deterministic master election, servable over the same
  wire protocol (:class:`RegistryServer`);
* :mod:`repro.net.replication` — R-way shard replication: sequence-
  numbered per-write deltas shipped asynchronously to the key's other
  roster-ring owners, hinted handoff for dead peers, and content-
  addressed anti-entropy repair (:class:`WorkerReplication`);
* :mod:`repro.net.worker` — the ``python -m repro.net.worker``
  entrypoint hosting one durable IPSNode (WAL + checkpoint + recovery +
  maintenance + replication/repair loops) over an asyncio TCP server;
* :mod:`repro.net.cluster` — :class:`ProcessCluster`, which spawns N
  worker processes, discovers them through the registry, and hands out
  :class:`~repro.cluster.client.IPSClient` instances whose hash-ring
  routing, retries, breakers, deadlines and hedged reads now run over
  actual sockets.
"""

from .cluster import NetRegion, ProcessCluster, ProcessDeployment
from .registry import MemberRecord, NodeRegistry, RegistryServer
from .replication import (
    ReplicaApplier,
    ReplicationLog,
    WorkerReplication,
)
from .transport import (
    InProcessTransport,
    RemoteNode,
    SocketTransport,
    Transport,
)
from .wire import Request, Response, WireCodecError, WriteDelta

__all__ = [
    "InProcessTransport",
    "MemberRecord",
    "NetRegion",
    "NodeRegistry",
    "ProcessCluster",
    "ProcessDeployment",
    "RegistryServer",
    "RemoteNode",
    "ReplicaApplier",
    "ReplicationLog",
    "Request",
    "Response",
    "SocketTransport",
    "Transport",
    "WireCodecError",
    "WorkerReplication",
    "WriteDelta",
]
