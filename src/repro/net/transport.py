"""The shared transport seam: one interface, two implementations.

:class:`Transport` is the contract both paths meet:

* :class:`InProcessTransport` routes through the existing simulated
  :class:`~repro.server.rpc.RPCServer` — the default everywhere else in
  the repo, byte-identical to the pre-``net/`` behaviour;
* :class:`SocketTransport` is a real blocking TCP client with a small
  connection pool, speaking the :mod:`repro.net.wire` frame protocol to a
  :mod:`repro.net.worker` process.

Both record per-call accounting into the same
:class:`~repro.server.rpc.RPCStats` (client wall latency + server-side
handler time), so the cluster client's hedging policy — which reads
``rpc.stats.last_client_ms - last_server_ms`` as the network estimate —
works unchanged over real sockets.

:class:`RemoteNode` is the duck-typed node facade the cluster client
routes to: it exposes ``node_id`` plus ``getattr`` method dispatch
exactly like :class:`~repro.server.proxy.RPCNodeProxy`, translating the
client's ``deadline`` kwarg into a per-call socket timeout.
"""

from __future__ import annotations

import itertools
import socket
import threading
from abc import ABC, abstractmethod
from types import SimpleNamespace
from typing import Any

from ..clock import perf_ms
from ..errors import NodeUnavailableError, RPCTimeoutError
from ..server.rpc import RPCServer, RPCStats
from . import wire

#: Methods a remote node serves over the wire: the proxy's RPC surface
#: plus the admin/ops endpoints the cluster manager uses.
RPC_METHODS = frozenset(
    {
        "add_profile",
        "add_profiles",
        "get_profile_topk",
        "get_profile_filter",
        "get_profile_decay",
        "multi_get_topk",
        "multi_get_filter",
        "multi_get_decay",
    }
)

ADMIN_METHODS = frozenset(
    {
        "ping",
        "node_stats",
        "checkpoint_now",
        "prepare_shutdown",
    }
)

#: Worker-to-worker replication surface: delta apply, anti-entropy digest
#: exchange, and the stats the failover bench and fleet reports poll.
REPLICATION_METHODS = frozenset(
    {
        "replicate_apply",
        "repair_digests",
        "repair_install",
        "repair_now",
        "replication_stats",
    }
)


class Transport(ABC):
    """One client-side channel to one node, whatever the medium."""

    #: Per-transport call accounting (client/server latency, failures).
    stats: RPCStats

    @property
    @abstractmethod
    def node_id(self) -> str:
        """Identifier of the node this transport reaches."""

    @abstractmethod
    def call(self, method: str, *args: Any, timeout_ms: float | None = None,
             **kwargs: Any) -> Any:
        """Invoke ``method`` remotely; raises the reconstructed error."""

    def close(self) -> None:  # pragma: no cover - default no-op
        """Release any underlying connections."""


class InProcessTransport(Transport):
    """The existing simulated RPC path behind the shared interface.

    Wraps a node in an :class:`~repro.server.rpc.RPCServer` with measured
    server time — the same configuration :class:`RPCNodeProxy` uses — so
    in-process and socket deployments differ only in the medium.
    """

    def __init__(self, node: Any, clock: Any, latency_model=None,
                 advance_clock: bool = False) -> None:
        self._node = node
        self.rpc = RPCServer(
            node, clock, latency_model, advance_clock=advance_clock
        )
        self.stats = self.rpc.stats

    @property
    def node_id(self) -> str:
        return getattr(self._node, "node_id", "unknown")

    def call(self, method: str, *args: Any, timeout_ms: float | None = None,
             **kwargs: Any) -> Any:
        # The simulated transport has no real wire to time out on; the
        # deadline is enforced by the resilience layer above.
        return self.rpc.call(method, *args, measure_server_time=True, **kwargs)


class SocketTransport(Transport):
    """Blocking TCP client speaking the framed wire protocol.

    Maintains a small pool of persistent connections (one per concurrent
    caller up to ``pool_size``); connections are dialled lazily, reused
    across calls, and discarded on any error so a half-written frame can
    never poison a later request.  Timeouts surface as
    :class:`~repro.errors.RPCTimeoutError`; connection failures as
    :class:`~repro.errors.NodeUnavailableError` — both retryable, so the
    resilience layer reroutes exactly as it does for simulated faults.
    """

    def __init__(
        self,
        node_id: str,
        host: str,
        port: int,
        *,
        connect_timeout_ms: float = 1_000.0,
        call_timeout_ms: float = 5_000.0,
        pool_size: int = 4,
    ) -> None:
        self._node_id = node_id
        self.host = host
        self.port = port
        self.connect_timeout_ms = connect_timeout_ms
        self.call_timeout_ms = call_timeout_ms
        self._pool: list[socket.socket] = []
        self._pool_size = pool_size
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False
        self.stats = RPCStats()
        #: Connections actually dialled; stays at pool_size under reuse.
        self.dials = 0

    @property
    def node_id(self) -> str:
        return self._node_id

    # -- connection pool ------------------------------------------------

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise NodeUnavailableError(self._node_id)
            if self._pool:
                return self._pool.pop()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_ms / 1000.0
            )
        except OSError as exc:
            raise NodeUnavailableError(self._node_id) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self.dials += 1
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                return
        sock.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            sock.close()

    # -- wire I/O -------------------------------------------------------

    @staticmethod
    def _recv_exact(sock: socket.socket, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = sock.recv(n - len(chunks))
            if not chunk:
                raise ConnectionError("peer closed mid-frame")
            chunks.extend(chunk)
        return bytes(chunks)

    def _roundtrip(self, sock: socket.socket, frame: bytes) -> wire.Response:
        sock.sendall(frame)
        header = self._recv_exact(sock, wire.HEADER_SIZE)
        length, crc = wire.decode_frame_header(header)
        payload = wire.check_frame_payload(self._recv_exact(sock, length), crc)
        message = wire.decode_message(payload)
        if not isinstance(message, wire.Response):
            raise wire.WireCodecError("expected a response frame")
        return message

    def call(self, method: str, *args: Any, timeout_ms: float | None = None,
             **kwargs: Any) -> Any:
        request = wire.Request(
            next(self._request_ids), method, tuple(args), dict(kwargs)
        )
        frame = wire.encode_request(request)
        budget_ms = timeout_ms if timeout_ms is not None else self.call_timeout_ms
        start = perf_ms()
        sock = self._checkout()
        try:
            sock.settimeout(max(budget_ms, 1.0) / 1000.0)
            response = self._roundtrip(sock, frame)
        except socket.timeout as exc:
            sock.close()
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise RPCTimeoutError(
                f"call {method} to {self._node_id} timed out after "
                f"{budget_ms:g} ms"
            ) from exc
        except (OSError, ConnectionError) as exc:
            sock.close()
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise NodeUnavailableError(self._node_id) from exc
        except wire.WireCodecError:
            sock.close()
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise
        self._checkin(sock)
        client_ms = perf_ms() - start
        if response.request_id != request.request_id:
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise wire.WireCodecError(
                f"response id {response.request_id} does not match "
                f"request id {request.request_id}"
            )
        with self._lock:
            self.stats.calls += 1
            if response.ok:
                self.stats.observe(client_ms, response.server_ms)
            else:
                self.stats.failures += 1
        if not response.ok:
            raise wire.error_from_wire(
                response.error_type, response.error_message, response.error_args
            )
        return response.value


class RemoteNode:
    """Duck-typed node facade over a :class:`Transport`.

    Drop-in for :class:`~repro.server.proxy.RPCNodeProxy` wherever the
    cluster client routes: exposes ``node_id``, dispatches the RPC surface
    via ``getattr``, and publishes ``.rpc.stats`` so hedging keeps its
    network-latency estimate.  The client's ``deadline`` kwarg — consumed
    by the in-process path before it reaches the node — becomes the
    per-call socket timeout here.
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        # The hedge policy reads `node.rpc.stats`; mirror the proxy shape.
        self.rpc = SimpleNamespace(stats=transport.stats)

    @property
    def node_id(self) -> str:
        return self.transport.node_id

    def __getattr__(self, name: str) -> Any:
        if (
            name in RPC_METHODS
            or name in ADMIN_METHODS
            or name in REPLICATION_METHODS
        ):
            transport = self.transport

            def call(*args: Any, **kwargs: Any) -> Any:
                deadline = kwargs.pop("deadline", None)
                timeout_ms = None
                if deadline is not None:
                    remaining = deadline.remaining_ms()
                    deadline.check(name)
                    timeout_ms = max(remaining, 1.0)
                return transport.call(name, *args, timeout_ms=timeout_ms, **kwargs)

            return call
        raise AttributeError(name)

    def close(self) -> None:
        self.transport.close()
