"""Worker process: one durable IPSNode behind an asyncio TCP server.

``python -m repro.net.worker --node-id w0 --data-dir /tmp/w0 ...`` hosts a
single :class:`~repro.server.node.IPSNode` with full file-backed
durability — CRC-framed KV store, group-commit WAL, checkpoint image —
recovers it on start, and serves the framed wire protocol on a TCP port.
Handlers run on a small thread pool (the node stack is thread-safe and
the real work releases the GIL in I/O and numpy), while the event loop
stays free for framing and new connections.

Four background duties run on the loop:

* **maintenance** — drain the isolation write table and run one cache
  cycle (which also drives periodic checkpoints) every
  ``maintenance_ms``;
* **heartbeat** — register with the node registry and refresh liveness
  every ``heartbeat_ms``, piggybacking the replication lag report and
  adopting the fresh membership roster; a rejected heartbeat (stale
  generation after an eviction) falls back to re-registration;
* **replication shipping** — drain the per-peer delta queues (see
  :mod:`repro.net.replication`) every ``replication_ms``;
* **anti-entropy repair** — one digest-exchange round against the next
  live peer every ``repair_ms``.

Graceful shutdown — SIGTERM or the ``prepare_shutdown`` admin RPC — is
strictly ordered so no acked write can be lost: stop accepting, drain
in-flight requests, deregister, then ``node.shutdown()`` (merge + flush +
final checkpoint) and close the WAL **before** the event loop exits.
SIGKILL skips all of that by definition; the WAL replay on the next start
is the safety net (the crash-recovery contract of `make crashcheck`).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..clock import perf_ms
from ..config import TableConfig
from ..server.node import IPSNode
from ..server.recovery import NodeDurability
from ..storage.filestore import FileKVStore
from ..storage.wal import FileLogFile, WriteAheadLog
from . import wire
from .replication import WorkerReplication
from .transport import (
    ADMIN_METHODS,
    REPLICATION_METHODS,
    RPC_METHODS,
    SocketTransport,
)


def build_durable_node(
    node_id: str,
    data_dir: str | Path,
    *,
    table: str = "user_profile",
    attributes: tuple[str, ...] = ("like", "comment", "share"),
    checkpoint_interval: int = 256,
    wal_sync: str = "group",
    cache_capacity_bytes: int = 256 * 1024 * 1024,
) -> IPSNode:
    """Build a fully file-backed node and recover it.

    Everything lives under ``data_dir``: the KV store holds flushed
    profile images (recovery only rebuilds WAL-touched profiles — the
    untouched ones must survive in durable storage), the WAL holds the
    acked-but-unflushed tail, the checkpoint file the replay base.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    store = FileKVStore(data_dir / "kv.log", durability="batch")
    durability = NodeDurability(
        WriteAheadLog(FileLogFile(data_dir / "wal.log"), sync=wal_sync),
        FileLogFile(data_dir / "checkpoint.log"),
        checkpoint_interval_records=checkpoint_interval,
        node_id=node_id,
    )
    node = IPSNode(
        node_id,
        TableConfig(name=table, attributes=tuple(attributes)),
        store,
        cache_capacity_bytes=cache_capacity_bytes,
        durability=durability,
    )
    node.recover()
    return node


class WorkerServer:
    """Serves one node over TCP; embeddable in-thread or as a process."""

    def __init__(
        self,
        node: IPSNode,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry_host: str | None = None,
        registry_port: int | None = None,
        heartbeat_ms: float = 500.0,
        maintenance_ms: float = 200.0,
        drain_timeout_ms: float = 5_000.0,
        handler_threads: int = 4,
        replication_factor: int = 0,
        replication_ms: float = 50.0,
        repair_ms: float = 2_000.0,
        data_dir: str | Path | None = None,
    ) -> None:
        self.node = node
        self.host = host
        self.port = port
        self.registry_host = registry_host
        self.registry_port = registry_port
        self.heartbeat_ms = heartbeat_ms
        self.maintenance_ms = maintenance_ms
        self.drain_timeout_ms = drain_timeout_ms
        self.replication_ms = replication_ms
        self.repair_ms = repair_ms
        self.replication = WorkerReplication(
            node,
            factor=replication_factor,
            data_dir=data_dir,
            transport_factory=lambda node_id, host_, port_: SocketTransport(
                node_id, host_, port_, call_timeout_ms=2_000.0, pool_size=1
            ),
        )
        self._pool = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="ips-worker"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._inflight = 0
        self._closing = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        #: Exposed for tests: set once the graceful sequence finished.
        self.shut_down_cleanly = False

    # ------------------------------------------------------------------
    # Embedded (thread) lifecycle — used by the transport tests
    # ------------------------------------------------------------------

    def start(self) -> "WorkerServer":
        self._thread = threading.Thread(
            target=self.run, name=f"ips-worker-{self.node.node_id}", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("worker server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("worker server failed to start") from (
                self._startup_error
            )
        return self

    def stop(self) -> None:
        """Trigger the graceful sequence from another thread and wait."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=15.0)

    def request_shutdown(self) -> None:
        loop, event = self._loop, self._shutdown_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed: shutdown finished

    # ------------------------------------------------------------------
    # Main body
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run the server until shutdown (blocks the calling thread)."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()

    async def _serve(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        tasks = [loop.create_task(self._maintenance_loop())]
        if self.registry_host is not None and self.registry_port is not None:
            tasks.append(loop.create_task(self._heartbeat_loop()))
            tasks.append(loop.create_task(self._replication_loop()))
            tasks.append(loop.create_task(self._repair_loop()))
        self._ready.set()
        print(f"READY {self.host} {self.port}", flush=True)
        await self._shutdown_event.wait()
        # ---- graceful ordering (satellite: SIGTERM must not lose acks) --
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        deadline = loop.time() + self.drain_timeout_ms / 1000.0
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        # A graceful leaver hands its last deltas to the surviving owners
        # before it drops out of the roster — otherwise the final window
        # of writes would exist nowhere but its own (departing) disk.
        if self.replication.enabled:
            await loop.run_in_executor(None, self._final_replication_drain)
        if self.registry_host is not None and self.registry_port is not None:
            try:
                await self._registry_call("deregister", self.node.node_id)
            except Exception:  # noqa: BLE001 - registry may already be gone
                pass
        for writer in list(self._writers):
            writer.close()
        # The node flush + final checkpoint runs *before* the loop exits;
        # only then is the WAL closed.  This is the ordering under test.
        await loop.run_in_executor(None, self._close_node)
        self._pool.shutdown(wait=False)
        self.shut_down_cleanly = True

    def _final_replication_drain(self, budget_s: float = 3.0) -> None:
        deadline = perf_ms() + budget_s * 1_000.0
        while perf_ms() < deadline:
            try:
                shipped = self.replication.ship_once()
            except Exception:  # noqa: BLE001 - peers may be gone too
                return
            if shipped == 0:
                # Either drained, or every remaining peer is unreachable;
                # both end the handoff — repair owes the rest.
                return

    def _close_node(self) -> None:
        self.replication.close()
        self.node.shutdown()  # merge + flush_all + final checkpoint
        if self.node.durability is not None:
            self.node.durability.close()
        store = getattr(self.node.persistence, "_store", None)
        if store is not None and hasattr(store, "close"):
            store.close()

    # ------------------------------------------------------------------
    # Request serving
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        self._writers.add(writer)
        try:
            while not self._closing:
                try:
                    payload = await wire.read_frame_async(reader)
                except wire.WireCodecError:
                    break  # torn frame: drop the connection
                if payload is None:
                    break
                self._inflight += 1
                try:
                    response = await loop.run_in_executor(
                        self._pool, self._dispatch, payload
                    )
                finally:
                    self._inflight -= 1
                writer.write(wire.encode_response(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def _dispatch(self, payload: bytes) -> wire.Response:
        start = perf_ms()
        request_id = 0
        try:
            message = wire.decode_message(payload)
            if not isinstance(message, wire.Request):
                raise wire.WireCodecError("expected a request frame")
            request_id = message.request_id
            value = self._invoke(message.method, message.args, message.kwargs)
        except Exception as exc:  # noqa: BLE001 - every error goes on the wire
            error_type, text, error_args = wire.error_to_wire(exc)
            return wire.Response(
                request_id=request_id,
                ok=False,
                error_type=error_type,
                error_message=text,
                error_args=error_args,
                server_ms=perf_ms() - start,
            )
        return wire.Response(
            request_id=request_id,
            ok=True,
            value=value,
            server_ms=perf_ms() - start,
        )

    def _invoke(self, method: str, args: tuple, kwargs: dict):
        if method in RPC_METHODS:
            result = getattr(self.node, method)(*args, **kwargs)
            if (
                self.replication.enabled
                and method in ("add_profile", "add_profiles")
                and kwargs.get("caller") != "replication"
            ):
                # The write was acked (WAL-committed) — now fan the delta
                # out to the key's other owners, asynchronously.
                self._replicate_write(method, args)
            return result
        if method in REPLICATION_METHODS:
            return getattr(self, f"_repl_{method}")(*args, **kwargs)
        if method in ADMIN_METHODS:
            return getattr(self, f"_admin_{method}")(*args, **kwargs)
        raise wire.WireCodecError(f"unknown method {method!r}")

    def _replicate_write(self, method: str, args: tuple) -> None:
        if method == "add_profile":
            profile_id, timestamp_ms, slot, type_id, fid, counts = args[:6]
            self.replication.on_client_write(
                profile_id, timestamp_ms, slot, type_id, fid, counts
            )
        else:  # add_profiles: one delta per (fid, counts) pair
            profile_id, timestamp_ms, slot, type_id, fids, counts_list = args[:6]
            for fid, counts in zip(fids, counts_list):
                self.replication.on_client_write(
                    profile_id, timestamp_ms, slot, type_id, fid, counts
                )

    # ------------------------------------------------------------------
    # Admin surface
    # ------------------------------------------------------------------

    def _admin_ping(self) -> dict:
        return {"node_id": self.node.node_id, "pid": os.getpid()}

    def _admin_node_stats(self) -> dict:
        node = self.node
        stats = {
            "node_id": node.node_id,
            "pid": os.getpid(),
            "reads": node.stats.reads,
            "writes": node.stats.writes,
            "batch_reads": node.stats.batch_reads,
            "batch_keys": node.stats.batch_keys,
            "merge_passes": node.stats.merge_passes,
            "resident": node.cache.resident_count(),
            "memory_bytes": node.memory_bytes(),
        }
        if node.durability is not None:
            wal = node.durability.wal
            stats["wal_last_sequence"] = wal.last_sequence
            stats["wal_appends"] = wal.stats.appends
        if self.replication.enabled:
            stats["replication"] = self.replication.stats()
        return stats

    def _admin_checkpoint_now(self) -> dict:
        report = self.node.checkpoint()
        return {
            "checkpointed": report is not None,
            "wal_last_sequence": (
                self.node.durability.wal.last_sequence
                if self.node.durability is not None
                else 0
            ),
        }

    # ------------------------------------------------------------------
    # Replication surface (worker-to-worker + bench/ops introspection)
    # ------------------------------------------------------------------

    def _repl_replicate_apply(self, origin: str, deltas: list) -> dict:
        return self.replication.apply_remote(origin, deltas)

    def _repl_repair_digests(self, profile_ids: list) -> dict:
        return self.replication.repair_digests(list(profile_ids))

    def _repl_repair_install(self, profile_id: int, blobs: list) -> dict:
        return self.replication.repair_install(profile_id, list(blobs))

    def _repl_repair_now(self, rounds: int = 1) -> dict:
        """Run repair rounds synchronously (bench/test convergence helper)."""
        total = {"keys": 0, "shipped": 0, "bytes": 0}
        for _ in range(max(1, int(rounds))):
            result = self.replication.repair_round()
            for key in total:
                total[key] += result.get(key) or 0
        return total

    def _repl_replication_stats(self) -> dict:
        return self.replication.stats()

    def _admin_prepare_shutdown(self) -> dict:
        """Ack first, then run the same graceful sequence as SIGTERM."""
        loop = self._loop
        assert loop is not None
        loop.call_soon_threadsafe(
            loop.call_later, 0.05, self._shutdown_event.set
        )
        return {"shutting_down": True}

    # ------------------------------------------------------------------
    # Registry heartbeat
    # ------------------------------------------------------------------

    async def _registry_call(self, method: str, *args, **kwargs):
        reader, writer = await asyncio.open_connection(
            self.registry_host, self.registry_port
        )
        try:
            writer.write(
                wire.encode_request(wire.Request(1, method, args, kwargs))
            )
            await writer.drain()
            payload = await wire.read_frame_async(reader)
            if payload is None:
                raise ConnectionError("registry closed the connection")
            response = wire.decode_message(payload)
            if not isinstance(response, wire.Response):
                raise wire.WireCodecError("expected a response frame")
            if not response.ok:
                raise wire.error_from_wire(
                    response.error_type,
                    response.error_message,
                    response.error_args,
                )
            return response.value
        finally:
            writer.close()

    async def _heartbeat_loop(self) -> None:
        generation: int | None = None
        while True:
            try:
                if generation is None:
                    reply = await self._registry_call(
                        "register", self.node.node_id, self.host, self.port
                    )
                    generation = reply["generation"]
                else:
                    alive = await self._registry_call(
                        "heartbeat",
                        self.node.node_id,
                        generation,
                        report=self.replication.heartbeat_report(),
                    )
                    if not alive:
                        # Evicted (e.g. a long GC pause): re-register with
                        # a fresh generation instead of going zombie.
                        generation = None
                        continue
                # Every beat also refreshes the replication roster — the
                # placement ring over live members + tombstones.  Done on
                # the register path too, so a worker knows its owner sets
                # before the first client write can land.
                snapshot = await self._registry_call("members")
                self.replication.update_membership(snapshot)
            except (OSError, ConnectionError, wire.WireCodecError):
                pass  # registry temporarily unreachable: retry next tick
            await asyncio.sleep(self.heartbeat_ms / 1000.0)

    async def _replication_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.replication_ms / 1000.0)
            if not self.replication.enabled:
                continue
            try:
                await loop.run_in_executor(
                    self._pool, self.replication.ship_once
                )
            except RuntimeError:
                return  # pool shut down under us mid-exit
            except Exception:  # noqa: BLE001 - keep the loop alive
                pass

    async def _repair_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.repair_ms / 1000.0)
            if not self.replication.enabled:
                continue
            try:
                await loop.run_in_executor(
                    self._pool, self.replication.repair_round
                )
            except RuntimeError:
                return
            except Exception:  # noqa: BLE001 - keep the loop alive
                pass

    async def _maintenance_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.maintenance_ms / 1000.0)
            try:
                await loop.run_in_executor(self._pool, self._maintenance_once)
            except RuntimeError:
                return  # pool shut down under us mid-exit
            except Exception:  # noqa: BLE001 - keep the loop alive
                pass

    def _maintenance_once(self) -> None:
        self.node.merge_write_table()
        self.node.run_cache_cycle()  # also drives maybe_checkpoint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Host one durable IPSNode over a TCP wire server."
    )
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--registry-host", default=None)
    parser.add_argument("--registry-port", type=int, default=None)
    parser.add_argument("--table", default="user_profile")
    parser.add_argument(
        "--attributes", default="like,comment,share",
        help="comma-separated counter schema",
    )
    parser.add_argument("--checkpoint-interval", type=int, default=256)
    parser.add_argument("--wal-sync", default="group",
                        choices=("always", "group", "manual"))
    parser.add_argument("--heartbeat-ms", type=float, default=500.0)
    parser.add_argument("--maintenance-ms", type=float, default=200.0)
    parser.add_argument("--handler-threads", type=int, default=4)
    parser.add_argument(
        "--replication-factor", type=int, default=0,
        help="copies per key range; 0 adopts the registry's factor",
    )
    parser.add_argument("--replication-ms", type=float, default=50.0)
    parser.add_argument("--repair-ms", type=float, default=2_000.0)
    args = parser.parse_args(argv)

    node = build_durable_node(
        args.node_id,
        args.data_dir,
        table=args.table,
        attributes=tuple(a for a in args.attributes.split(",") if a),
        checkpoint_interval=args.checkpoint_interval,
        wal_sync=args.wal_sync,
    )
    server = WorkerServer(
        node,
        host=args.host,
        port=args.port,
        registry_host=args.registry_host,
        registry_port=args.registry_port,
        heartbeat_ms=args.heartbeat_ms,
        maintenance_ms=args.maintenance_ms,
        handler_threads=args.handler_threads,
        replication_factor=args.replication_factor,
        replication_ms=args.replication_ms,
        repair_ms=args.repair_ms,
        data_dir=args.data_dir,
    )

    def _on_sigterm(signum, frame) -> None:  # noqa: ARG001
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, _on_sigterm)
    server.run()  # blocks until the graceful sequence completes
    return 0 if server.shut_down_cleanly else 1


if __name__ == "__main__":
    sys.exit(main())
