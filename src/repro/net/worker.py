"""Worker process: one durable IPSNode behind an asyncio TCP server.

``python -m repro.net.worker --node-id w0 --data-dir /tmp/w0 ...`` hosts a
single :class:`~repro.server.node.IPSNode` with full file-backed
durability — CRC-framed KV store, group-commit WAL, checkpoint image —
recovers it on start, and serves the framed wire protocol on a TCP port.
Handlers run on a small thread pool (the node stack is thread-safe and
the real work releases the GIL in I/O and numpy), while the event loop
stays free for framing and new connections.

Two background duties run on the loop:

* **maintenance** — drain the isolation write table and run one cache
  cycle (which also drives periodic checkpoints) every
  ``maintenance_ms``;
* **heartbeat** — register with the node registry and refresh liveness
  every ``heartbeat_ms``; a rejected heartbeat (stale generation after an
  eviction) falls back to re-registration.

Graceful shutdown — SIGTERM or the ``prepare_shutdown`` admin RPC — is
strictly ordered so no acked write can be lost: stop accepting, drain
in-flight requests, deregister, then ``node.shutdown()`` (merge + flush +
final checkpoint) and close the WAL **before** the event loop exits.
SIGKILL skips all of that by definition; the WAL replay on the next start
is the safety net (the crash-recovery contract of `make crashcheck`).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..clock import perf_ms
from ..config import TableConfig
from ..server.node import IPSNode
from ..server.recovery import NodeDurability
from ..storage.filestore import FileKVStore
from ..storage.wal import FileLogFile, WriteAheadLog
from . import wire
from .transport import ADMIN_METHODS, RPC_METHODS


def build_durable_node(
    node_id: str,
    data_dir: str | Path,
    *,
    table: str = "user_profile",
    attributes: tuple[str, ...] = ("like", "comment", "share"),
    checkpoint_interval: int = 256,
    wal_sync: str = "group",
    cache_capacity_bytes: int = 256 * 1024 * 1024,
) -> IPSNode:
    """Build a fully file-backed node and recover it.

    Everything lives under ``data_dir``: the KV store holds flushed
    profile images (recovery only rebuilds WAL-touched profiles — the
    untouched ones must survive in durable storage), the WAL holds the
    acked-but-unflushed tail, the checkpoint file the replay base.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    store = FileKVStore(data_dir / "kv.log", durability="batch")
    durability = NodeDurability(
        WriteAheadLog(FileLogFile(data_dir / "wal.log"), sync=wal_sync),
        FileLogFile(data_dir / "checkpoint.log"),
        checkpoint_interval_records=checkpoint_interval,
        node_id=node_id,
    )
    node = IPSNode(
        node_id,
        TableConfig(name=table, attributes=tuple(attributes)),
        store,
        cache_capacity_bytes=cache_capacity_bytes,
        durability=durability,
    )
    node.recover()
    return node


class WorkerServer:
    """Serves one node over TCP; embeddable in-thread or as a process."""

    def __init__(
        self,
        node: IPSNode,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry_host: str | None = None,
        registry_port: int | None = None,
        heartbeat_ms: float = 500.0,
        maintenance_ms: float = 200.0,
        drain_timeout_ms: float = 5_000.0,
        handler_threads: int = 4,
    ) -> None:
        self.node = node
        self.host = host
        self.port = port
        self.registry_host = registry_host
        self.registry_port = registry_port
        self.heartbeat_ms = heartbeat_ms
        self.maintenance_ms = maintenance_ms
        self.drain_timeout_ms = drain_timeout_ms
        self._pool = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="ips-worker"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._inflight = 0
        self._closing = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        #: Exposed for tests: set once the graceful sequence finished.
        self.shut_down_cleanly = False

    # ------------------------------------------------------------------
    # Embedded (thread) lifecycle — used by the transport tests
    # ------------------------------------------------------------------

    def start(self) -> "WorkerServer":
        self._thread = threading.Thread(
            target=self.run, name=f"ips-worker-{self.node.node_id}", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("worker server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("worker server failed to start") from (
                self._startup_error
            )
        return self

    def stop(self) -> None:
        """Trigger the graceful sequence from another thread and wait."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=15.0)

    def request_shutdown(self) -> None:
        loop, event = self._loop, self._shutdown_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed: shutdown finished

    # ------------------------------------------------------------------
    # Main body
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run the server until shutdown (blocks the calling thread)."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()

    async def _serve(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        tasks = [loop.create_task(self._maintenance_loop())]
        if self.registry_host is not None and self.registry_port is not None:
            tasks.append(loop.create_task(self._heartbeat_loop()))
        self._ready.set()
        print(f"READY {self.host} {self.port}", flush=True)
        await self._shutdown_event.wait()
        # ---- graceful ordering (satellite: SIGTERM must not lose acks) --
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        deadline = loop.time() + self.drain_timeout_ms / 1000.0
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        if self.registry_host is not None and self.registry_port is not None:
            try:
                await self._registry_call("deregister", self.node.node_id)
            except Exception:  # noqa: BLE001 - registry may already be gone
                pass
        for writer in list(self._writers):
            writer.close()
        # The node flush + final checkpoint runs *before* the loop exits;
        # only then is the WAL closed.  This is the ordering under test.
        await loop.run_in_executor(None, self._close_node)
        self._pool.shutdown(wait=False)
        self.shut_down_cleanly = True

    def _close_node(self) -> None:
        self.node.shutdown()  # merge + flush_all + final checkpoint
        if self.node.durability is not None:
            self.node.durability.close()
        store = getattr(self.node.persistence, "_store", None)
        if store is not None and hasattr(store, "close"):
            store.close()

    # ------------------------------------------------------------------
    # Request serving
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        self._writers.add(writer)
        try:
            while not self._closing:
                try:
                    payload = await wire.read_frame_async(reader)
                except wire.WireCodecError:
                    break  # torn frame: drop the connection
                if payload is None:
                    break
                self._inflight += 1
                try:
                    response = await loop.run_in_executor(
                        self._pool, self._dispatch, payload
                    )
                finally:
                    self._inflight -= 1
                writer.write(wire.encode_response(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def _dispatch(self, payload: bytes) -> wire.Response:
        start = perf_ms()
        request_id = 0
        try:
            message = wire.decode_message(payload)
            if not isinstance(message, wire.Request):
                raise wire.WireCodecError("expected a request frame")
            request_id = message.request_id
            value = self._invoke(message.method, message.args, message.kwargs)
        except Exception as exc:  # noqa: BLE001 - every error goes on the wire
            error_type, text, error_args = wire.error_to_wire(exc)
            return wire.Response(
                request_id=request_id,
                ok=False,
                error_type=error_type,
                error_message=text,
                error_args=error_args,
                server_ms=perf_ms() - start,
            )
        return wire.Response(
            request_id=request_id,
            ok=True,
            value=value,
            server_ms=perf_ms() - start,
        )

    def _invoke(self, method: str, args: tuple, kwargs: dict):
        if method in RPC_METHODS:
            return getattr(self.node, method)(*args, **kwargs)
        if method in ADMIN_METHODS:
            return getattr(self, f"_admin_{method}")(*args, **kwargs)
        raise wire.WireCodecError(f"unknown method {method!r}")

    # ------------------------------------------------------------------
    # Admin surface
    # ------------------------------------------------------------------

    def _admin_ping(self) -> dict:
        return {"node_id": self.node.node_id, "pid": os.getpid()}

    def _admin_node_stats(self) -> dict:
        node = self.node
        stats = {
            "node_id": node.node_id,
            "pid": os.getpid(),
            "reads": node.stats.reads,
            "writes": node.stats.writes,
            "batch_reads": node.stats.batch_reads,
            "batch_keys": node.stats.batch_keys,
            "merge_passes": node.stats.merge_passes,
            "resident": node.cache.resident_count(),
            "memory_bytes": node.memory_bytes(),
        }
        if node.durability is not None:
            wal = node.durability.wal
            stats["wal_last_sequence"] = wal.last_sequence
            stats["wal_appends"] = wal.stats.appends
        return stats

    def _admin_checkpoint_now(self) -> dict:
        report = self.node.checkpoint()
        return {
            "checkpointed": report is not None,
            "wal_last_sequence": (
                self.node.durability.wal.last_sequence
                if self.node.durability is not None
                else 0
            ),
        }

    def _admin_prepare_shutdown(self) -> dict:
        """Ack first, then run the same graceful sequence as SIGTERM."""
        loop = self._loop
        assert loop is not None
        loop.call_soon_threadsafe(
            loop.call_later, 0.05, self._shutdown_event.set
        )
        return {"shutting_down": True}

    # ------------------------------------------------------------------
    # Registry heartbeat
    # ------------------------------------------------------------------

    async def _registry_call(self, method: str, *args, **kwargs):
        reader, writer = await asyncio.open_connection(
            self.registry_host, self.registry_port
        )
        try:
            writer.write(
                wire.encode_request(wire.Request(1, method, args, kwargs))
            )
            await writer.drain()
            payload = await wire.read_frame_async(reader)
            if payload is None:
                raise ConnectionError("registry closed the connection")
            response = wire.decode_message(payload)
            if not isinstance(response, wire.Response):
                raise wire.WireCodecError("expected a response frame")
            if not response.ok:
                raise wire.error_from_wire(
                    response.error_type,
                    response.error_message,
                    response.error_args,
                )
            return response.value
        finally:
            writer.close()

    async def _heartbeat_loop(self) -> None:
        generation: int | None = None
        while True:
            try:
                if generation is None:
                    reply = await self._registry_call(
                        "register", self.node.node_id, self.host, self.port
                    )
                    generation = reply["generation"]
                else:
                    alive = await self._registry_call(
                        "heartbeat", self.node.node_id, generation
                    )
                    if not alive:
                        # Evicted (e.g. a long GC pause): re-register with
                        # a fresh generation instead of going zombie.
                        generation = None
                        continue
            except (OSError, ConnectionError, wire.WireCodecError):
                pass  # registry temporarily unreachable: retry next tick
            await asyncio.sleep(self.heartbeat_ms / 1000.0)

    async def _maintenance_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.maintenance_ms / 1000.0)
            try:
                await loop.run_in_executor(self._pool, self._maintenance_once)
            except RuntimeError:
                return  # pool shut down under us mid-exit
            except Exception:  # noqa: BLE001 - keep the loop alive
                pass

    def _maintenance_once(self) -> None:
        self.node.merge_write_table()
        self.node.run_cache_cycle()  # also drives maybe_checkpoint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Host one durable IPSNode over a TCP wire server."
    )
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--registry-host", default=None)
    parser.add_argument("--registry-port", type=int, default=None)
    parser.add_argument("--table", default="user_profile")
    parser.add_argument(
        "--attributes", default="like,comment,share",
        help="comma-separated counter schema",
    )
    parser.add_argument("--checkpoint-interval", type=int, default=256)
    parser.add_argument("--wal-sync", default="group",
                        choices=("always", "group", "manual"))
    parser.add_argument("--heartbeat-ms", type=float, default=500.0)
    parser.add_argument("--maintenance-ms", type=float, default=200.0)
    parser.add_argument("--handler-threads", type=int, default=4)
    args = parser.parse_args(argv)

    node = build_durable_node(
        args.node_id,
        args.data_dir,
        table=args.table,
        attributes=tuple(a for a in args.attributes.split(",") if a),
        checkpoint_interval=args.checkpoint_interval,
        wal_sync=args.wal_sync,
    )
    server = WorkerServer(
        node,
        host=args.host,
        port=args.port,
        registry_host=args.registry_host,
        registry_port=args.registry_port,
        heartbeat_ms=args.heartbeat_ms,
        maintenance_ms=args.maintenance_ms,
        handler_threads=args.handler_threads,
    )

    def _on_sigterm(signum, frame) -> None:  # noqa: ARG001
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, _on_sigterm)
    server.run()  # blocks until the graceful sequence completes
    return 0 if server.shut_down_cleanly else 1


if __name__ == "__main__":
    sys.exit(main())
