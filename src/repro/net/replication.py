"""R-way shard replication for the process cluster: deltas, hints, repair.

Three mechanisms keep every key range alive when a worker dies, layered
from cheapest to most thorough:

1. **Delta shipping** (Monolith-style): every client write a worker
   accepts is also enqueued — as a sequence-numbered
   :class:`~repro.net.wire.WriteDelta`, the logical write itself — for the
   other R−1 owners of that key, and a background loop drains the
   per-peer queues in batches.  Replication bytes scale with the write
   rate, never with profile size.
2. **Hinted handoff**: the per-peer queue does not care whether the peer
   is currently alive.  Deltas for a dead peer simply accumulate
   (bounded) and drain automatically when it re-registers — the rejoining
   worker catches up from exact deltas, in time proportional to what it
   missed.
3. **Anti-entropy repair** (RecD-style): a periodic duty cycle walks
   owned keys, exchanges per-slice content digests with each replica, and
   ships only the slice blocks whose digests differ.  Digest-identical
   blocks are never re-sent — content addressing is what keeps repair
   bytes ≪ dataset bytes — and repair is the backstop for anything the
   delta stream lost (queue overflow, a worker that was dead longer than
   its queue bound).

**Placement** is computed on a ring over the *roster* — live members plus
the registry's dead-but-remembered tombstones — so the owner set of a key
is stable across a crash.  Client routing walks the live ring, which is
exactly the roster walk with dead nodes skipped: the node a client fails
over to *is* the first surviving replica, so promotion needs no extra
handshake.  Consistency is the paper's §III-G contract: stale-but-
available, convergent because writes are commutative increments.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from ..cluster.hashring import ConsistentHashRing
from ..core.profile import ProfileData
from ..errors import NoHealthyNodeError
from ..storage.serialization import ProfileCodec
from .wire import WriteDelta, write_delta_wire_bytes

#: Sequence numbers are persisted as reservations of this many at a time;
#: a crashed origin skips at most one block and can never reuse a number.
SEQ_RESERVE_BLOCK = 10_000

_DIGEST_SIZE = 16


def block_digest(blob: bytes) -> bytes:
    """Content address of one encoded slice block."""
    return hashlib.blake2b(blob, digest_size=_DIGEST_SIZE).digest()


def digest_table(profile: ProfileData) -> list[tuple[int, int, bytes]]:
    """``(start_ms, end_ms, digest)`` for every slice, newest first."""
    table = []
    for profile_slice in profile.slices:
        blob = ProfileCodec.encode_slice(profile_slice)
        table.append(
            (profile_slice.start_ms, profile_slice.end_ms, block_digest(blob))
        )
    return table


def diff_blocks(
    profile: ProfileData, peer_digests: Iterable[tuple[int, int, bytes]]
) -> tuple[list[bytes], int, int]:
    """Slice blocks the peer is missing, by content digest.

    Returns ``(blobs_to_ship, matched_blocks, matched_bytes)`` — matched
    blocks are digest-identical on both sides and are *not* shipped; their
    accounting is the dedup saving the bench gates on.
    """
    have = {bytes(entry[2]) for entry in peer_digests}
    ship: list[bytes] = []
    matched_blocks = 0
    matched_bytes = 0
    for profile_slice in profile.slices:
        blob = ProfileCodec.encode_slice(profile_slice)
        if block_digest(blob) in have:
            matched_blocks += 1
            matched_bytes += len(blob)
        else:
            ship.append(blob)
    return ship, matched_blocks, matched_bytes


def install_blocks(profile: ProfileData, blobs: list[bytes]) -> int:
    """Install shipped slice blocks, dropping any overlapping local slice.

    Overlap resolution is whole-block: the shipped (acting-primary) copy
    of a time range wins over whatever the local replica had there, which
    is the stale-but-available contract — repair converges replicas to
    the acting primary's state, slice by slice.  Returns bytes installed.
    """
    incoming = [ProfileCodec.decode_slice(blob) for blob in blobs]
    if not incoming:
        return 0
    kept = [
        existing
        for existing in profile.slices
        if not any(
            existing.start_ms < new.end_ms and new.start_ms < existing.end_ms
            for new in incoming
        )
    ]
    merged = sorted(kept + incoming, key=lambda s: s.start_ms, reverse=True)
    profile.replace_slices(merged)
    return sum(len(blob) for blob in blobs)


class ReplicationLog:
    """Outbound side: per-peer delta queues with durable sequence numbers.

    One monotonic sequence per origin worker, persisted as reserved
    blocks (:data:`SEQ_RESERVE_BLOCK`) so a crash skips numbers instead of
    reusing them.  Queues are bounded; overflow drops the oldest delta and
    leaves the hole for anti-entropy repair to close.
    """

    def __init__(
        self,
        node_id: str,
        state: "_StateFile | None" = None,
        *,
        max_queue: int = 50_000,
    ) -> None:
        self.node_id = node_id
        self._state = state
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._queues: dict[str, deque[WriteDelta]] = {}
        reserved = state.seq_reserved if state is not None else 0
        #: Crash-safe restart point: everything below ``reserved`` may
        #: have been handed out by a previous incarnation.
        self._next_seq = reserved + 1
        self._reserved = reserved
        self.overflows = 0
        self.enqueued = 0

    def append(
        self,
        peers: Iterable[str],
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts: tuple[int, ...],
    ) -> int:
        """Assign one sequence number and queue the delta for ``peers``."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            if seq > self._reserved:
                self._reserved += SEQ_RESERVE_BLOCK
                if self._state is not None:
                    self._state.save_seq(self._reserved)
            delta = WriteDelta(
                seq, profile_id, timestamp_ms, slot, type_id, fid, counts
            )
            for peer in peers:
                queue = self._queues.setdefault(peer, deque())
                if len(queue) >= self.max_queue:
                    queue.popleft()
                    self.overflows += 1
                queue.append(delta)
                self.enqueued += 1
            return seq

    def batch_for(self, peer: str, max_deltas: int) -> list[WriteDelta]:
        """Peek (not pop) the next batch for a peer; :meth:`ack` removes."""
        with self._lock:
            queue = self._queues.get(peer)
            if not queue:
                return []
            return [queue[i] for i in range(min(len(queue), max_deltas))]

    def ack(self, peer: str, through_seq: int) -> int:
        """Drop queued deltas with ``seq <= through_seq``; returns count."""
        with self._lock:
            queue = self._queues.get(peer)
            dropped = 0
            while queue and queue[0].seq <= through_seq:
                queue.popleft()
                dropped += 1
            return dropped

    def pending(self, peer: str) -> int:
        with self._lock:
            queue = self._queues.get(peer)
            return len(queue) if queue else 0

    def lag(self) -> dict[str, int]:
        """Per-peer queued-delta lag — the bounded-staleness gauge."""
        with self._lock:
            return {peer: len(q) for peer, q in self._queues.items() if q}

    def peers(self) -> list[str]:
        with self._lock:
            return [peer for peer, q in self._queues.items() if q]

    def drop_peer(self, peer: str) -> int:
        """Forget a peer that left the roster for good."""
        with self._lock:
            queue = self._queues.pop(peer, None)
            return len(queue) if queue else 0

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._next_seq - 1


class ReplicaApplier:
    """Inbound side: idempotent apply with a per-origin cursor.

    Each origin's delta stream arrives in sequence order (possibly with
    retransmitted prefixes after a failed ship); anything at or below the
    cursor is a duplicate and is skipped.  Cursors persist lazily — a
    replica crash can double-apply a small window, which the weak
    consistency contract absorbs.
    """

    def __init__(
        self,
        apply_fn: Callable[[WriteDelta], None],
        state: "_StateFile | None" = None,
    ) -> None:
        self._apply_fn = apply_fn
        self._state = state
        self._lock = threading.Lock()
        self._cursors: dict[str, int] = (
            dict(state.cursors) if state is not None else {}
        )
        self.applied = 0
        self.duplicates = 0

    def apply(self, origin: str, deltas: list[WriteDelta]) -> int:
        """Apply in seq order, skip duplicates; returns the new cursor."""
        with self._lock:
            cursor = self._cursors.get(origin, 0)
            for delta in sorted(deltas, key=lambda d: d.seq):
                if delta.seq <= cursor:
                    self.duplicates += 1
                    continue
                self._apply_fn(delta)
                cursor = delta.seq
                self.applied += 1
            self._cursors[origin] = cursor
            if self._state is not None:
                self._state.save_cursors(self._cursors)
            return cursor

    def cursor(self, origin: str) -> int:
        with self._lock:
            return self._cursors.get(origin, 0)


class _StateFile:
    """``replication.state``: seq reservation + inbound cursors, one JSON."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.seq_reserved = 0
        self.cursors: dict[str, int] = {}
        try:
            raw = json.loads(path.read_text())
            self.seq_reserved = int(raw.get("seq_reserved", 0))
            self.cursors = {
                str(k): int(v) for k, v in raw.get("cursors", {}).items()
            }
        except (OSError, ValueError):
            pass  # absent or torn: start fresh — seqs only ever skip ahead
        self._lock = threading.Lock()

    def save_seq(self, reserved: int) -> None:
        with self._lock:
            self.seq_reserved = reserved
            self._write()

    def save_cursors(self, cursors: dict[str, int]) -> None:
        with self._lock:
            self.cursors = dict(cursors)
            self._write()

    def _write(self) -> None:
        tmp = self.path.with_suffix(".state.tmp")
        payload = json.dumps(
            {"seq_reserved": self.seq_reserved, "cursors": self.cursors}
        )
        try:
            tmp.write_text(payload)
            tmp.replace(self.path)
        except OSError:
            pass  # best effort: losing it only skips a seq block on restart


class PeerView:
    """One roster entry as the replication layer tracks it."""

    __slots__ = ("node_id", "host", "port", "live")

    def __init__(self, node_id: str, host: str, port: int, live: bool) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self.live = live


class WorkerReplication:
    """Everything one worker does to keep its peers' replicas warm.

    Owns the placement ring (over the roster), the outbound
    :class:`ReplicationLog`, the inbound :class:`ReplicaApplier`, the
    per-peer transports, and the repair duty cycle.  The hosting
    :class:`~repro.net.worker.WorkerServer` calls in from four places:
    the write path (:meth:`on_client_write`), the membership refresh
    (:meth:`update_membership`), the ship loop (:meth:`ship_once`), and
    the repair loop (:meth:`repair_round`).
    """

    def __init__(
        self,
        node,
        *,
        factor: int = 0,
        data_dir: str | Path | None = None,
        transport_factory: Callable[[str, str, int], Any] | None = None,
        max_queue: int = 50_000,
        ship_batch: int = 256,
        repair_keys_per_round: int = 256,
        virtual_nodes: int = 64,
    ) -> None:
        self.node = node
        self.node_id = node.node_id
        #: 0 = adopt the registry's factor on the first membership update.
        self.factor = factor
        self._factor_fixed = factor > 0
        self.ship_batch = ship_batch
        self.repair_keys_per_round = repair_keys_per_round
        self._virtual_nodes = virtual_nodes
        state = None
        if data_dir is not None:
            state = _StateFile(Path(data_dir) / "replication.state")
        self.log = ReplicationLog(self.node_id, state, max_queue=max_queue)
        self.applier = ReplicaApplier(self._apply_delta, state)
        self._transport_factory = transport_factory
        self._lock = threading.Lock()
        self._ring = ConsistentHashRing(virtual_nodes)
        self._peers: dict[str, PeerView] = {}
        self._transports: dict[str, Any] = {}
        self._endpoints: dict[str, tuple[str, int]] = {}
        self._hinted: set[str] = set()
        self._repair_rotation = 0
        # -- counters ---------------------------------------------------
        self.deltas_shipped = 0
        self.delta_bytes = 0
        self.ship_failures = 0
        self.hints_drained = 0
        self.repair_rounds = 0
        self.repair_blocks_shipped = 0
        self.repair_bytes_shipped = 0
        self.repair_blocks_matched = 0
        self.repair_bytes_matched = 0
        self.installs = 0
        self.install_bytes = 0

    # ------------------------------------------------------------------
    # Membership / placement
    # ------------------------------------------------------------------

    def update_membership(self, snapshot: dict) -> None:
        """Adopt a registry ``members()`` snapshot (roster + factor)."""
        if not self._factor_fixed:
            self.factor = int(snapshot.get("replication_factor", 1))
        roster = snapshot.get("roster")
        if roster is None:
            roster = [dict(m, live=True) for m in snapshot.get("members", [])]
        with self._lock:
            fresh = {
                entry["node_id"]: PeerView(
                    entry["node_id"], entry["host"], entry["port"],
                    bool(entry.get("live", True)),
                )
                for entry in roster
            }
            if set(fresh) != set(self._peers):
                ring = ConsistentHashRing(self._virtual_nodes)
                for node_id in fresh:
                    ring.add_node(node_id)
                self._ring = ring
                for node_id in list(self._transports):
                    if node_id not in fresh:
                        self._transports.pop(node_id).close()
                        self._endpoints.pop(node_id, None)
                for gone in set(self._peers) - set(fresh):
                    self.log.drop_peer(gone)
                    self._hinted.discard(gone)
            self._peers = fresh

    @property
    def enabled(self) -> bool:
        return self.factor >= 2

    def owners(self, profile_id: int) -> list[str]:
        """The roster-ring owner set; first entry is the stable primary."""
        with self._lock:
            ring = self._ring
        if len(ring) == 0:
            return []
        try:
            return ring.nodes_for(profile_id, self.factor)
        except NoHealthyNodeError:
            return []

    def acting_primary(self, profile_id: int) -> str | None:
        """First *live* owner — the node clients fail over to."""
        with self._lock:
            peers = self._peers
        for owner in self.owners(profile_id):
            view = peers.get(owner)
            if view is not None and view.live:
                return owner
        return None

    def _peer_snapshot(self) -> dict[str, PeerView]:
        with self._lock:
            return dict(self._peers)

    def _transport_for(self, view: PeerView):
        if self._transport_factory is None:
            return None
        with self._lock:
            endpoint = (view.host, view.port)
            existing = self._transports.get(view.node_id)
            if existing is not None and self._endpoints.get(
                view.node_id
            ) == endpoint:
                return existing
            if existing is not None:
                existing.close()
            transport = self._transport_factory(view.node_id, *endpoint)
            self._transports[view.node_id] = transport
            self._endpoints[view.node_id] = endpoint
            return transport

    # ------------------------------------------------------------------
    # Write path (outbound deltas)
    # ------------------------------------------------------------------

    def on_client_write(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts,
    ) -> None:
        """Queue one accepted client write for the key's other owners."""
        if not self.enabled:
            return
        others = [o for o in self.owners(profile_id) if o != self.node_id]
        if not others:
            return
        vector = tuple(self.node.engine._normalize_counts(counts))
        peers = self._peer_snapshot()
        for peer in others:
            view = peers.get(peer)
            if view is not None and not view.live:
                self._hinted.add(peer)
        self.log.append(
            others, profile_id, timestamp_ms, slot, type_id, fid, vector
        )

    def ship_once(self) -> int:
        """Drain one batch per live peer; hints for dead peers wait."""
        shipped = 0
        peers = self._peer_snapshot()
        for peer in self.log.peers():
            view = peers.get(peer)
            if view is None or not view.live:
                continue  # hinted handoff: hold until the peer rejoins
            transport = self._transport_for(view)
            if transport is None:
                continue
            batch = self.log.batch_for(peer, self.ship_batch)
            if not batch:
                continue
            try:
                reply = transport.call(
                    "replicate_apply", self.node_id, batch
                )
            except Exception:  # noqa: BLE001 - peer flapping: retry later
                self.ship_failures += 1
                continue
            acked = int(reply["acked"]) if isinstance(reply, dict) else 0
            dropped = self.log.ack(peer, acked)
            shipped += dropped
            self.deltas_shipped += dropped
            self.delta_bytes += sum(
                write_delta_wire_bytes(d) for d in batch[:dropped]
            )
            if peer in self._hinted:
                self.hints_drained += dropped
                if self.log.pending(peer) == 0:
                    self._hinted.discard(peer)
        return shipped

    # ------------------------------------------------------------------
    # Inbound apply
    # ------------------------------------------------------------------

    def _apply_delta(self, delta: WriteDelta) -> None:
        self.node.add_profile(
            delta.profile_id,
            delta.timestamp_ms,
            delta.slot,
            delta.type_id,
            delta.fid,
            delta.counts,
            caller="replication",
        )

    def apply_remote(self, origin: str, deltas: list) -> dict:
        """``replicate_apply`` handler body: idempotent apply + ack."""
        normalized = [
            d if isinstance(d, WriteDelta) else WriteDelta(*d) for d in deltas
        ]
        cursor = self.applier.apply(origin, normalized)
        return {"acked": cursor}

    # ------------------------------------------------------------------
    # Anti-entropy repair
    # ------------------------------------------------------------------

    def owned_profile_ids(self) -> set[int]:
        """Every key this worker holds: flushed images + dirty residents."""
        ids = set(self.node.persistence.stored_profile_ids())
        ids.update(self.node.cache.dirty.dirty_ids())
        return ids

    def local_digests(self, profile_id: int) -> list[tuple[int, int, bytes]]:
        profile = self.node._resident_profile(profile_id)
        if profile is None:
            return []
        lock = self.node.cache.entry_lock(profile_id)
        if lock is not None:
            with lock:
                return digest_table(profile)
        return digest_table(profile)

    def repair_digests(self, profile_ids: list[int]) -> dict:
        """Wire handler: my digest tables for the requested keys."""
        return {pid: self.local_digests(pid) for pid in profile_ids}

    def repair_install(self, profile_id: int, blobs: list[bytes]) -> dict:
        """Wire handler: adopt shipped slice blocks from an acting primary."""
        profile = self.node._resident_profile(profile_id)
        if profile is None:
            profile = self.node.engine.table.get_or_create(profile_id)
            self.node.cache.put(profile, dirty=False)
        lock = self.node.cache.entry_lock(profile_id)
        if lock is not None:
            with lock:
                installed = install_blocks(profile, blobs)
        else:
            installed = install_blocks(profile, blobs)
        if installed:
            self.node.cache.mark_dirty(profile_id)
            self.node._on_profile_mutation(profile_id)
            self.installs += len(blobs)
            self.install_bytes += installed
        return {"installed": len(blobs), "bytes": installed}

    def repair_round(self) -> dict:
        """Reconcile one peer: digest exchange, ship only differing blocks.

        Round-robins over live peers.  Repair flows from the serving copy
        outward: for keys where *this* worker is the acting primary, the
        full diff is shipped.  A non-primary owner ships only to a peer
        whose digest table for the key is **empty** — bootstrapping a
        fresh joiner that just became an owner of a range it never held
        (installing into an empty profile cannot overwrite anything) —
        never to a peer that already holds data, so a stale rejoiner can
        never clobber the serving copy.
        """
        stats = {"peer": None, "keys": 0, "shipped": 0, "bytes": 0}
        if not self.enabled:
            return stats
        peers = self._peer_snapshot()
        candidates = sorted(
            p for p, view in peers.items()
            if view.live and p != self.node_id
        )
        if not candidates:
            return stats
        peer = candidates[self._repair_rotation % len(candidates)]
        self._repair_rotation += 1
        view = peers[peer]
        transport = self._transport_for(view)
        if transport is None:
            return stats
        targets = []
        for pid in sorted(self.owned_profile_ids()):
            if len(targets) >= self.repair_keys_per_round:
                break
            if peer in self.owners(pid):
                targets.append(pid)
        if not targets:
            return stats
        stats["peer"] = peer
        stats["keys"] = len(targets)
        try:
            peer_tables = transport.call("repair_digests", targets)
        except Exception:  # noqa: BLE001 - peer flapping: next round retries
            self.ship_failures += 1
            return stats
        self.repair_rounds += 1
        for pid in targets:
            profile = self.node._resident_profile(pid)
            if profile is None:
                continue
            raw = peer_tables.get(pid, [])
            peer_digests = [
                (int(s), int(e), bytes(d)) for s, e, d in raw
            ]
            if self.acting_primary(pid) != self.node_id and peer_digests:
                # Only the serving copy may reconcile a peer that already
                # holds data; as a mere replica we only bootstrap holes.
                continue
            lock = self.node.cache.entry_lock(pid)
            if lock is not None:
                with lock:
                    blobs, matched, matched_bytes = diff_blocks(
                        profile, peer_digests
                    )
            else:
                blobs, matched, matched_bytes = diff_blocks(
                    profile, peer_digests
                )
            self.repair_blocks_matched += matched
            self.repair_bytes_matched += matched_bytes
            if not blobs:
                continue
            try:
                transport.call("repair_install", pid, blobs)
            except Exception:  # noqa: BLE001
                self.ship_failures += 1
                continue
            shipped_bytes = sum(len(b) for b in blobs)
            self.repair_blocks_shipped += len(blobs)
            self.repair_bytes_shipped += shipped_bytes
            stats["shipped"] += len(blobs)
            stats["bytes"] += shipped_bytes
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def handoff_depth(self) -> int:
        """Deltas currently queued for peers the roster marks dead."""
        peers = self._peer_snapshot()
        return sum(
            depth
            for peer, depth in self.log.lag().items()
            if peer in peers and not peers[peer].live
        )

    def stats(self) -> dict:
        return {
            "factor": self.factor,
            "enabled": self.enabled,
            "last_seq": self.log.last_seq,
            "pending": self.log.lag(),
            "handoff_depth": self.handoff_depth(),
            "deltas_enqueued": self.log.enqueued,
            "deltas_shipped": self.deltas_shipped,
            "delta_bytes": self.delta_bytes,
            "queue_overflows": self.log.overflows,
            "ship_failures": self.ship_failures,
            "hints_drained": self.hints_drained,
            "applies": self.applier.applied,
            "apply_duplicates": self.applier.duplicates,
            "repair_rounds": self.repair_rounds,
            "repair_blocks_shipped": self.repair_blocks_shipped,
            "repair_bytes_shipped": self.repair_bytes_shipped,
            "repair_blocks_matched": self.repair_blocks_matched,
            "repair_bytes_matched": self.repair_bytes_matched,
            "installs": self.installs,
            "install_bytes": self.install_bytes,
        }

    def heartbeat_report(self) -> dict:
        """Compact lag report piggybacked on registry heartbeats."""
        return {
            "lag": self.log.lag(),
            "handoff_depth": self.handoff_depth(),
            "last_seq": self.log.last_seq,
            "delta_bytes": self.delta_bytes,
            "repair_bytes": self.repair_bytes_shipped,
        }

    def close(self) -> None:
        with self._lock:
            transports, self._transports = self._transports, {}
        for transport in transports.values():
            transport.close()
