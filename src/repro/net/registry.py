"""Node registry: heartbeat liveness and deterministic master election.

The DCSServerBot-style cluster shape named in the roadmap: every worker
registers ``(node_id, host, port)`` with one registry, heartbeats on a
fixed cadence, and is evicted when its heartbeat goes stale.  Membership
changes bump an **epoch** counter; clients watch the epoch and rebuild
their hash ring (and transports) only when it moves, so the steady state
costs one integer compare per refresh.

Master election is deterministic and needs no extra protocol round:
**the live member with the lowest ``node_id`` is the master**.  Every
observer of the same membership set names the same master, and a master
kill converges as soon as eviction fires — the next-lowest survivor wins.
Generations guard against zombies: a worker that is evicted and later
re-registers gets a new generation, and heartbeats carrying a stale
generation are rejected so the zombie knows to re-register rather than
silently shadowing its replacement.

:class:`NodeRegistry` is the pure, clock-injected core (unit-testable on
a :class:`~repro.clock.SimulatedClock`); :class:`RegistryServer` serves
it over the same wire protocol the workers speak, from an asyncio loop on
a background thread.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, replace
from typing import Any

from ..clock import Clock, SystemClock, perf_ms
from . import wire

#: Registry methods reachable over the wire.
REGISTRY_METHODS = frozenset({"register", "heartbeat", "deregister", "members"})


@dataclass(frozen=True)
class MemberRecord:
    """One registered worker as the registry sees it."""

    node_id: str
    host: str
    port: int
    generation: int
    registered_ms: float
    last_heartbeat_ms: float


class NodeRegistry:
    """In-memory membership table with TTL liveness and epoch versioning.

    With ``replication_factor > 1`` the registry also runs the promotion
    protocol, which — because placement is a roster-ring walk and routing
    is the same walk skipping dead nodes — amounts to bookkeeping:

    * evicted members become **tombstones** (the dead part of the roster)
      so the replica placement every worker computes stays stable across
      a crash; a tombstone clears when the worker re-registers, when it
      deregisters gracefully, or after ``tombstone_ttl_ms``;
    * every eviction with survivors present is counted as a **promotion**
      (the next live owner of each affected range starts serving it) and
      logged with its epoch;
    * heartbeats may piggyback a replication **report** (per-peer delta
      lag, handoff depth, repair bytes) which :meth:`members` republishes
      — bounded staleness, observable in one place.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        ttl_ms: float = 3_000.0,
        *,
        replication_factor: int = 1,
        tombstone_ttl_ms: float = 600_000.0,
    ) -> None:
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        self._clock = clock if clock is not None else SystemClock()
        self.ttl_ms = ttl_ms
        self.replication_factor = replication_factor
        self.tombstone_ttl_ms = tombstone_ttl_ms
        self._members: dict[str, MemberRecord] = {}
        #: node_id -> (record, evicted_at_ms): dead-but-remembered roster.
        self._tombstones: dict[str, tuple[MemberRecord, float]] = {}
        self._reports: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._epoch = 0
        self._generations = 0
        self.evictions = 0
        self.promotions = 0
        #: Most recent promotions as ``(dead_node_id, epoch)`` pairs.
        self.promotion_log: list[tuple[str, int]] = []

    # -- wire-facing methods -------------------------------------------

    def register(self, node_id: str, host: str, port: int) -> dict[str, Any]:
        """Add (or re-add) a worker; returns its generation and the epoch."""
        now = self._clock.now_ms()
        with self._lock:
            self._sweep_locked(now)
            self._generations += 1
            self._members[node_id] = MemberRecord(
                node_id=node_id,
                host=host,
                port=port,
                generation=self._generations,
                registered_ms=now,
                last_heartbeat_ms=now,
            )
            self._tombstones.pop(node_id, None)
            self._epoch += 1
            return {
                "generation": self._generations,
                "epoch": self._epoch,
                "replication_factor": self.replication_factor,
            }

    def heartbeat(
        self, node_id: str, generation: int, report: dict | None = None
    ) -> bool:
        """Refresh liveness; ``False`` tells the worker to re-register.

        ``report`` is the optional replication payload (lag, handoff
        depth, repair bytes) workers piggyback on the beat.
        """
        now = self._clock.now_ms()
        with self._lock:
            self._sweep_locked(now)
            record = self._members.get(node_id)
            if record is None or record.generation != generation:
                return False
            self._members[node_id] = replace(record, last_heartbeat_ms=now)
            if report is not None:
                self._reports[node_id] = report
            return True

    def deregister(self, node_id: str) -> bool:
        """Graceful leave; returns whether the member was known."""
        with self._lock:
            removed = self._members.pop(node_id, None) is not None
            # Graceful or not, a deregistered node leaves the roster: its
            # ranges move permanently to the surviving owners.
            self._tombstones.pop(node_id, None)
            self._reports.pop(node_id, None)
            if removed:
                self._epoch += 1
                if self.replication_factor > 1 and self._members:
                    self.promotions += 1
                    self._log_promotion_locked(node_id)
            return removed

    def members(self) -> dict[str, Any]:
        """Membership snapshot: epoch, master, live members, and roster.

        ``roster`` is live members plus tombstones (``live`` flag telling
        them apart) — the stable universe replica placement is computed
        over.  ``reports`` is the latest replication report per live
        member.
        """
        now = self._clock.now_ms()
        with self._lock:
            self._sweep_locked(now)
            live = sorted(self._members.values(), key=lambda r: r.node_id)
            dead = sorted(
                (rec for rec, _ in self._tombstones.values()),
                key=lambda r: r.node_id,
            )
            return {
                "epoch": self._epoch,
                "master": live[0].node_id if live else None,
                "members": [
                    {"node_id": r.node_id, "host": r.host, "port": r.port}
                    for r in live
                ],
                "roster": [
                    {
                        "node_id": r.node_id,
                        "host": r.host,
                        "port": r.port,
                        "live": True,
                    }
                    for r in live
                ]
                + [
                    {
                        "node_id": r.node_id,
                        "host": r.host,
                        "port": r.port,
                        "live": False,
                    }
                    for r in dead
                ],
                "replication_factor": self.replication_factor,
                "promotions": self.promotions,
                "reports": dict(self._reports),
            }

    # -- local accessors ------------------------------------------------

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def sweep(self) -> list[str]:
        """Evict stale members; returns the evicted node ids."""
        now = self._clock.now_ms()
        with self._lock:
            return self._sweep_locked(now)

    def live_members(self) -> list[MemberRecord]:
        now = self._clock.now_ms()
        with self._lock:
            self._sweep_locked(now)
            return sorted(self._members.values(), key=lambda r: r.node_id)

    def master(self) -> str | None:
        """Deterministic election: the lowest live ``node_id`` is master."""
        live = self.live_members()
        return live[0].node_id if live else None

    def replica_lag(self) -> dict[str, dict[str, int]]:
        """Per-node per-peer delta lag from the latest heartbeat reports."""
        with self._lock:
            return {
                node_id: dict(report.get("lag", {}))
                for node_id, report in self._reports.items()
            }

    def publish_metrics(self, metrics) -> None:
        """Export the heartbeat reports as gauges on a MetricsRegistry.

        Uses the same ``replication_lag_ops`` family the sim-layer
        :class:`~repro.storage.replication.ReplicatedKVCluster` publishes,
        with ``layer="net"`` — one dashboard query covers both layers.
        """
        with self._lock:
            reports = {k: dict(v) for k, v in self._reports.items()}
            promotions = self.promotions
        for node_id, report in reports.items():
            for peer, depth in report.get("lag", {}).items():
                metrics.gauge(
                    "replication_lag_ops", layer="net", node=node_id, peer=peer
                ).set(depth)
            metrics.gauge(
                "replication_handoff_depth", node=node_id
            ).set(report.get("handoff_depth", 0))
            metrics.gauge(
                "replication_repair_bytes", node=node_id
            ).set(report.get("repair_bytes", 0))
        metrics.gauge("replication_promotions").set(promotions)

    def _sweep_locked(self, now_ms: float) -> list[str]:
        stale = [
            node_id
            for node_id, record in self._members.items()
            if now_ms - record.last_heartbeat_ms > self.ttl_ms
        ]
        for node_id in stale:
            record = self._members.pop(node_id)
            self._reports.pop(node_id, None)
            self._tombstones[node_id] = (record, now_ms)
        if stale:
            self.evictions += len(stale)
            self._epoch += 1
            if self.replication_factor > 1 and self._members:
                self.promotions += len(stale)
                for node_id in stale:
                    self._log_promotion_locked(node_id)
        expired = [
            node_id
            for node_id, (_, evicted_ms) in self._tombstones.items()
            if now_ms - evicted_ms > self.tombstone_ttl_ms
        ]
        for node_id in expired:
            del self._tombstones[node_id]
        if expired:
            # Placement finally forgets the node; workers rebuild rings.
            self._epoch += 1
        return stale

    def _log_promotion_locked(self, node_id: str) -> None:
        self.promotion_log.append((node_id, self._epoch))
        del self.promotion_log[:-100]


class RegistryServer:
    """Serves a :class:`NodeRegistry` over the framed wire protocol.

    Runs its own asyncio loop on a daemon thread so it can sit beside
    blocking test code and the worker subprocesses alike.  Bind to port 0
    and read :attr:`port` after :meth:`start` to get the real port.
    """

    def __init__(
        self,
        registry: NodeRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else NodeRegistry()
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "RegistryServer":
        self._thread = threading.Thread(
            target=self._run, name="ips-registry", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("registry server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("registry server failed to bind") from (
                self._startup_error
            )
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._loop = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    payload = await wire.read_frame_async(reader)
                except wire.WireCodecError:
                    break  # torn frame: drop the connection
                if payload is None:
                    break
                response = self._dispatch(payload)
                writer.write(wire.encode_response(response))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass  # server stopping or peer gone mid-exchange
        finally:
            writer.close()

    def _dispatch(self, payload: bytes) -> wire.Response:
        start = perf_ms()
        request_id = 0
        try:
            message = wire.decode_message(payload)
            if not isinstance(message, wire.Request):
                raise wire.WireCodecError("expected a request frame")
            request_id = message.request_id
            if message.method not in REGISTRY_METHODS:
                raise wire.WireCodecError(
                    f"unknown registry method {message.method!r}"
                )
            handler = getattr(self.registry, message.method)
            value = handler(*message.args, **message.kwargs)
        except Exception as exc:  # noqa: BLE001 - every error goes on the wire
            error_type, message_text, error_args = wire.error_to_wire(exc)
            return wire.Response(
                request_id=request_id,
                ok=False,
                error_type=error_type,
                error_message=message_text,
                error_args=error_args,
                server_ms=perf_ms() - start,
            )
        return wire.Response(
            request_id=request_id,
            ok=True,
            value=value,
            server_ms=perf_ms() - start,
        )
