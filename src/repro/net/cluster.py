"""Process-per-node cluster: spawn, discover, route, kill, restart.

:class:`ProcessCluster` spawns one :mod:`repro.net.worker` OS process per
node plus a :class:`~repro.net.registry.RegistryServer`, then builds the
client stack on top: :class:`NetRegion` duck-types
:class:`~repro.cluster.region.Region` (``name`` / ``nodes`` /
``node_for`` over the same :class:`~repro.cluster.hashring.ConsistentHashRing`)
but routes to :class:`~repro.net.transport.RemoteNode` facades over real
sockets, refreshing membership from the registry only when its epoch
moves.  :class:`ProcessDeployment` is the thin deployment shim that lets
the unmodified :class:`~repro.cluster.client.IPSClient` — retries,
breakers, deadlines, hedged reads and all — drive the fleet.

Worker ports are discovered through the registry (workers bind port 0
and register their real port), never by parsing stdout; stdout/stderr go
to log files under each worker's data dir.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

from ..clock import SystemClock, perf_ms
from ..cluster.hashring import ConsistentHashRing
from ..errors import NoHealthyNodeError, RegionUnavailableError
from ..obs.trace import NULL_TRACER
from .registry import NodeRegistry, RegistryServer
from .transport import RemoteNode, SocketTransport


class RegistryClient:
    """Blocking client for a :class:`RegistryServer` (same wire protocol)."""

    def __init__(self, host: str, port: int) -> None:
        self._transport = SocketTransport("registry", host, port)

    def members(self) -> dict[str, Any]:
        return self._transport.call("members")

    def register(self, node_id: str, host: str, port: int) -> dict[str, Any]:
        return self._transport.call("register", node_id, host, port)

    def heartbeat(
        self, node_id: str, generation: int, report: dict | None = None
    ) -> bool:
        if report is None:
            return self._transport.call("heartbeat", node_id, generation)
        return self._transport.call(
            "heartbeat", node_id, generation, report=report
        )

    def deregister(self, node_id: str) -> bool:
        return self._transport.call("deregister", node_id)

    def close(self) -> None:
        self._transport.close()


class NetRegion:
    """Registry-driven region of remote nodes (duck-types ``Region``).

    ``registry`` is anything with a ``members()`` snapshot — a
    :class:`RegistryClient` over sockets, or a local
    :class:`~repro.net.registry.NodeRegistry` in tests.  The hash ring is
    rebuilt only when the registry epoch changes; between epochs a
    membership poll is rate-limited to ``refresh_interval_ms`` of real
    time, so the hot routing path is one dict lookup.
    """

    def __init__(
        self,
        registry,
        name: str = "net",
        *,
        refresh_interval_ms: float = 250.0,
        virtual_nodes: int = 64,
        transport_factory=None,
    ) -> None:
        self.name = name
        self.registry = registry
        self.refresh_interval_ms = refresh_interval_ms
        self.ring = ConsistentHashRing(virtual_nodes)
        self.nodes: dict[str, RemoteNode] = {}
        self.available = True
        self.master: str | None = None
        self.epoch = -1
        self.refreshes = 0
        self._endpoints: dict[str, tuple[str, int]] = {}
        self._last_poll_ms = float("-inf")
        self._transport_factory = transport_factory or (
            lambda node_id, host, port: SocketTransport(node_id, host, port)
        )
        self.refresh(force=True)

    def refresh(self, force: bool = False) -> bool:
        """Poll the registry; rebuild routing state if the epoch moved."""
        now = perf_ms()
        if not force and now - self._last_poll_ms < self.refresh_interval_ms:
            return False
        self._last_poll_ms = now
        snapshot = self.registry.members()
        if snapshot["epoch"] == self.epoch:
            return False
        self.epoch = snapshot["epoch"]
        self.master = snapshot["master"]
        self.refreshes += 1
        fresh = {
            member["node_id"]: (member["host"], member["port"])
            for member in snapshot["members"]
        }
        for node_id in list(self.nodes):
            if fresh.get(node_id) == self._endpoints.get(node_id):
                continue  # unchanged member keeps its pooled connections
            self.ring.remove_node(node_id)
            self.nodes.pop(node_id).close()
            self._endpoints.pop(node_id, None)
        for node_id, (host, port) in fresh.items():
            if node_id in self.nodes:
                continue
            self.nodes[node_id] = RemoteNode(
                self._transport_factory(node_id, host, port)
            )
            self._endpoints[node_id] = (host, port)
            self.ring.add_node(node_id)
        return True

    def node_for(
        self, profile_id: int, exclude: set[str] | None = None
    ) -> RemoteNode:
        """Owning remote node for a profile id (hash-ring routing)."""
        if not self.available:
            raise RegionUnavailableError(self.name)
        self.refresh()
        try:
            node_id = self.ring.node_for(profile_id, exclude=exclude or None)
        except NoHealthyNodeError:
            # Membership may have changed under us (all known nodes
            # excluded after failures): force one refresh and re-route.
            if not self.refresh(force=True):
                raise
            node_id = self.ring.node_for(profile_id, exclude=exclude or None)
        return self.nodes[node_id]

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()
        self.nodes.clear()
        self._endpoints.clear()


class ProcessDeployment:
    """Deployment shim: one :class:`NetRegion` behind the ``IPSClient`` API."""

    def __init__(self, region: NetRegion, clock=None) -> None:
        self.regions = {region.name: region}
        self.clock = clock if clock is not None else SystemClock()
        self.tracer = NULL_TRACER
        #: Metrics registry slot the client looks up; chaos/process fleet
        #: runs export through worker ``node_stats`` instead.
        self.registry = None
        self.discovery = None


class ProcessCluster:
    """Spawns and manages N worker processes plus the registry server."""

    def __init__(
        self,
        num_workers: int,
        data_root: str | Path,
        *,
        host: str = "127.0.0.1",
        table: str = "user_profile",
        attributes: tuple[str, ...] = ("like", "comment", "share"),
        checkpoint_interval: int = 256,
        heartbeat_ms: float = 200.0,
        ttl_ms: float = 1_500.0,
        maintenance_ms: float = 100.0,
        handler_threads: int = 4,
        replication_factor: int = 1,
        replication_ms: float = 50.0,
        repair_ms: float = 2_000.0,
        worker_env: dict[str, str] | None = None,
        spawn: bool = True,
    ) -> None:
        self.data_root = Path(data_root)
        self.data_root.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.table = table
        self.attributes = attributes
        self.checkpoint_interval = checkpoint_interval
        self.heartbeat_ms = heartbeat_ms
        self.maintenance_ms = maintenance_ms
        self.handler_threads = handler_threads
        self.replication_factor = replication_factor
        self.replication_ms = replication_ms
        self.repair_ms = repair_ms
        self.worker_env = dict(worker_env) if worker_env else {}
        self.registry_server = RegistryServer(
            NodeRegistry(ttl_ms=ttl_ms, replication_factor=replication_factor),
            host=host,
        ).start()
        self._procs: dict[str, subprocess.Popen] = {}
        self._logs: dict[str, Any] = {}
        if spawn:
            for index in range(num_workers):
                self.spawn_worker(f"w{index:02d}")

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def spawn_worker(self, node_id: str) -> subprocess.Popen:
        """Start (or restart) one worker over its persistent data dir.

        The data dir is keyed by the **stable node id**, never by spawn
        order: a worker restarted after a crash reopens the same WAL,
        checkpoint, KV log, and replication state it owned before.
        """
        if node_id in self._procs and self._procs[node_id].poll() is None:
            raise RuntimeError(f"worker {node_id} is already running")
        data_dir = self.data_root / node_id
        data_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        env.update(self.worker_env)
        log = open(data_dir / "worker.log", "ab")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.net.worker",
                "--node-id", node_id,
                "--data-dir", str(data_dir),
                "--host", self.host,
                "--port", "0",
                "--registry-host", self.registry_server.host,
                "--registry-port", str(self.registry_server.port),
                "--table", self.table,
                "--attributes", ",".join(self.attributes),
                "--checkpoint-interval", str(self.checkpoint_interval),
                "--heartbeat-ms", str(self.heartbeat_ms),
                "--maintenance-ms", str(self.maintenance_ms),
                "--handler-threads", str(self.handler_threads),
                "--replication-factor", str(self.replication_factor),
                "--replication-ms", str(self.replication_ms),
                "--repair-ms", str(self.repair_ms),
            ],
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
        old_log = self._logs.pop(node_id, None)
        if old_log is not None:
            old_log.close()
        self._logs[node_id] = log
        self._procs[node_id] = proc
        return proc

    def wait_for_members(self, count: int, timeout_s: float = 20.0) -> list[str]:
        """Block until the registry sees ``count`` live members."""
        deadline = time.monotonic() + timeout_s
        while True:
            members = self.registry_server.registry.members()["members"]
            if len(members) >= count:
                return [member["node_id"] for member in members]
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(members)}/{count} workers registered within "
                    f"{timeout_s:g}s"
                )
            time.sleep(0.02)

    def kill_worker(self, node_id: str) -> None:
        """SIGKILL — the real ``node_crash``: no flush, no checkpoint."""
        proc = self._procs[node_id]
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    def terminate_worker(self, node_id: str, timeout_s: float = 15.0) -> int:
        """SIGTERM — graceful: returns the exit code (0 = clean shutdown)."""
        proc = self._procs[node_id]
        if proc.poll() is None:
            proc.terminate()
        return proc.wait(timeout=timeout_s)

    def restart_worker(self, node_id: str) -> subprocess.Popen:
        """Bring a dead worker back over the same data dir (recovery)."""
        return self.spawn_worker(node_id)

    def add_worker(self) -> str:
        """Spawn a worker under a fresh stable id (never reuses an id).

        Ids are allocated past the highest ever seen, so a joiner can
        never collide with — or silently adopt the data dir of — a dead
        worker that might still rejoin.
        """
        highest = -1
        for node_id in self._procs:
            if node_id.startswith("w") and node_id[1:].isdigit():
                highest = max(highest, int(node_id[1:]))
        node_id = f"w{highest + 1:02d}"
        self.spawn_worker(node_id)
        return node_id

    def worker_ids(self) -> list[str]:
        return sorted(self._procs)

    def processes(self) -> dict[str, subprocess.Popen]:
        """Live view for the orphan-tracking test fixture."""
        return dict(self._procs)

    # ------------------------------------------------------------------
    # Client stack
    # ------------------------------------------------------------------

    def registry_client(self) -> RegistryClient:
        return RegistryClient(self.registry_server.host, self.registry_server.port)

    def region(self, **kwargs) -> NetRegion:
        """A fresh routing view over the current membership."""
        return NetRegion(self.registry_client(), **kwargs)

    def deployment(self, **kwargs) -> ProcessDeployment:
        return ProcessDeployment(self.region(**kwargs))

    def client(self, deployment: ProcessDeployment | None = None, **kwargs):
        """An :class:`~repro.cluster.client.IPSClient` over real sockets."""
        from ..cluster.client import IPSClient

        if deployment is None:
            deployment = self.deployment()
        region_name = next(iter(deployment.regions))
        return IPSClient(deployment, region_name, **kwargs)

    def fleet_stats(self) -> dict[str, dict]:
        """``node_stats`` from every live member, keyed by node id."""
        return self._poll_members("node_stats")

    def replication_stats(self) -> dict[str, dict]:
        """``replication_stats`` from every live member, keyed by node id."""
        return self._poll_members("replication_stats")

    def repair_now(self, rounds: int = 1) -> dict[str, dict]:
        """Force synchronous repair rounds fleet-wide (bench convergence)."""
        return self._poll_members("repair_now", rounds)

    def _poll_members(self, method: str, *args) -> dict[str, dict]:
        stats: dict[str, dict] = {}
        snapshot = self.registry_server.registry.members()
        for member in snapshot["members"]:
            transport = SocketTransport(
                member["node_id"], member["host"], member["port"]
            )
            try:
                stats[member["node_id"]] = transport.call(method, *args)
            except Exception:  # noqa: BLE001 - a dying member just drops out
                continue
            finally:
                transport.close()
        return stats

    def wait_for_replication_drain(self, timeout_s: float = 20.0) -> None:
        """Block until no live worker has queued deltas for a live peer.

        Hinted-handoff queues for *dead* peers do not block the drain —
        they cannot empty until the peer rejoins.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            stats = self.replication_stats()
            live = set(stats)
            pending = sum(
                depth
                for node_stats in stats.values()
                for peer, depth in node_stats.get("pending", {}).items()
                if peer in live
            )
            if pending == 0:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replication queues still hold {pending} deltas after "
                    f"{timeout_s:g}s"
                )
            time.sleep(0.05)

    def primary_for(self, profile_id: int) -> str:
        """The roster-ring primary owner of a key (placement, not routing)."""
        registry = self.registry_server.registry
        ring = ConsistentHashRing(64)
        for entry in registry.members()["roster"]:
            ring.add_node(entry["node_id"])
        return ring.nodes_for(profile_id, 1)[0]

    # ------------------------------------------------------------------

    def shutdown(self, graceful: bool = True) -> dict[str, int]:
        """Stop every worker (SIGTERM first when graceful) and the registry.

        Returns exit codes by node id; stragglers are SIGKILLed.
        """
        codes: dict[str, int] = {}
        if graceful:
            for proc in self._procs.values():
                if proc.poll() is None:
                    proc.terminate()
        for node_id, proc in self._procs.items():
            try:
                codes[node_id] = proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                codes[node_id] = proc.wait(timeout=10.0)
        for log in self._logs.values():
            log.close()
        self._logs.clear()
        self.registry_server.stop()
        return codes

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
