"""Wire codec for the socket transport: framing + value encoding.

A message travels as one **frame**::

    frame := MAGIC(4) length(4) crc32(4) payload[length]

(little-endian fixed header; ``crc32`` covers the payload only).  A torn
or bit-flipped frame fails loudly with :class:`WireCodecError` instead of
desynchronizing the stream — the same CRC-framing discipline the WAL and
the file KV store use.

The payload is a **value-encoded** request or response.  The value codec
reuses the varint/zigzag primitives of
:mod:`repro.storage.serialization` and covers exactly the types the node
RPC surface needs: scalars, containers, and the IPS domain types
(:class:`~repro.core.timerange.TimeRange`,
:class:`~repro.core.query.SortType`,
:class:`~repro.core.query.FeatureResult`,
:class:`~repro.server.batch.BatchKeyResult`).  Anything else — notably
callables, so ``get_profile_filter`` predicates and custom decay
functions cannot cross a process boundary — raises :class:`WireCodecError`
at encode time with a message saying so.

Errors travel as ``(type_name, message)`` pairs and are reconstructed on
the client from the :mod:`repro.errors` taxonomy, so retryability
survives the hop: a worker-side :class:`~repro.errors.QuotaExceededError`
is region-fatal on the client exactly as it would be in process.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

from .. import errors as _errors
from ..core.query import FeatureResult, SortType
from ..core.timerange import TimeRange, TimeRangeKind
from ..errors import RetryableError, RPCError
from ..server.batch import BatchKeyResult
from ..storage.serialization import (
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)

FRAME_MAGIC = 0x4950534E  # "IPSN"
_HEADER = struct.Struct("<III")  # magic, payload length, payload crc32
#: Upper bound on a single frame; a decoded length past this is treated
#: as stream corruption rather than an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024
_FLOAT = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class WireCodecError(RPCError):
    """A frame or value could not be encoded or decoded."""


class RemoteError(RPCError):
    """A worker-side failure whose type the client could not reconstruct."""


class RetryableRemoteError(RPCError, RetryableError):
    """Like :class:`RemoteError`, but the original type was retryable."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload in the length-prefixed CRC32 frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireCodecError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_frame_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header; returns ``(payload_length, crc32)``."""
    if len(header) != _HEADER.size:
        raise WireCodecError(
            f"truncated frame header: {len(header)} of {_HEADER.size} bytes"
        )
    magic, length, crc = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise WireCodecError(f"bad frame magic {magic:#x}")
    if length > MAX_FRAME_BYTES:
        raise WireCodecError(f"frame length {length} exceeds cap")
    return length, crc


def check_frame_payload(payload: bytes, crc: int) -> bytes:
    if zlib.crc32(payload) != crc:
        raise WireCodecError("frame payload failed its CRC32 check")
    return payload


HEADER_SIZE = _HEADER.size


async def read_frame_async(reader) -> bytes | None:
    """Read one frame payload from an :mod:`asyncio` stream reader.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`WireCodecError` on a torn or corrupt frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireCodecError("connection closed mid-header") from exc
    length, crc = decode_frame_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireCodecError("connection closed mid-frame") from exc
    return check_frame_payload(payload, crc)


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3  # zigzag varint, |v| < 2**63
_T_BIGUINT = 4  # plain varint, v >= 2**63 (uint64 profile ids)
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_TIMERANGE = 11
_T_SORTTYPE = 12
_T_FEATURE_RESULT = 13
_T_BATCH_KEY_RESULT = 14
_T_WRITE_DELTA = 15

@dataclass(frozen=True)
class WriteDelta:
    """One replicated write, sequence-numbered by its origin shard.

    This is the Monolith-style delta unit: the exact logical write the
    primary applied, not the profile image it produced, so replication
    bytes scale with the change rate rather than profile size.  ``seq``
    is monotonic per origin worker; replicas keep a per-origin cursor and
    drop anything at or below it, which makes retransmits idempotent.
    """

    seq: int
    profile_id: int
    timestamp_ms: int
    slot: int
    type_id: int
    fid: int
    counts: tuple[int, ...]


def _encode_write_delta(out: bytearray, delta: WriteDelta) -> None:
    write_varint(out, delta.seq)
    write_varint(out, delta.profile_id)
    write_varint(out, delta.timestamp_ms)
    write_varint(out, delta.slot)
    write_varint(out, delta.type_id)
    write_varint(out, delta.fid)
    write_varint(out, len(delta.counts))
    for count in delta.counts:
        write_varint(out, zigzag_encode(count))


def _decode_write_delta(data: bytes, pos: int) -> tuple[WriteDelta, int]:
    seq, pos = read_varint(data, pos)
    profile_id, pos = read_varint(data, pos)
    timestamp_ms, pos = read_varint(data, pos)
    slot, pos = read_varint(data, pos)
    type_id, pos = read_varint(data, pos)
    fid, pos = read_varint(data, pos)
    n_counts, pos = read_varint(data, pos)
    counts = []
    for _ in range(n_counts):
        encoded, pos = read_varint(data, pos)
        counts.append(zigzag_decode(encoded))
    return (
        WriteDelta(seq, profile_id, timestamp_ms, slot, type_id, fid,
                   tuple(counts)),
        pos,
    )


def write_delta_wire_bytes(delta: WriteDelta) -> int:
    """Encoded size of one delta — the replication-bytes accounting unit."""
    out = bytearray()
    _encode_write_delta(out, delta)
    return len(out) + 1  # + the type tag


_TIMERANGE_KINDS = (
    TimeRangeKind.CURRENT,
    TimeRangeKind.RELATIVE,
    TimeRangeKind.ABSOLUTE,
)
_SORT_TYPES = tuple(SortType)


def encode_value(out: bytearray, value: Any) -> None:
    """Append one value in tagged form."""
    if value is None:
        out.append(_T_NONE)
    elif value is False:
        out.append(_T_FALSE)
    elif value is True:
        out.append(_T_TRUE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            write_varint(out, zigzag_encode(value))
        elif value > 0:
            out.append(_T_BIGUINT)
            write_varint(out, value)
        else:
            raise WireCodecError(f"integer {value} out of the wire range")
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        write_varint(out, len(data))
        out.extend(data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        write_varint(out, len(value))
        out.extend(value)
    elif isinstance(value, FeatureResult):
        out.append(_T_FEATURE_RESULT)
        _encode_feature_result(out, value)
    elif isinstance(value, BatchKeyResult):
        out.append(_T_BATCH_KEY_RESULT)
        _encode_batch_key_result(out, value)
    elif isinstance(value, WriteDelta):
        out.append(_T_WRITE_DELTA)
        _encode_write_delta(out, value)
    elif isinstance(value, list):
        out.append(_T_LIST)
        write_varint(out, len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        write_varint(out, len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        write_varint(out, len(value))
        for key, item in value.items():
            encode_value(out, key)
            encode_value(out, item)
    elif isinstance(value, TimeRange):
        out.append(_T_TIMERANGE)
        out.append(_TIMERANGE_KINDS.index(value.kind))
        encode_value(out, value.span_ms)
        encode_value(out, value.start_ms)
        encode_value(out, value.end_ms)
    elif isinstance(value, SortType):
        out.append(_T_SORTTYPE)
        out.append(_SORT_TYPES.index(value))
    elif callable(value):
        raise WireCodecError(
            f"cannot serialize callable {value!r}: filter predicates and "
            "custom decay functions cannot cross a process boundary — use "
            "the named decay functions, or the in-process transport"
        )
    else:
        raise WireCodecError(
            f"cannot serialize {type(value).__name__} value {value!r}"
        )


def _encode_feature_result(out: bytearray, result: FeatureResult) -> None:
    write_varint(out, result.fid)
    write_varint(out, result.last_timestamp_ms)
    write_varint(out, len(result.counts))
    for count in result.counts:
        write_varint(out, zigzag_encode(count))


def _decode_feature_result(data: bytes, pos: int) -> tuple[FeatureResult, int]:
    fid, pos = read_varint(data, pos)
    last_ts, pos = read_varint(data, pos)
    n_counts, pos = read_varint(data, pos)
    counts = []
    for _ in range(n_counts):
        encoded, pos = read_varint(data, pos)
        counts.append(zigzag_decode(encoded))
    return FeatureResult(fid, tuple(counts), last_ts), pos


def _encode_batch_key_result(out: bytearray, result: BatchKeyResult) -> None:
    write_varint(out, result.profile_id)
    out.append(1 if result.ok else 0)
    if result.ok:
        value = result.value if result.value is not None else []
        write_varint(out, len(value))
        for row in value:
            _encode_feature_result(out, row)
    else:
        encode_value(out, result.error or "")
        encode_value(out, result.error_message)


def _decode_batch_key_result(data: bytes, pos: int) -> tuple[BatchKeyResult, int]:
    profile_id, pos = read_varint(data, pos)
    if pos >= len(data):
        raise WireCodecError("truncated batch key result")
    ok = data[pos]
    pos += 1
    if ok:
        n_rows, pos = read_varint(data, pos)
        rows = []
        for _ in range(n_rows):
            row, pos = _decode_feature_result(data, pos)
            rows.append(row)
        return BatchKeyResult.success(profile_id, rows), pos
    error, pos = decode_value(data, pos)
    message, pos = decode_value(data, pos)
    return (
        BatchKeyResult(
            profile_id=profile_id,
            ok=False,
            error=error or None,
            error_message=message,
        ),
        pos,
    )


def decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    try:
        return _decode_value(data, pos)
    except _errors.SerializationError as exc:
        # Varint primitives raise the storage-layer error; at this layer
        # a short varint is stream corruption like any other.
        raise WireCodecError(str(exc)) from exc


def _decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise WireCodecError("truncated value: missing type tag")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        encoded, pos = read_varint(data, pos)
        return zigzag_decode(encoded), pos
    if tag == _T_BIGUINT:
        value, pos = read_varint(data, pos)
        return value, pos
    if tag == _T_FLOAT:
        if pos + _FLOAT.size > len(data):
            raise WireCodecError("truncated float value")
        return _FLOAT.unpack_from(data, pos)[0], pos + _FLOAT.size
    if tag == _T_STR:
        length, pos = read_varint(data, pos)
        if pos + length > len(data):
            raise WireCodecError("truncated string value")
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _T_BYTES:
        length, pos = read_varint(data, pos)
        if pos + length > len(data):
            raise WireCodecError("truncated bytes value")
        return bytes(data[pos : pos + length]), pos + length
    if tag in (_T_LIST, _T_TUPLE):
        length, pos = read_varint(data, pos)
        items = []
        for _ in range(length):
            item, pos = decode_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        length, pos = read_varint(data, pos)
        out: dict = {}
        for _ in range(length):
            key, pos = decode_value(data, pos)
            item, pos = decode_value(data, pos)
            out[key] = item
        return out, pos
    if tag == _T_TIMERANGE:
        if pos >= len(data):
            raise WireCodecError("truncated time range")
        kind_index = data[pos]
        pos += 1
        if kind_index >= len(_TIMERANGE_KINDS):
            raise WireCodecError(f"unknown time-range kind {kind_index}")
        span_ms, pos = decode_value(data, pos)
        start_ms, pos = decode_value(data, pos)
        end_ms, pos = decode_value(data, pos)
        return (
            TimeRange(
                _TIMERANGE_KINDS[kind_index],
                span_ms=span_ms,
                start_ms=start_ms,
                end_ms=end_ms,
            ),
            pos,
        )
    if tag == _T_SORTTYPE:
        if pos >= len(data):
            raise WireCodecError("truncated sort type")
        index = data[pos]
        if index >= len(_SORT_TYPES):
            raise WireCodecError(f"unknown sort type index {index}")
        return _SORT_TYPES[index], pos + 1
    if tag == _T_FEATURE_RESULT:
        return _decode_feature_result(data, pos)
    if tag == _T_BATCH_KEY_RESULT:
        return _decode_batch_key_result(data, pos)
    if tag == _T_WRITE_DELTA:
        return _decode_write_delta(data, pos)
    raise WireCodecError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------

_MSG_REQUEST = 1
_MSG_RESPONSE = 2


@dataclass(frozen=True)
class Request:
    """One method invocation travelling client → worker."""

    request_id: int
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """One answer travelling worker → client.

    ``server_ms`` is the worker-measured handler wall time, so the client
    can split its observed latency into network + server components (the
    Table II decomposition) and feed hedging decisions.  ``error_args``
    carries the structured constructor arguments for the rich exception
    types (see :data:`_RICH_ERRORS`) so e.g. a
    :class:`~repro.errors.ProfileNotFoundError` keeps its ``profile_id``
    across the hop.
    """

    request_id: int
    ok: bool
    value: Any = None
    error_type: str = ""
    error_message: str = ""
    error_args: tuple = ()
    server_ms: float = 0.0


def encode_request(request: Request) -> bytes:
    out = bytearray()
    out.append(_MSG_REQUEST)
    write_varint(out, request.request_id)
    encode_value(out, request.method)
    encode_value(out, tuple(request.args))
    encode_value(out, dict(request.kwargs))
    return encode_frame(bytes(out))


def encode_response(response: Response) -> bytes:
    out = bytearray()
    out.append(_MSG_RESPONSE)
    write_varint(out, response.request_id)
    out.append(1 if response.ok else 0)
    if response.ok:
        encode_value(out, response.value)
    else:
        encode_value(out, response.error_type)
        encode_value(out, response.error_message)
        encode_value(out, tuple(response.error_args))
    out.extend(_FLOAT.pack(response.server_ms))
    return encode_frame(bytes(out))


def decode_message(payload: bytes) -> Request | Response:
    """Decode one frame payload into a request or response."""
    try:
        return _decode_message(payload)
    except _errors.SerializationError as exc:
        raise WireCodecError(str(exc)) from exc


def _decode_message(payload: bytes) -> Request | Response:
    if not payload:
        raise WireCodecError("empty message payload")
    kind = payload[0]
    pos = 1
    if kind == _MSG_REQUEST:
        request_id, pos = read_varint(payload, pos)
        method, pos = decode_value(payload, pos)
        args, pos = decode_value(payload, pos)
        kwargs, pos = decode_value(payload, pos)
        if pos != len(payload):
            raise WireCodecError("trailing bytes after request")
        if not isinstance(method, str) or not isinstance(kwargs, dict):
            raise WireCodecError("malformed request envelope")
        return Request(request_id, method, tuple(args), kwargs)
    if kind == _MSG_RESPONSE:
        request_id, pos = read_varint(payload, pos)
        if pos >= len(payload):
            raise WireCodecError("truncated response")
        ok = bool(payload[pos])
        pos += 1
        value: Any = None
        error_type = ""
        error_message = ""
        error_args: tuple = ()
        if ok:
            value, pos = decode_value(payload, pos)
        else:
            error_type, pos = decode_value(payload, pos)
            error_message, pos = decode_value(payload, pos)
            error_args, pos = decode_value(payload, pos)
        if pos + _FLOAT.size != len(payload):
            raise WireCodecError("trailing bytes after response")
        server_ms = _FLOAT.unpack_from(payload, pos)[0]
        return Response(
            request_id,
            ok,
            value=value,
            error_type=error_type,
            error_message=error_message,
            error_args=tuple(error_args),
            server_ms=server_ms,
        )
    raise WireCodecError(f"unknown message kind {kind}")


# ----------------------------------------------------------------------
# Cross-process error taxonomy
# ----------------------------------------------------------------------

#: Name → class for every exception type :mod:`repro.errors` defines; the
#: wire carries the name, the client reconstructs the most specific type.
_ERROR_TYPES = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
}
#: This module's own errors, plus the message-constructible builtins a
#: worker realistically raises (bad arguments, internal invariants) —
#: all rebuild exactly instead of degrading to :class:`RemoteError`.
_ERROR_TYPES.update(
    {
        "WireCodecError": WireCodecError,
        "RemoteError": RemoteError,
        "RetryableRemoteError": RetryableRemoteError,
        "ValueError": ValueError,
        "TypeError": TypeError,
        "KeyError": KeyError,
        "RuntimeError": RuntimeError,
        "NotImplementedError": NotImplementedError,
        "AssertionError": AssertionError,
    }
)

#: Exception types with constructors richer than a bare message: the wire
#: carries their structured attributes so the exact type — and its fields
#: (``profile_id``, ``node_id``, …) — survives the process hop.
_RICH_ERRORS: dict[str, tuple] = {
    "TableNotFoundError": (
        lambda e: (e.table,),
        lambda a: _errors.TableNotFoundError(a[0]),
    ),
    "ProfileNotFoundError": (
        lambda e: (e.profile_id,),
        lambda a: _errors.ProfileNotFoundError(a[0]),
    ),
    "NodeUnavailableError": (
        lambda e: (e.node_id,),
        lambda a: _errors.NodeUnavailableError(a[0]),
    ),
    "CircuitOpenError": (
        lambda e: (e.node_id,),
        lambda a: _errors.CircuitOpenError(a[0]),
    ),
    "RegionUnavailableError": (
        lambda e: (e.region,),
        lambda a: _errors.RegionUnavailableError(a[0]),
    ),
    "QuotaExceededError": (
        lambda e: (e.caller, e.quota),
        lambda a: _errors.QuotaExceededError(a[0], a[1]),
    ),
    "DeadlineExceededError": (
        lambda e: (e.operation, e.budget_ms),
        lambda a: _errors.DeadlineExceededError(a[0], a[1]),
    ),
    "VersionConflictError": (
        lambda e: (e.key, e.held, e.current),
        lambda a: _errors.VersionConflictError(a[0], a[1], a[2]),
    ),
}


def _class_is_retryable(cls: type) -> bool:
    """Class-level mirror of :func:`repro.errors.is_retryable`."""
    if issubclass(cls, (_errors.DeadlineExceededError,) + _errors.REGION_FATAL_ERRORS):
        return False
    return issubclass(cls, (RetryableError,) + _errors.RETRYABLE_ERRORS)


def error_to_wire(exc: BaseException) -> tuple[str, str, tuple]:
    """Collapse an exception into ``(type_name, message, structured_args)``."""
    name = type(exc).__name__
    rich = _RICH_ERRORS.get(name)
    if rich is not None and isinstance(exc, _ERROR_TYPES.get(name, ())):
        try:
            return name, str(exc), rich[0](exc)
        except AttributeError:
            pass  # a look-alike class without the expected fields
    return name, str(exc), ()


def error_from_wire(error_type: str, message: str, args: tuple = ()) -> Exception:
    """Rebuild the most specific client-side exception for a wire error.

    Rich types listed in :data:`_RICH_ERRORS` are rebuilt exactly from
    their structured args; other known :mod:`repro.errors` types are
    rebuilt from the bare message; unknown types degrade to a
    :class:`RemoteError` / :class:`RetryableRemoteError` chosen so the
    client's retry taxonomy keeps working across the process boundary.
    """
    rich = _RICH_ERRORS.get(error_type)
    if rich is not None and args:
        try:
            return rich[1](args)
        except (TypeError, IndexError, ValueError):
            pass  # fall through to the generic paths
    cls = _ERROR_TYPES.get(error_type)
    if cls is not None:
        if error_type not in _RICH_ERRORS:
            try:
                return cls(message)
            except TypeError:
                pass
        wrapper = RetryableRemoteError if _class_is_retryable(cls) else RemoteError
        return wrapper(f"{error_type}: {message}")
    return RemoteError(f"{error_type}: {message}")
