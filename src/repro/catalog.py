"""Feature catalog: hashed literals and privacy posture (§II-A).

The paper's data-model examples use names ("Sports", "Basketball",
"Los Angeles Lakers") for illustration but note that "in reality, all
user profile data are stored as hashed literals along with strict privacy
and access controls".  :class:`FeatureCatalog` provides that mapping:

* textual slots / types / features hash deterministically to the integer
  ids the IPS APIs take (blake2b, 64-bit for fids, 32-bit for slots and
  types, salted per catalog);
* in **strict** mode (the production posture) the mapping is one-way —
  no reverse lookup exists anywhere in the process;
* in **debug** mode a reverse map is retained so developers can decode
  query results while testing, mirroring how the paper's illustration
  differs from its deployment.
"""

from __future__ import annotations

import hashlib

from .errors import ConfigError

_FID_BYTES = 8
_BUCKET_BYTES = 4


def _hash_literal(literal: str, salt: bytes, size: int) -> int:
    if not literal:
        raise ConfigError("cannot hash an empty literal")
    digest = hashlib.blake2b(
        literal.encode("utf-8"), key=salt, digest_size=size
    ).digest()
    return int.from_bytes(digest, "big")


class FeatureCatalog:
    """Deterministic literal -> id hashing with optional debug decode."""

    def __init__(self, salt: str = "", debug: bool = False) -> None:
        self._salt = salt.encode("utf-8")[:64]
        self.debug = debug
        self._reverse_fids: dict[int, str] = {}
        self._reverse_buckets: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Forward mapping (always available)
    # ------------------------------------------------------------------

    def fid(self, feature: str) -> int:
        """64-bit feature id for a literal (e.g. a team or item name)."""
        value = _hash_literal(feature, self._salt, _FID_BYTES)
        if self.debug:
            self._reverse_fids[value] = feature
        return value

    def slot(self, name: str) -> int:
        """32-bit slot id for a category literal (e.g. "Sports")."""
        value = _hash_literal("slot:" + name, self._salt, _BUCKET_BYTES)
        if self.debug:
            self._reverse_buckets[value] = name
        return value

    def type(self, name: str) -> int:
        """32-bit type id for a sub-category literal (e.g. "Basketball")."""
        value = _hash_literal("type:" + name, self._salt, _BUCKET_BYTES)
        if self.debug:
            self._reverse_buckets[value] = name
        return value

    # ------------------------------------------------------------------
    # Reverse mapping (debug only)
    # ------------------------------------------------------------------

    def feature_name(self, fid: int) -> str | None:
        """Decode a fid back to its literal; debug catalogs only.

        Returns ``None`` for unseen fids.  Raises in strict mode — the
        privacy posture is that decoding must be impossible, and a caller
        relying on it in production is a bug worth failing loudly on.
        """
        if not self.debug:
            raise ConfigError(
                "reverse lookup is disabled: this catalog runs in strict "
                "(production) mode"
            )
        return self._reverse_fids.get(fid)

    def bucket_name(self, bucket_id: int) -> str | None:
        """Decode a slot/type id; debug catalogs only."""
        if not self.debug:
            raise ConfigError(
                "reverse lookup is disabled: this catalog runs in strict "
                "(production) mode"
            )
        return self._reverse_buckets.get(bucket_id)

    # ------------------------------------------------------------------

    def decode_results(self, results) -> list[tuple[str | None, tuple[int, ...]]]:
        """Decode a query result list to (name, counts) rows (debug only)."""
        return [(self.feature_name(row.fid), row.counts) for row in results]
