"""Pluggable columnar query kernels (backend registry).

Two backends implement the hot-loop interface in :mod:`.base`:

* ``python`` — the reference per-``FeatureStat`` loops; always available
  and the semantics contract for everything else;
* ``numpy`` — columnar kernels over flat int64 arrays; auto-detected,
  byte-identical to the reference (it delegates whenever an exactness
  guard trips).

Selection, most specific wins:

1. an explicit backend name (``TableConfig.kernel_backend`` or the
   ``backend=`` argument to :class:`~repro.core.query.QueryEngine` /
   :class:`~repro.core.compaction.Compactor`);
2. the ``IPS_KERNEL_BACKEND`` environment variable (``python`` /
   ``numpy`` / ``auto``) — how CI forces a whole run onto one backend;
3. auto: ``numpy`` when importable, else ``python``.

``IPS_KERNEL_DISABLE_NUMPY=1`` makes the numpy backend unavailable even
when the package is installed, so CI can exercise the numpy-absent
configuration without uninstalling anything.
"""

from __future__ import annotations

import importlib.util
import os

from ...errors import ConfigError
from .base import KernelBackend, SortSpec, aggregate_name
from .python_backend import PythonBackend

__all__ = [
    "KernelBackend",
    "SortSpec",
    "aggregate_name",
    "PythonBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "numpy_disabled",
]

ENV_BACKEND = "IPS_KERNEL_BACKEND"
ENV_DISABLE_NUMPY = "IPS_KERNEL_DISABLE_NUMPY"

_INSTANCES: dict[str, KernelBackend] = {}


def numpy_disabled() -> bool:
    """Whether ``IPS_KERNEL_DISABLE_NUMPY`` forces the numpy backend off."""
    return os.environ.get(ENV_DISABLE_NUMPY, "") not in ("", "0")


def _numpy_importable() -> bool:
    try:
        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic installs
        return False


def available_backends() -> tuple[str, ...]:
    """Backend names usable right now (env-sensitive, re-evaluated)."""
    if not numpy_disabled() and _numpy_importable():
        return ("python", "numpy")
    return ("python",)


def default_backend_name() -> str:
    """Resolve the unconfigured default: env override, then auto-detect."""
    env = os.environ.get(ENV_BACKEND, "").strip().lower()
    if env and env != "auto":
        return env
    return "numpy" if "numpy" in available_backends() else "python"


def get_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """Return a kernel backend by name (or pass an instance through).

    ``None``/``"auto"`` resolve via :func:`default_backend_name`.  Asking
    for ``numpy`` explicitly when it is disabled or not importable raises
    :class:`~repro.errors.ConfigError` — an explicit configuration must
    not silently degrade.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None or name == "" or name == "auto":
        name = default_backend_name()
    name = name.lower()
    if name == "python":
        return _INSTANCES.setdefault("python", PythonBackend())
    if name == "numpy":
        if numpy_disabled():
            raise ConfigError(
                "numpy kernel backend disabled via "
                f"{ENV_DISABLE_NUMPY}; unset it or use backend 'python'"
            )
        try:
            from .numpy_backend import NumpyBackend
        except ImportError as exc:
            raise ConfigError(
                f"numpy kernel backend unavailable: {exc}"
            ) from None
        return _INSTANCES.setdefault("numpy", NumpyBackend())
    raise ConfigError(
        f"unknown kernel backend {name!r}; available: {available_backends()}"
    )
