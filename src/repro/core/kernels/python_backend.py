"""Reference kernel backend: the original per-``FeatureStat`` loops.

This backend *is* the semantics contract.  It folds slice hash maps one
stat at a time through :meth:`FeatureStat.merge_counts` (stepwise int64
clamping), scales with :meth:`FeatureStat.scaled` (truncation toward
zero) and cuts top-K with ``heapq`` over the same key tuples the query
engine has always used.  The columnar backend must reproduce its output
byte-for-byte; when in doubt, the columnar code *delegates* to this one.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..aggregate import AggregateFn
from ..feature import FeatureStat, clamp_int64
from .base import KernelBackend, SortSpec


class PythonBackend(KernelBackend):
    """Pure-Python reference implementation of the kernel interface."""

    name = "python"

    # ------------------------------------------------------------------
    # Merge core (the reference fused multi-way merge)
    # ------------------------------------------------------------------

    def merge_window(
        self, profile, slot, type_id, window, decay, reduce_fn, stats
    ) -> dict[int, FeatureStat]:
        """fid -> merged stat over the window, reference semantics."""
        merged: dict[int, FeatureStat] = {}
        cache_key = ("stats", slot, type_id)
        for profile_slice, weight in self.iter_weighted_slices(
            profile, window, decay
        ):
            if stats is not None:
                stats.slices_scanned += 1
            if weight <= 0.0:
                continue
            # Materialising FeatureStat views out of the columnar groups
            # is the expensive part of the reference read; the list is
            # memoised on the slice (kernel_cache is cleared before any
            # mutation), restoring the dict-era cost profile.
            slice_stats = profile_slice.kernel_cache.get(cache_key)
            if slice_stats is None:
                slice_stats = list(profile_slice.features(slot, type_id))
                profile_slice.kernel_cache[cache_key] = slice_stats
            for stat in slice_stats:
                if stats is not None:
                    stats.features_merged += 1
                contribution = stat if weight == 1.0 else stat.scaled(weight)
                existing = merged.get(stat.fid)
                if existing is None:
                    merged[stat.fid] = contribution.copy()
                else:
                    existing.merge_counts(
                        contribution.counts,
                        reduce_fn,
                        contribution.last_timestamp_ms,
                    )
        return merged

    # ------------------------------------------------------------------
    # Sort keys
    # ------------------------------------------------------------------

    @staticmethod
    def sort_key(spec: SortSpec) -> Callable[[FeatureStat], tuple]:
        """Key function over merged stats for one resolved sort spec."""
        from ..query import SortType

        sort_type = spec.sort_type
        if sort_type is SortType.ATTRIBUTE:
            index = spec.attribute_index
            return lambda stat: (
                stat.count_at(index),
                stat.last_timestamp_ms,
                -stat.fid,
            )
        if sort_type is SortType.TIMESTAMP:
            return lambda stat: (stat.last_timestamp_ms, stat.total(), -stat.fid)
        if sort_type is SortType.FEATURE_ID:
            return lambda stat: (stat.fid,)
        if sort_type is SortType.TOTAL:
            return lambda stat: (stat.total(), stat.last_timestamp_ms, -stat.fid)
        weight_vector = spec.weight_vector
        return lambda stat: (
            sum(stat.count_at(index) * weight for index, weight in weight_vector),
            stat.last_timestamp_ms,
            -stat.fid,
        )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    @staticmethod
    def finalize(ranked, stats) -> list:
        from ..query import FeatureResult

        if stats is not None:
            stats.results_returned = len(ranked)
        return [
            FeatureResult(
                fid=stat.fid,
                counts=tuple(clamp_int64(c) for c in stat.counts),
                last_timestamp_ms=stat.last_timestamp_ms,
            )
            for stat in ranked
        ]

    # ------------------------------------------------------------------
    # Query kernels
    # ------------------------------------------------------------------

    def run_topk(
        self, profile, slot, type_id, window, reduce_fn, spec, k, descending, stats
    ):
        merged = self.merge_window(
            profile, slot, type_id, window, None, reduce_fn, stats
        )
        select = heapq.nlargest if descending else heapq.nsmallest
        top = select(k, merged.values(), key=self.sort_key(spec))
        return self.finalize(top, stats)

    def run_filter(
        self, profile, slot, type_id, window, reduce_fn, predicate, stats
    ):
        merged = self.merge_window(
            profile, slot, type_id, window, None, reduce_fn, stats
        )
        kept = [stat for stat in merged.values() if predicate(stat)]
        kept.sort(key=lambda stat: (stat.total(), stat.fid), reverse=True)
        return self.finalize(kept, stats)

    def run_decay(
        self,
        profile,
        slot,
        type_id,
        window,
        reduce_fn,
        decay_fn,
        decay_factor,
        spec,
        k,
        stats,
    ):
        merged = self.merge_window(
            profile,
            slot,
            type_id,
            window,
            (decay_fn, decay_factor),
            reduce_fn,
            stats,
        )
        key = self.sort_key(spec)
        if k is not None:
            ranked = heapq.nlargest(k, merged.values(), key=key)
        else:
            ranked = sorted(merged.values(), key=key, reverse=True)
        return self.finalize(ranked, stats)

    # ------------------------------------------------------------------
    # Compaction kernel
    # ------------------------------------------------------------------

    def fold_slice(self, target, source, reduce_fn: AggregateFn) -> None:
        target.merge_from(source, reduce_fn)
