"""Kernel backend interface: the three hot loops behind one seam.

The query and compaction data planes reduce to three inner loops:

1. **fused multi-way merge** — fold the per-slice ``(slot, type)`` feature
   maps of a window into one accumulator keyed by fid;
2. **batch decay scaling** — multiply a slice's count vectors by a decay
   weight with C++-style truncation toward zero;
3. **sort / top-K cut** — order the merged accumulator by a sort spec and
   cut to K.

A :class:`KernelBackend` implements all three plus the compaction-time
slice fold.  The ``python`` backend is the reference semantics (always
available); the ``numpy`` backend reimplements the loops column-wise over
flat int64 arrays and must produce **byte-identical** results — the
differential oracle in ``tests/test_kernel_oracle.py`` enforces this.

Backends are selected via :func:`repro.core.kernels.get_backend`
(config field ``TableConfig.kernel_backend`` or the ``IPS_KERNEL_BACKEND``
environment variable; see the package ``__init__``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from ..aggregate import (
    AggregateFn,
    aggregate_last,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..decay import DecayFn
    from ..profile import ProfileData
    from ..query import FeatureResult, QueryStats, SortType
    from ..slice import Slice
    from ..timerange import ResolvedWindow

#: Names of the aggregate functions the columnar backend can vectorise.
#: Anything else (a registered UDAF) routes through the reference loops.
KNOWN_AGGREGATES: dict[int, str] = {
    id(aggregate_sum): "sum",
    id(aggregate_max): "max",
    id(aggregate_min): "min",
    id(aggregate_last): "last",
}


def aggregate_name(reduce_fn: AggregateFn) -> str | None:
    """Map a reduce function back to its built-in name, ``None`` for UDAFs."""
    return KNOWN_AGGREGATES.get(id(reduce_fn))


@dataclass(frozen=True)
class SortSpec:
    """A resolved sort order: type plus pre-resolved attribute indices.

    ``QueryEngine`` resolves attribute names against the table schema (and
    raises ``InvalidQueryError`` for unknown ones) before the spec reaches a
    backend, so backends never see the config.  ``weight_vector`` preserves
    the caller's mapping order — the weighted score is accumulated
    left-to-right in exactly that order so float results match the
    reference bit-for-bit.
    """

    sort_type: "SortType"
    attribute_index: int | None = None
    weight_vector: tuple[tuple[int, float], ...] | None = None


class KernelBackend(abc.ABC):
    """One implementation of the merge / decay-scale / top-K kernels."""

    #: Registry name ("python", "numpy").
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Query kernels
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def run_topk(
        self,
        profile: "ProfileData",
        slot: int,
        type_id: int | None,
        window: "ResolvedWindow",
        reduce_fn: AggregateFn,
        spec: SortSpec,
        k: int,
        descending: bool,
        stats: "QueryStats | None",
    ) -> "list[FeatureResult]":
        """Merge the window then sort by ``spec`` and cut to ``k``."""

    @abc.abstractmethod
    def run_filter(
        self,
        profile: "ProfileData",
        slot: int,
        type_id: int | None,
        window: "ResolvedWindow",
        reduce_fn: AggregateFn,
        predicate: Callable,
        stats: "QueryStats | None",
    ) -> "list[FeatureResult]":
        """Merge the window, keep stats passing ``predicate``, order by
        descending ``(total, fid)``."""

    @abc.abstractmethod
    def run_decay(
        self,
        profile: "ProfileData",
        slot: int,
        type_id: int | None,
        window: "ResolvedWindow",
        reduce_fn: AggregateFn,
        decay_fn: "DecayFn",
        decay_factor: float,
        spec: SortSpec,
        k: int | None,
        stats: "QueryStats | None",
    ) -> "list[FeatureResult]":
        """Merge with per-slice decay weights, rank by ``spec``, cut to
        ``k`` when given (otherwise return every merged feature ranked)."""

    # ------------------------------------------------------------------
    # Batch query kernels (multi-get)
    # ------------------------------------------------------------------
    #
    # One call covers every profile of a multi-get.  ``windows`` is
    # parallel to ``profiles``; ``None`` means the time range resolved to
    # nothing for that profile (empty result, ``results_returned = 0``,
    # no slices scanned).  The defaults run the single-profile kernels in
    # a loop — the reference semantics batch implementations must match
    # result-for-result and stat-for-stat (the batch differential oracle
    # enforces this).

    def run_topk_batch(
        self,
        profiles: "list[ProfileData]",
        slot: int,
        type_id: int | None,
        windows: "list[ResolvedWindow | None]",
        reduce_fn: AggregateFn,
        spec: SortSpec,
        k: int,
        descending: bool,
        stats_list: "list[QueryStats | None]",
    ) -> "list[list[FeatureResult]]":
        results = []
        for profile, window, stats in zip(profiles, windows, stats_list):
            if window is None:
                if stats is not None:
                    stats.results_returned = 0
                results.append([])
                continue
            results.append(
                self.run_topk(
                    profile, slot, type_id, window, reduce_fn, spec, k,
                    descending, stats,
                )
            )
        return results

    def run_filter_batch(
        self,
        profiles: "list[ProfileData]",
        slot: int,
        type_id: int | None,
        windows: "list[ResolvedWindow | None]",
        reduce_fn: AggregateFn,
        predicate: Callable,
        stats_list: "list[QueryStats | None]",
    ) -> "list[list[FeatureResult]]":
        results = []
        for profile, window, stats in zip(profiles, windows, stats_list):
            if window is None:
                if stats is not None:
                    stats.results_returned = 0
                results.append([])
                continue
            results.append(
                self.run_filter(
                    profile, slot, type_id, window, reduce_fn, predicate,
                    stats,
                )
            )
        return results

    def run_decay_batch(
        self,
        profiles: "list[ProfileData]",
        slot: int,
        type_id: int | None,
        windows: "list[ResolvedWindow | None]",
        reduce_fn: AggregateFn,
        decay_fn: "DecayFn",
        decay_factor: float,
        spec: SortSpec,
        k: int | None,
        stats_list: "list[QueryStats | None]",
    ) -> "list[list[FeatureResult]]":
        results = []
        for profile, window, stats in zip(profiles, windows, stats_list):
            if window is None:
                if stats is not None:
                    stats.results_returned = 0
                results.append([])
                continue
            results.append(
                self.run_decay(
                    profile, slot, type_id, window, reduce_fn, decay_fn,
                    decay_factor, spec, k, stats,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Compaction kernel
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def fold_slice(
        self, target: "Slice", source: "Slice", reduce_fn: AggregateFn
    ) -> None:
        """Fold ``source`` into ``target`` in place (compaction's merge).

        Must match ``Slice.merge_from`` exactly: per-``(slot, type, fid)``
        aggregation, max timestamps, widened time range and invalidated
        memory accounting.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    @staticmethod
    def iter_weighted_slices(
        profile: "ProfileData",
        window: "ResolvedWindow",
        decay: "tuple[DecayFn, float] | None",
    ) -> "Iterator[tuple[Slice, float]]":
        """Yield ``(slice, weight)`` for the window, newest first.

        Every overlapping slice is yielded (it feeds
        ``QueryStats.slices_scanned``), including those whose decay weight
        drops to zero — callers count the scan but must skip merging
        non-positive weights, mirroring the reference loop's bookkeeping.
        """
        for profile_slice in profile.slices_in_window(
            window.start_ms, window.end_ms
        ):
            weight = 1.0
            if decay is not None:
                decay_fn, factor = decay
                midpoint = (profile_slice.start_ms + profile_slice.end_ms) // 2
                age_ms = max(0, window.end_ms - midpoint)
                weight = decay_fn(age_ms, factor)
            yield profile_slice, weight

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} name={self.name!r}>"
