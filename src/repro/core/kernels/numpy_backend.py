"""Columnar kernel backend: flat int64 arrays instead of per-stat folds.

The three hot loops become array programs:

* **fused multi-way merge** — gather every contributing ``FeatureStat``
  row (fid, counts, timestamp) across the window into flat arrays, group
  by fid with one sort, and reduce each group with a single
  ``np.{add,maximum,minimum}.reduceat`` (or a take-last gather for the
  LAST aggregate);
* **batch decay scaling** — scale whole slice segments of the count
  matrix by their decay weight in float64 and truncate toward zero with
  ``np.trunc``, exactly like ``FeatureStat.scaled``;
* **sort / top-K cut** — build the reference key columns and order them
  with one ``np.lexsort``; only the selected rows are materialised back
  into ``FeatureResult`` objects.

The gather step is the only part that touches Python objects, so its
output — the per-``(slot, type)`` columnar projection of a slice — is
memoised in ``Slice.kernel_cache``.  Slices are append-mostly and every
mutation path clears the cache, so warm queries skip straight to the
array program; this is the columnar layout the tentpole asks for, kept
as derived data (never serialised, not in ``memory_bytes``).

**Byte-identical results are a hard contract** (the differential oracle
enforces it), so the kernel refuses any input where vectorised arithmetic
could diverge from the reference's stepwise semantics and delegates the
whole query to :class:`PythonBackend` instead:

* SUM merges where an intermediate fold could saturate int64
  (``rows * max|count| >= 2**63`` — the reference clamps per fold);
* decay scaling where counts reach 2**53 (float64 rounding edges);
* total-based sort keys whose row sums could overflow int64;
* fids outside int64 (or exactly INT64_MIN, which cannot be negated);
* user-defined aggregate functions (only SUM/MAX/MIN/LAST vectorise).

Everything outside ``repro.core.kernels`` must stay numpy-free — a lint
(``tools/check_numpy_isolation.py``) enforces the isolation.
"""

from __future__ import annotations

from itertools import chain
from operator import attrgetter

import numpy as np

from ..aggregate import AggregateFn
from ..feature import INT64_MIN, FeatureStat
from .base import KernelBackend, SortSpec, aggregate_name
from .python_backend import PythonBackend

#: Above this magnitude int64 -> float64 round-trips stop being exact.
_FLOAT_EXACT_BOUND = 2**53
#: int64 overflow bound for summation guards.
_INT64_BOUND = 2**63

# C-speed field extractors for the bulk gather (map + list.extend).
_GET_FID = attrgetter("fid")
_GET_COUNTS = attrgetter("counts")
_GET_TS = attrgetter("last_timestamp_ms")
_GET_FID_INDEX = attrgetter("fid_index")

#: ``Slice.kernel_cache`` sentinel: this (slot, type) group cannot be
#: vectorised (e.g. a fid outside int64) — delegate to the reference.
_UNVECTORIZABLE = False


def _max_abs(matrix: np.ndarray) -> int:
    """Largest magnitude in an int64 array, exact (Python ints), 0 if empty."""
    if matrix.size == 0:
        return 0
    return max(int(matrix.max()), -int(matrix.min()))


def _make_stat(fid, counts, last_timestamp_ms, fid_index) -> FeatureStat:
    """Build a FeatureStat from already-clamped Python ints, skipping the
    constructor's per-element re-clamping."""
    stat = FeatureStat.__new__(FeatureStat)
    stat.fid = fid
    stat.counts = counts
    stat.last_timestamp_ms = last_timestamp_ms
    stat.fid_index = fid_index
    return stat


class _Columns:
    """Columnar projection of one row block, in reference iteration order.

    ``widths`` and ``fid_index`` are materialised lazily: ``None``
    internally means "every row is natively ``W`` wide" and "every row
    carries the default ``-1``" respectively — the overwhelmingly common
    shapes — so the cold path skips two ``np.full`` allocations per
    (slice, slot, type) group.
    """

    __slots__ = ("fids", "matrix", "ts", "_widths", "_fid_index", "uniform")

    def __init__(self, fids, matrix, ts, widths, fid_index, uniform) -> None:
        self.fids = fids          # (n,) int64
        self.matrix = matrix      # (n, W) int64, short rows zero-padded
        self.ts = ts              # (n,) int64
        self._widths = widths     # (n,) int64 native row widths, or None
        self._fid_index = fid_index  # (n,) int64 insertion indices, or None
        self.uniform = uniform    # every row natively W wide

    @property
    def widths(self) -> np.ndarray:
        if self._widths is None:
            self._widths = np.full(
                len(self.fids), self.matrix.shape[1], dtype=np.int64
            )
        return self._widths

    @property
    def fid_index(self) -> np.ndarray:
        if self._fid_index is None:
            self._fid_index = np.full(len(self.fids), -1, dtype=np.int64)
        return self._fid_index

    @property
    def n_rows(self) -> int:
        return len(self.fids)

    @property
    def width(self) -> int:
        return self.matrix.shape[1]


def _columns_from_group(group):
    """Wrap a columnar :class:`~repro.core.columnar.ColumnGroup` directly.

    The primary representation already is flat int64 — no per-stat gather
    happens here, just one memcpy per column.  (``np.array`` copies out of
    the buffer and releases the export immediately, so the group's arrays
    stay resizable.)
    """
    n_rows = len(group)
    if not n_rows:
        return None
    stride = group.stride
    fid_arr = np.array(group.fids)
    if int(fid_arr.min()) == INT64_MIN:
        return _UNVECTORIZABLE  # -fid sort key not representable.
    matrix = (
        np.array(group.counts).reshape(n_rows, stride)
        if stride
        else np.zeros((n_rows, 0), dtype=np.int64)
    )
    ts_arr = np.array(group.ts)
    if group.widths is None:
        width_arr = None  # materialised lazily: every row is stride wide
        uniform = True
    else:
        width_arr = np.array(group.widths)
        uniform = bool((width_arr == stride).all())
    fid_index_arr = (
        None if group.fid_index is None else np.array(group.fid_index)
    )
    return _Columns(fid_arr, matrix, ts_arr, width_arr, fid_index_arr, uniform)


def _columns_from_lists(fids, rows, ts, fid_index):
    """Convert gathered Python lists into :class:`_Columns`.

    Returns ``None`` for an empty block and ``_UNVECTORIZABLE`` when a
    value does not fit int64 (counts are pre-clamped, so in practice
    only fids can trip this) or a fid is exactly INT64_MIN (its ``-fid``
    sort key would not be representable).
    """
    n_rows = len(fids)
    if not n_rows:
        return None
    try:
        fid_arr = np.fromiter(fids, dtype=np.int64, count=n_rows)
        width_arr = np.fromiter(map(len, rows), dtype=np.int64, count=n_rows)
        max_width = int(width_arr.max())
        uniform = int(width_arr.min()) == max_width
        if uniform:
            # Uniform widths: one C pass over a chained iterator beats
            # np.array's list-of-lists walk by a wide margin.
            matrix = np.fromiter(
                chain.from_iterable(rows),
                dtype=np.int64,
                count=n_rows * max_width,
            ).reshape(n_rows, max_width)
        else:
            matrix = np.array(
                [
                    list(row) + [0] * (max_width - len(row))
                    if len(row) < max_width
                    else row
                    for row in rows
                ],
                dtype=np.int64,
            )
        ts_arr = np.fromiter(ts, dtype=np.int64, count=n_rows)
        fid_index_arr = np.fromiter(fid_index, dtype=np.int64, count=n_rows)
    except (OverflowError, ValueError):
        return _UNVECTORIZABLE
    if int(fid_arr.min()) == INT64_MIN:
        return _UNVECTORIZABLE
    return _Columns(fid_arr, matrix, ts_arr, width_arr, fid_index_arr, uniform)


class _Gathered:
    """Concatenated columnar blocks for one window."""

    __slots__ = ("columns", "segments", "slices_scanned")

    def __init__(self, columns, segments, slices_scanned) -> None:
        self.columns = columns    # _Columns | None (no rows in window)
        #: (start_row, end_row, weight) for slices with weight != 1.0.
        self.segments = segments
        self.slices_scanned = slices_scanned

    @property
    def n_rows(self) -> int:
        return 0 if self.columns is None else self.columns.n_rows


class _BatchGather:
    """Per-profile accounting for one member of a batch gather.

    The batch path never builds per-profile column arrays (blocks flow
    straight into the global combine), so all a profile keeps is what
    ``_commit_stats`` needs.
    """

    __slots__ = ("slices_scanned", "n_rows")

    def __init__(self, slices_scanned, n_rows) -> None:
        self.slices_scanned = slices_scanned
        self.n_rows = n_rows


#: Distinguishes "slice cache holds None for this key" (an empty
#: projection) from "key absent" (cache cleared by a mutation) during
#: profile-memo validation.
_MISSING = object()


class _ProfileGather:
    """One profile's combined window gather, memoised on the profile.

    Stored in ``ProfileData.kernel_cache`` and never invalidated
    explicitly: ``slices`` and ``entries`` pin the exact slice objects
    and per-slice cache values the combine was built from, and every use
    revalidates them by identity.  Any slice mutation clears that
    slice's ``kernel_cache`` (the repo-wide clear-before-mutate rule),
    any structural change alters the window's slice list — either way
    validation fails and the memo is rebuilt.
    """

    __slots__ = ("slices", "entries", "columns", "scanned")

    def __init__(self, slices, entries, columns, scanned) -> None:
        self.slices = slices      # tuple[Slice], window order (newest first)
        self.entries = entries    # parallel per-slice cache values
        self.columns = columns    # combined _Columns | None (no rows)
        self.scanned = scanned    # feeds QueryStats.slices_scanned


class _Merged:
    """Columnar accumulator: one row per distinct fid, fid-ascending."""

    __slots__ = ("fids", "counts", "ts", "widths", "first_row")

    def __init__(self, fids, counts, ts, widths, first_row) -> None:
        self.fids = fids          # (n,) int64, ascending
        self.counts = counts      # (n, W) int64
        self.ts = ts              # (n,) int64 max contributor timestamp
        self.widths = widths      # (n,) int64 max width; None = all W wide
        self.first_row = first_row  # original row of first contribution


class NumpyBackend(KernelBackend):
    """numpy-accelerated kernels, reference-exact or delegating."""

    name = "numpy"

    #: Compaction folds below this combined feature count stay on the
    #: reference path — tiny dict merges beat array setup costs.
    fold_min_features = 128

    def __init__(self) -> None:
        self._reference = PythonBackend()

    # ------------------------------------------------------------------
    # Gather: per-slice columnar projections, memoised on the slice
    # ------------------------------------------------------------------

    def _slice_columns(self, profile_slice, slot, type_id):
        """The (slot, type) projection of one slice, cached until mutation."""
        cache = profile_slice.kernel_cache
        key = (slot, type_id)
        try:
            return cache[key]
        except KeyError:
            pass
        blocks: list[_Columns] = []
        columns = None
        for group in profile_slice.column_groups(slot, type_id):
            if group.is_columnar:
                block = _columns_from_group(group)
            else:
                # Demoted (legacy dict) group: per-stat gather, which also
                # flags anything that does not fit int64.
                stats_list = group.stats()
                block = _columns_from_lists(
                    list(map(_GET_FID, stats_list)),
                    list(map(_GET_COUNTS, stats_list)),
                    list(map(_GET_TS, stats_list)),
                    list(map(_GET_FID_INDEX, stats_list)),
                )
            if block is _UNVECTORIZABLE:
                blocks = None
                columns = _UNVECTORIZABLE
                break
            if block is not None:
                blocks.append(block)
        if blocks is not None:
            columns = self._combine(blocks)
        cache[key] = columns
        return columns

    def _gather(self, profile, slot, type_id, window, decay):
        """Collect the window's blocks; ``None`` means delegate."""
        blocks: list[_Columns] = []
        segments: list[tuple[int, int, float]] = []
        scanned = 0
        total = 0
        for profile_slice, weight in self.iter_weighted_slices(
            profile, window, decay
        ):
            scanned += 1
            if weight <= 0.0:
                continue
            columns = self._slice_columns(profile_slice, slot, type_id)
            if columns is _UNVECTORIZABLE:
                return None
            if columns is None:
                continue
            start = total
            total += columns.n_rows
            blocks.append(columns)
            if weight != 1.0:
                segments.append((start, total, weight))
        return _Gathered(self._combine(blocks), segments, scanned)

    @staticmethod
    def _combine(blocks: list[_Columns]):
        """Concatenate blocks, zero-padding narrower matrices."""
        if not blocks:
            return None
        if len(blocks) == 1:
            return blocks[0]  # Aliases the cache; merge never writes it.
        widths = [block.width for block in blocks]
        width = max(widths)
        if all(w == width for w in widths):
            matrix = np.concatenate([block.matrix for block in blocks])
            uniform = all(block.uniform for block in blocks)
        else:
            total = sum(block.n_rows for block in blocks)
            matrix = np.zeros((total, width), dtype=np.int64)
            offset = 0
            for block in blocks:
                matrix[offset : offset + block.n_rows, : block.width] = (
                    block.matrix
                )
                offset += block.n_rows
            uniform = False
        # A uniform result needs no widths column (every row is natively
        # `width` wide); likewise fid_index stays lazy while every input
        # block's is (all rows default to -1).
        widths_arr = (
            None
            if uniform
            else np.concatenate([block.widths for block in blocks])
        )
        fid_index_arr = (
            None
            if all(block._fid_index is None for block in blocks)
            else np.concatenate([block.fid_index for block in blocks])
        )
        return _Columns(
            np.concatenate([block.fids for block in blocks]),
            matrix,
            np.concatenate([block.ts for block in blocks]),
            widths_arr,
            fid_index_arr,
            uniform,
        )

    # ------------------------------------------------------------------
    # Reduce: group by fid and aggregate column-wise
    # ------------------------------------------------------------------

    def _reduce(
        self, gathered: _Gathered, agg: str, need_first_row: bool
    ) -> _Merged | None:
        """Columnar merge; ``None`` means an exactness guard tripped.

        ``need_first_row`` asks for each group's first contributing row
        (the surviving ``fid_index`` when stats are materialised); it
        forces a stable grouping sort, as does the LAST aggregate.
        """
        columns = gathered.columns
        n_rows = columns.n_rows
        matrix = columns.matrix

        if gathered.segments and matrix.size:
            if _max_abs(matrix) >= _FLOAT_EXACT_BOUND:
                return None
            scaled = matrix.astype(np.float64)
            for start, end, weight in gathered.segments:
                np.trunc(scaled[start:end] * weight, out=scaled[start:end])
            matrix = scaled.astype(np.int64)

        fid_arr = columns.fids
        if need_first_row or agg == "last":
            order = np.argsort(fid_arr, kind="stable")
        else:
            order = np.argsort(fid_arr)  # SUM/MAX/MIN are order-free.
        sorted_fids = fid_arr[order]
        group_head = np.empty(n_rows, dtype=bool)
        group_head[0] = True
        group_head[1:] = sorted_fids[1:] != sorted_fids[:-1]
        starts = np.flatnonzero(group_head)

        matrix_sorted = matrix[order]
        if agg == "sum":
            if n_rows * _max_abs(matrix) >= _INT64_BOUND:
                return None  # Reference clamps per fold; delegate.
            counts = np.add.reduceat(matrix_sorted, starts, axis=0)
        elif agg == "max":
            counts = np.maximum.reduceat(matrix_sorted, starts, axis=0)
        elif agg == "min":
            counts = np.minimum.reduceat(matrix_sorted, starts, axis=0)
        else:  # "last": the final contribution in iteration order wins.
            group_last = np.append(starts[1:], n_rows) - 1
            counts = matrix_sorted[group_last]
        return _Merged(
            fids=sorted_fids[starts],
            counts=counts,
            ts=np.maximum.reduceat(columns.ts[order], starts),
            widths=(
                None  # Every contributor is full-width already.
                if columns.uniform
                else np.maximum.reduceat(columns.widths[order], starts)
            ),
            first_row=order[starts] if need_first_row else None,
        )

    # ------------------------------------------------------------------
    # Sort / top-K cut
    # ------------------------------------------------------------------

    def _totals(self, merged: _Merged) -> np.ndarray | None:
        if merged.counts.shape[1] * _max_abs(merged.counts) >= _INT64_BOUND:
            return None  # Row sums could overflow int64.
        return merged.counts.sum(axis=1)

    def _attribute_column(self, merged: _Merged, index: int) -> np.ndarray:
        if 0 <= index < merged.counts.shape[1]:
            return merged.counts[:, index]
        return np.zeros(len(merged.fids), dtype=np.int64)

    def _ascending_order(
        self, merged: _Merged, spec: SortSpec
    ) -> np.ndarray | None:
        """The reference key tuples as a lexsort; ``None`` = guard trip.

        Every key ends in a unique fid component, so the total order is
        unique and ascending-then-reverse equals the reference's
        descending sort exactly.
        """
        from ..query import SortType

        if spec.sort_type is SortType.FEATURE_ID:
            return np.arange(len(merged.fids))  # fids already ascending
        neg_fid = -merged.fids
        if spec.sort_type is SortType.ATTRIBUTE:
            primary = self._attribute_column(merged, spec.attribute_index)
            return np.lexsort((neg_fid, merged.ts, primary))
        if spec.sort_type is SortType.TIMESTAMP:
            totals = self._totals(merged)
            if totals is None:
                return None
            return np.lexsort((neg_fid, totals, merged.ts))
        if spec.sort_type is SortType.TOTAL:
            totals = self._totals(merged)
            if totals is None:
                return None
            return np.lexsort((neg_fid, merged.ts, totals))
        # WEIGHTED: accumulate columns left-to-right in caller order so the
        # float result matches the reference's sum() bit-for-bit.
        score = np.zeros(len(merged.fids), dtype=np.float64)
        for index, weight in spec.weight_vector:
            score += self._attribute_column(merged, index).astype(np.float64) * weight
        return np.lexsort((neg_fid, merged.ts, score))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def _materialize_results(self, merged: _Merged, selection: np.ndarray):
        from ..query import FeatureResult

        rows = merged.counts[selection].tolist()
        fids = merged.fids[selection].tolist()
        timestamps = merged.ts[selection].tolist()
        if merged.widths is None:
            return [
                FeatureResult(fid, tuple(row), timestamp)
                for fid, row, timestamp in zip(fids, rows, timestamps)
            ]
        widths = merged.widths[selection].tolist()
        return [
            FeatureResult(fid, tuple(row[:width]), timestamp)
            for fid, row, width, timestamp in zip(fids, rows, widths, timestamps)
        ]

    def _materialize_stats(
        self, merged: _Merged, gathered: _Gathered
    ) -> list[FeatureStat]:
        rows = merged.counts.tolist()
        fids = merged.fids.tolist()
        timestamps = merged.ts.tolist()
        fid_index = gathered.columns.fid_index[merged.first_row].tolist()
        if merged.widths is None:
            return [
                _make_stat(fid, row, timestamp, index)
                for fid, row, timestamp, index in zip(
                    fids, rows, timestamps, fid_index
                )
            ]
        widths = merged.widths.tolist()
        return [
            _make_stat(fid, row[:width], timestamp, index)
            for fid, row, width, timestamp, index in zip(
                fids, rows, widths, timestamps, fid_index
            )
        ]

    @staticmethod
    def _commit_stats(stats, gathered: _Gathered, results) -> None:
        if stats is not None:
            stats.slices_scanned += gathered.slices_scanned
            stats.features_merged += gathered.n_rows
            stats.results_returned = len(results)

    # ------------------------------------------------------------------
    # Query kernels
    # ------------------------------------------------------------------

    def run_topk(
        self, profile, slot, type_id, window, reduce_fn, spec, k, descending, stats
    ):
        agg = aggregate_name(reduce_fn)
        if agg is not None:
            gathered = self._gather(profile, slot, type_id, window, None)
            if gathered is not None:
                results = []
                if gathered.n_rows:
                    merged = self._reduce(gathered, agg, False)
                    ascending = (
                        None
                        if merged is None
                        else self._ascending_order(merged, spec)
                    )
                    if ascending is None:
                        return self._reference.run_topk(
                            profile, slot, type_id, window, reduce_fn, spec,
                            k, descending, stats,
                        )
                    order = ascending[::-1] if descending else ascending
                    results = self._materialize_results(merged, order[:k])
                self._commit_stats(stats, gathered, results)
                return results
        return self._reference.run_topk(
            profile, slot, type_id, window, reduce_fn, spec, k,
            descending, stats,
        )

    def run_filter(
        self, profile, slot, type_id, window, reduce_fn, predicate, stats
    ):
        agg = aggregate_name(reduce_fn)
        if agg is not None:
            gathered = self._gather(profile, slot, type_id, window, None)
            if gathered is not None:
                results = []
                if gathered.n_rows:
                    merged = self._reduce(gathered, agg, True)
                    if merged is None:
                        return self._reference.run_filter(
                            profile, slot, type_id, window, reduce_fn,
                            predicate, stats,
                        )
                    kept = [
                        stat
                        for stat in self._materialize_stats(merged, gathered)
                        if predicate(stat)
                    ]
                    kept.sort(
                        key=lambda stat: (stat.total(), stat.fid), reverse=True
                    )
                    results = self._reference.finalize(kept, None)
                self._commit_stats(stats, gathered, results)
                return results
        return self._reference.run_filter(
            profile, slot, type_id, window, reduce_fn, predicate, stats
        )

    def run_decay(
        self,
        profile,
        slot,
        type_id,
        window,
        reduce_fn,
        decay_fn,
        decay_factor,
        spec,
        k,
        stats,
    ):
        agg = aggregate_name(reduce_fn)
        if agg is not None:
            gathered = self._gather(
                profile, slot, type_id, window, (decay_fn, decay_factor)
            )
            if gathered is not None:
                results = []
                if gathered.n_rows:
                    merged = self._reduce(gathered, agg, False)
                    ascending = (
                        None
                        if merged is None
                        else self._ascending_order(merged, spec)
                    )
                    if ascending is None:
                        return self._reference.run_decay(
                            profile, slot, type_id, window, reduce_fn,
                            decay_fn, decay_factor, spec, k, stats,
                        )
                    order = ascending[::-1]
                    if k is not None:
                        order = order[:k]
                    results = self._materialize_results(merged, order)
                self._commit_stats(stats, gathered, results)
                return results
        return self._reference.run_decay(
            profile, slot, type_id, window, reduce_fn, decay_fn,
            decay_factor, spec, k, stats,
        )

    # ------------------------------------------------------------------
    # Batch query kernels: one array program per multi-get
    # ------------------------------------------------------------------
    #
    # All profiles of a multi-get share a single gather → group → sort
    # pass: rows carry a profile-index (pid) column, grouping keys on
    # (pid, fid) and the final lexsort puts pid outermost, so every
    # profile's segment of the ordered output is contiguous and equals
    # its single-query ordering exactly (the keys are identical and the
    # sorts stable).  Exactness guards are evaluated batch-wide —
    # conservative, but the fallback *is* the single-query path, which
    # produces byte-identical results by the oracle's contract.

    #: Cap on distinct memo keys per profile (distinct resolved windows);
    #: beyond this the memo resets, bounding growth on write-heavy
    #: profiles whose anchored windows shift with every write.
    _PROFILE_MEMO_LIMIT = 8

    def _profile_gather(self, profile, slot, type_id, window):
        """The profile's combined (slot, type) projection for one window.

        Memoised in ``ProfileData.kernel_cache`` and revalidated by
        identity on every hit (see :class:`_ProfileGather`).  Returns
        ``None`` when some row cannot be vectorised — the caller
        delegates the whole batch to the reference loop.
        """
        key = (slot, type_id, window.start_ms, window.end_ms)
        cache = profile.kernel_cache
        memo = cache.get(key)
        entry_key = (slot, type_id)
        if memo is not None:
            cached_slices = memo.slices
            entries = memo.entries
            count = len(cached_slices)
            i = 0
            for profile_slice in profile.slices_in_window(
                window.start_ms, window.end_ms
            ):
                if (
                    i >= count
                    or cached_slices[i] is not profile_slice
                    or profile_slice.kernel_cache.get(entry_key, _MISSING)
                    is not entries[i]
                ):
                    i = -1
                    break
                i += 1
            if i == count:
                return memo
        slice_list: list = []
        entry_list: list = []
        profile_blocks: list[_Columns] = []
        for profile_slice in profile.slices_in_window(
            window.start_ms, window.end_ms
        ):
            columns = self._slice_columns(profile_slice, slot, type_id)
            if columns is _UNVECTORIZABLE:
                return None
            slice_list.append(profile_slice)
            entry_list.append(columns)
            if columns is not None:
                profile_blocks.append(columns)
        memo = _ProfileGather(
            tuple(slice_list),
            entry_list,
            self._combine(profile_blocks),
            len(slice_list),
        )
        if len(cache) >= self._PROFILE_MEMO_LIMIT:
            cache.clear()
        cache[key] = memo
        return memo

    def _gather_batch(self, profiles, slot, type_id, windows, decay):
        """One flat gather: every profile's blocks feed a single combine.

        No per-profile concatenation happens — blocks from all profiles
        go straight into one global block list (plus a pid per block, so
        the row→profile map is a single ``np.repeat``).  That is where
        the batch win comes from: a 256-profile multi-get runs the same
        ~constant number of numpy calls as one single-profile query.

        Returns ``(per_profile, combined, pid_arr)`` where
        ``per_profile[i]`` is ``None`` for an unresolved window or a
        ``_BatchGather`` carrying that profile's stats accounting, or
        ``None`` overall when any profile cannot be vectorised.
        """
        per_profile: list[_BatchGather | None] = []
        blocks: list[_Columns] = []
        block_pids: list[int] = []
        block_rows: list[int] = []
        segments: list[tuple[int, int, float]] = []
        slice_columns = self._slice_columns
        total = 0
        for index, (profile, window) in enumerate(zip(profiles, windows)):
            if window is None:
                per_profile.append(None)
                continue
            scanned = 0
            profile_start = total
            if decay is None:
                # Weight-free hot path (every weight is 1.0, no segments
                # accrue — identical to iter_weighted_slices): the whole
                # profile contributes one pre-combined block, memoised on
                # the profile and revalidated by identity.
                combined = self._profile_gather(profile, slot, type_id, window)
                if combined is None:
                    return None
                if combined.columns is not None:
                    total += combined.columns.n_rows
                    blocks.append(combined.columns)
                    block_pids.append(index)
                    block_rows.append(combined.columns.n_rows)
                per_profile.append(
                    _BatchGather(combined.scanned, total - profile_start)
                )
                continue
            else:
                for profile_slice, weight in self.iter_weighted_slices(
                    profile, window, decay
                ):
                    scanned += 1
                    if weight <= 0.0:
                        continue
                    columns = slice_columns(profile_slice, slot, type_id)
                    if columns is _UNVECTORIZABLE:
                        return None
                    if columns is None:
                        continue
                    start = total
                    total += columns.n_rows
                    blocks.append(columns)
                    block_pids.append(index)
                    block_rows.append(columns.n_rows)
                    if weight != 1.0:
                        segments.append((start, total, weight))
            per_profile.append(_BatchGather(scanned, total - profile_start))
        combined = _Gathered(self._combine(blocks), segments, 0)
        pid_arr = (
            np.repeat(
                np.asarray(block_pids, dtype=np.int64),
                np.asarray(block_rows, dtype=np.intp),
            )
            if blocks
            else None
        )
        return per_profile, combined, pid_arr

    def _reduce_batch(self, gathered: _Gathered, pid_arr, agg: str):
        """Group the combined rows by (pid, fid); ``None`` = guard trip."""
        columns = gathered.columns
        n_rows = columns.n_rows
        matrix = columns.matrix

        if gathered.segments and matrix.size:
            if _max_abs(matrix) >= _FLOAT_EXACT_BOUND:
                return None
            scaled = matrix.astype(np.float64)
            for start, end, weight in gathered.segments:
                np.trunc(scaled[start:end] * weight, out=scaled[start:end])
            matrix = scaled.astype(np.int64)

        fid_arr = columns.fids
        order = np.lexsort((fid_arr, pid_arr))  # stable; pid outermost
        sorted_fids = fid_arr[order]
        sorted_pids = pid_arr[order]
        group_head = np.empty(n_rows, dtype=bool)
        group_head[0] = True
        group_head[1:] = (sorted_fids[1:] != sorted_fids[:-1]) | (
            sorted_pids[1:] != sorted_pids[:-1]
        )
        starts = np.flatnonzero(group_head)

        matrix_sorted = matrix[order]
        if agg == "sum":
            if n_rows * _max_abs(matrix) >= _INT64_BOUND:
                return None  # Conservative: any profile could saturate.
            counts = np.add.reduceat(matrix_sorted, starts, axis=0)
        elif agg == "max":
            counts = np.maximum.reduceat(matrix_sorted, starts, axis=0)
        elif agg == "min":
            counts = np.minimum.reduceat(matrix_sorted, starts, axis=0)
        else:  # "last"
            group_last = np.append(starts[1:], n_rows) - 1
            counts = matrix_sorted[group_last]
        merged = _Merged(
            fids=sorted_fids[starts],
            counts=counts,
            ts=np.maximum.reduceat(columns.ts[order], starts),
            widths=(
                None
                if columns.uniform
                else np.maximum.reduceat(columns.widths[order], starts)
            ),
            first_row=None,
        )
        return merged, sorted_pids[starts]

    def _batch_order(self, merged: _Merged, group_pids, spec: SortSpec):
        """Ascending global order by (pid, spec keys); ``None`` = guard."""
        from ..query import SortType

        if spec.sort_type is SortType.FEATURE_ID:
            return np.arange(len(merged.fids))  # already (pid, fid) asc
        neg_fid = -merged.fids
        if spec.sort_type is SortType.ATTRIBUTE:
            primary = self._attribute_column(merged, spec.attribute_index)
            return np.lexsort((neg_fid, merged.ts, primary, group_pids))
        if spec.sort_type is SortType.TIMESTAMP:
            totals = self._totals(merged)
            if totals is None:
                return None
            return np.lexsort((neg_fid, totals, merged.ts, group_pids))
        if spec.sort_type is SortType.TOTAL:
            totals = self._totals(merged)
            if totals is None:
                return None
            return np.lexsort((neg_fid, merged.ts, totals, group_pids))
        score = np.zeros(len(merged.fids), dtype=np.float64)
        for index, weight in spec.weight_vector:
            score += self._attribute_column(merged, index).astype(np.float64) * weight
        return np.lexsort((neg_fid, merged.ts, score, group_pids))

    def _finish_batch(
        self,
        profiles,
        per_profile,
        merged,
        group_pids,
        ascending,
        k,
        descending,
        stats_list,
    ):
        """Cut each profile's contiguous segment of the global order.

        All segments are materialised in a single pass (one fancy-index
        over the merged columns) and the resulting flat list split back
        per profile — identical output, ~constant numpy-call count.
        """
        lengths = [0] * len(profiles)
        pieces: list[np.ndarray] = []
        if merged is not None:
            ordered_pids = group_pids[ascending]
            bounds = np.searchsorted(
                ordered_pids, np.arange(len(profiles) + 1)
            )
            for index, gathered in enumerate(per_profile):
                if gathered is None or not gathered.n_rows:
                    continue
                segment = ascending[bounds[index] : bounds[index + 1]]
                if descending:
                    segment = segment[::-1]
                if k is not None:
                    segment = segment[:k]
                lengths[index] = len(segment)
                pieces.append(segment)
        flat = (
            self._materialize_results(merged, np.concatenate(pieces))
            if pieces
            else []
        )
        out = []
        cursor = 0
        for gathered, stats, length in zip(per_profile, stats_list, lengths):
            if gathered is None:  # window resolved to nothing
                if stats is not None:
                    stats.results_returned = 0
                out.append([])
                continue
            results = flat[cursor : cursor + length] if length else []
            cursor += length
            self._commit_stats(stats, gathered, results)
            out.append(results)
        return out

    def run_topk_batch(
        self,
        profiles,
        slot,
        type_id,
        windows,
        reduce_fn,
        spec,
        k,
        descending,
        stats_list,
    ):
        agg = aggregate_name(reduce_fn)
        if agg is not None:
            plan = self._gather_batch(profiles, slot, type_id, windows, None)
            if plan is not None:
                gathered_list, combined, pid_arr = plan
                merged = group_pids = ascending = None
                guard_tripped = False
                if combined.columns is not None:
                    reduced = self._reduce_batch(combined, pid_arr, agg)
                    if reduced is None:
                        guard_tripped = True
                    else:
                        merged, group_pids = reduced
                        ascending = self._batch_order(merged, group_pids, spec)
                        guard_tripped = ascending is None
                if not guard_tripped:
                    return self._finish_batch(
                        profiles, gathered_list, merged, group_pids,
                        ascending, k, descending, stats_list,
                    )
        return super().run_topk_batch(
            profiles, slot, type_id, windows, reduce_fn, spec, k,
            descending, stats_list,
        )

    def run_decay_batch(
        self,
        profiles,
        slot,
        type_id,
        windows,
        reduce_fn,
        decay_fn,
        decay_factor,
        spec,
        k,
        stats_list,
    ):
        agg = aggregate_name(reduce_fn)
        if agg is not None:
            plan = self._gather_batch(
                profiles, slot, type_id, windows, (decay_fn, decay_factor)
            )
            if plan is not None:
                gathered_list, combined, pid_arr = plan
                merged = group_pids = ascending = None
                guard_tripped = False
                if combined.columns is not None:
                    reduced = self._reduce_batch(combined, pid_arr, agg)
                    if reduced is None:
                        guard_tripped = True
                    else:
                        merged, group_pids = reduced
                        ascending = self._batch_order(merged, group_pids, spec)
                        guard_tripped = ascending is None
                if not guard_tripped:
                    return self._finish_batch(
                        profiles, gathered_list, merged, group_pids,
                        ascending, k, True, stats_list,
                    )
        return super().run_decay_batch(
            profiles, slot, type_id, windows, reduce_fn, decay_fn,
            decay_factor, spec, k, stats_list,
        )

    # run_filter_batch stays on the base loop: the predicate is an opaque
    # Python callable applied per stat, so there is nothing to vectorise
    # across profiles.

    # ------------------------------------------------------------------
    # Compaction kernel
    # ------------------------------------------------------------------

    def fold_slice(self, target, source, reduce_fn: AggregateFn) -> None:
        agg = aggregate_name(reduce_fn)
        if (
            agg is None
            or target.feature_count() + source.feature_count()
            < self.fold_min_features
        ):
            self._reference.fold_slice(target, source, reduce_fn)
            return
        for slot, source_set in source.slots_items():
            target_set = target.ensure_slot(slot)
            for type_id in source_set.type_ids:
                source_stats = list(source_set.features_for_type(type_id))
                if not source_stats:
                    continue
                target_stats = list(target_set.features_for_type(type_id))
                folded = self._fold_type(
                    target_stats, source_stats, agg, reduce_fn
                )
                target_set.replace_type(type_id, folded)
        target.start_ms = min(target.start_ms, source.start_ms)
        target.end_ms = max(target.end_ms, source.end_ms)
        target.mark_mutated()

    def _fold_type(
        self,
        target_stats: list[FeatureStat],
        source_stats: list[FeatureStat],
        agg: str,
        reduce_fn: AggregateFn,
    ) -> list[FeatureStat]:
        """Merge one ``(slot, type)`` group, target rows first.

        Target-first ordering reproduces the reference fold direction:
        LAST keeps the source value for shared fids, and the surviving
        ``fid_index`` is the target's (first contribution).
        """
        fids: list = []
        rows: list = []
        ts: list = []
        fid_index: list = []
        for stats_list in (target_stats, source_stats):
            fids.extend(map(_GET_FID, stats_list))
            rows.extend(map(_GET_COUNTS, stats_list))
            ts.extend(map(_GET_TS, stats_list))
            fid_index.extend(map(_GET_FID_INDEX, stats_list))
        columns = _columns_from_lists(fids, rows, ts, fid_index)
        merged = None
        if columns is not _UNVECTORIZABLE:
            gathered = _Gathered(columns, [], 0)
            merged = self._reduce(gathered, agg, True)
        if merged is None:
            # Exactness guard: reference per-stat fold for this group only.
            by_fid = {stat.fid: stat for stat in target_stats}
            for stat in source_stats:
                existing = by_fid.get(stat.fid)
                if existing is None:
                    by_fid[stat.fid] = stat.copy()
                else:
                    existing.merge_counts(
                        stat.counts, reduce_fn, stat.last_timestamp_ms
                    )
            return list(by_fid.values())
        return self._materialize_stats(merged, gathered)
