"""Instance Set: per-slot map of action types to feature statistics.

In the paper's in-memory layout (Fig. 6), a *Slice* maps slot ids to
*Instance Sets*, and each Instance Set maps an action-type id to the feature
stats recorded under that type.  Keeping types separate lets queries narrow
the search space with ``(slot, type)`` before any merging happens.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .feature import FeatureStat


class InstanceSet:
    """Map of ``type_id -> {fid -> FeatureStat}`` for one slot."""

    __slots__ = ("_types",)

    def __init__(self) -> None:
        self._types: dict[int, dict[int, FeatureStat]] = {}

    def add(
        self,
        type_id: int,
        fid: int,
        counts,
        timestamp_ms: int,
        aggregate,
    ) -> FeatureStat:
        """Record counts for a feature, merging with any existing stat."""
        features = self._types.setdefault(type_id, {})
        stat = features.get(fid)
        if stat is None:
            stat = FeatureStat(fid, counts, timestamp_ms)
            features[fid] = stat
        else:
            stat.merge_counts(counts, aggregate, timestamp_ms)
        return stat

    def merge_from(self, other: "InstanceSet", aggregate) -> None:
        """Fold another instance set into this one (used by compaction)."""
        for type_id, features in other._types.items():
            mine = self._types.setdefault(type_id, {})
            for fid, stat in features.items():
                existing = mine.get(fid)
                if existing is None:
                    mine[fid] = stat.copy()
                else:
                    existing.merge_counts(
                        stat.counts, aggregate, stat.last_timestamp_ms
                    )

    def features_for_type(self, type_id: int | None) -> Iterator[FeatureStat]:
        """Yield stats under one type, or under all types when ``None``."""
        if type_id is None:
            for features in self._types.values():
                yield from features.values()
        else:
            yield from self._types.get(type_id, {}).values()

    def feature_maps(self, type_id: int | None) -> list[dict[int, FeatureStat]]:
        """The internal fid -> stat maps for one type (all when ``None``).

        Bulk read-only accessor for kernel backends: iterating the returned
        maps' values visits stats in exactly ``features_for_type`` order
        without per-stat generator overhead.  Callers must not mutate.
        """
        if type_id is None:
            return list(self._types.values())
        features = self._types.get(type_id)
        return [features] if features else []

    def get(self, type_id: int, fid: int) -> FeatureStat | None:
        return self._types.get(type_id, {}).get(fid)

    def replace_type(self, type_id: int, stats: Iterable[FeatureStat]) -> None:
        """Replace the feature map of one type (used by shrink)."""
        features = {stat.fid: stat for stat in stats}
        if features:
            self._types[type_id] = features
        else:
            self._types.pop(type_id, None)

    @property
    def type_ids(self) -> tuple[int, ...]:
        return tuple(self._types.keys())

    def feature_count(self) -> int:
        return sum(len(features) for features in self._types.values())

    def is_empty(self) -> bool:
        return not self._types

    def memory_bytes(self) -> int:
        total = 48
        for features in self._types.values():
            total += 48
            for stat in features.values():
                total += stat.memory_bytes()
        return total

    def copy(self) -> "InstanceSet":
        duplicate = InstanceSet()
        for type_id, features in self._types.items():
            duplicate._types[type_id] = {
                fid: stat.copy() for fid, stat in features.items()
            }
        return duplicate

    def items(self) -> Iterator[tuple[int, dict[int, FeatureStat]]]:
        return iter(self._types.items())

    def __repr__(self) -> str:
        return f"InstanceSet(types={len(self._types)}, features={self.feature_count()})"
