"""Instance Set: per-slot map of action types to feature statistics.

In the paper's in-memory layout (Fig. 6), a *Slice* maps slot ids to
*Instance Sets*, and each Instance Set maps an action-type id to the feature
stats recorded under that type.  Keeping types separate lets queries narrow
the search space with ``(slot, type)`` before any merging happens.

Since the columnar-native refactor each type's features live in a
:class:`~repro.core.columnar.ColumnGroup` — parallel int64 arrays as the
primary representation.  The historical dict-of-``FeatureStat`` view is
served by materialise-on-demand adapters (:meth:`features_for_type`,
:meth:`feature_maps`, :meth:`get`, :meth:`items`): returned stats are
fresh snapshots, and all mutation flows through :meth:`add`,
:meth:`merge_from` and :meth:`replace_type`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .columnar import ColumnGroup
from .feature import FeatureStat


class InstanceSet:
    """Map of ``type_id -> ColumnGroup`` for one slot."""

    __slots__ = ("_types",)

    def __init__(self) -> None:
        self._types: dict[int, ColumnGroup] = {}

    def add(
        self,
        type_id: int,
        fid: int,
        counts,
        timestamp_ms: int,
        aggregate,
    ) -> FeatureStat:
        """Record counts for a feature, merging with any existing stat."""
        group = self._types.setdefault(type_id, ColumnGroup())
        return group.add(fid, counts, timestamp_ms, aggregate)

    def merge_from(self, other: "InstanceSet", aggregate) -> None:
        """Fold another instance set into this one (used by compaction)."""
        for type_id, group in other._types.items():
            mine = self._types.setdefault(type_id, ColumnGroup())
            mine.merge_from(group, aggregate)

    def features_for_type(self, type_id: int | None) -> Iterator[FeatureStat]:
        """Yield stats under one type, or under all types when ``None``.

        Stats are materialised from the columns — mutating one does not
        write back; use :meth:`replace_type` to persist edits.
        """
        if type_id is None:
            for group in self._types.values():
                yield from group.iter_stats()
        else:
            group = self._types.get(type_id)
            if group is not None:
                yield from group.iter_stats()

    def feature_maps(self, type_id: int | None) -> list[dict[int, FeatureStat]]:
        """Materialised fid -> stat maps for one type (all when ``None``).

        Compatibility adapter over the column groups: iterating the
        returned maps' values visits stats in exactly
        ``features_for_type`` order.  Callers must not mutate.
        """
        if type_id is None:
            return [group.as_dict() for group in self._types.values()]
        group = self._types.get(type_id)
        return [group.as_dict()] if group is not None else []

    def column_groups(self, type_id: int | None) -> list[ColumnGroup]:
        """The primary column groups for one type (all when ``None``).

        This is the kernel/serializer fast path: no per-feature Python
        objects are created.  Callers must not mutate the arrays.
        """
        if type_id is None:
            return list(self._types.values())
        group = self._types.get(type_id)
        return [group] if group is not None else []

    def column_group(self, type_id: int) -> ColumnGroup | None:
        return self._types.get(type_id)

    def get(self, type_id: int, fid: int) -> FeatureStat | None:
        group = self._types.get(type_id)
        if group is None:
            return None
        return group.get(fid)

    def replace_type(self, type_id: int, stats: Iterable[FeatureStat]) -> None:
        """Replace the feature columns of one type (used by shrink)."""
        group = ColumnGroup.from_stats(stats)
        if not group.is_empty():
            self._types[type_id] = group
        else:
            self._types.pop(type_id, None)

    def adopt_group(self, type_id: int, group: ColumnGroup) -> None:
        """Install a pre-built column group (deserialization fast path)."""
        if not group.is_empty():
            self._types[type_id] = group
        else:
            self._types.pop(type_id, None)

    @property
    def type_ids(self) -> tuple[int, ...]:
        return tuple(self._types.keys())

    def feature_count(self) -> int:
        return sum(len(group) for group in self._types.values())

    def is_empty(self) -> bool:
        return not self._types

    def memory_bytes(self) -> int:
        return 48 + sum(group.memory_bytes() for group in self._types.values())

    def copy(self) -> "InstanceSet":
        duplicate = InstanceSet()
        for type_id, group in self._types.items():
            duplicate._types[type_id] = group.copy()
        return duplicate

    def items(self) -> Iterator[tuple[int, dict[int, FeatureStat]]]:
        """Compatibility iterator over ``(type_id, {fid: stat})`` views."""
        for type_id, group in self._types.items():
            yield type_id, group.as_dict()

    def groups_items(self) -> Iterator[tuple[int, ColumnGroup]]:
        return iter(self._types.items())

    def __repr__(self) -> str:
        return f"InstanceSet(types={len(self._types)}, features={self.feature_count()})"
