"""Profile Data: the time-serial slice list for one profile id.

Writes carry a timestamp that determines slice placement (§II-B): if the
timestamp is newer than all existing data a fresh slice is prepended at the
head; otherwise the write lands in the slice whose range contains it.  The
slice list is kept newest-first, non-overlapping and gap-free enough for
window queries — a write into a historical gap creates a slice covering one
granule around the timestamp.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, Sequence

from ..errors import InvalidTimeRangeError
from .slice import Slice


class ProfileData:
    """One profile's entire history as a newest-first list of slices."""

    __slots__ = (
        "profile_id",
        "slices",
        "write_granularity_ms",
        "kernel_cache",
    )

    def __init__(self, profile_id: int, write_granularity_ms: int = 1000) -> None:
        if write_granularity_ms <= 0:
            raise InvalidTimeRangeError(
                f"write granularity must be positive, got {write_granularity_ms}"
            )
        self.profile_id = profile_id
        #: Newest-first: ``slices[0]`` covers the most recent time range.
        self.slices: list[Slice] = []
        #: Granularity of freshly created head slices (the finest band of the
        #: table's time-dimension config).
        self.write_granularity_ms = write_granularity_ms
        #: Profile-level kernel memo (batch gathers).  Unlike the per-slice
        #: ``Slice.kernel_cache`` this is never cleared on mutation: entries
        #: embed the slice objects and per-slice cache values they were built
        #: from and are revalidated by identity on every use, so a mutated or
        #: replaced slice simply fails validation and the entry is rebuilt.
        self.kernel_cache: dict = {}

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def add(
        self,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts: Sequence[int],
        aggregate,
    ) -> None:
        """Place one write according to its timestamp."""
        target = self._slice_for_timestamp(timestamp_ms)
        target.add(slot, type_id, fid, counts, timestamp_ms, aggregate)

    def _slice_for_timestamp(self, timestamp_ms: int) -> Slice:
        if timestamp_ms < 0:
            raise InvalidTimeRangeError(
                f"timestamp must be >= 0, got {timestamp_ms}"
            )
        if not self.slices or timestamp_ms >= self.slices[0].end_ms:
            return self._new_head_slice(timestamp_ms)
        for existing in self.slices:
            if existing.contains(timestamp_ms):
                return existing
            if timestamp_ms >= existing.end_ms:
                break
        return self._insert_gap_slice(timestamp_ms)

    def _new_head_slice(self, timestamp_ms: int) -> Slice:
        """Prepend a new slice aligned to the write granularity."""
        start = self._align(timestamp_ms)
        end = start + self.write_granularity_ms
        if self.slices and start < self.slices[0].end_ms:
            # The aligned start would overlap the current head; begin exactly
            # where the head ends instead so ranges stay disjoint.
            start = self.slices[0].end_ms
            end = max(end, start + 1)
        head = Slice(start, end)
        self.slices.insert(0, head)
        return head

    def _insert_gap_slice(self, timestamp_ms: int) -> Slice:
        """Create a slice for a write that falls between existing slices."""
        start = self._align(timestamp_ms)
        end = start + self.write_granularity_ms
        # Clamp against the neighbours so ranges never overlap.
        for existing in self.slices:
            if existing.end_ms <= timestamp_ms:
                start = max(start, existing.end_ms)
            elif existing.start_ms > timestamp_ms:
                end = min(end, existing.start_ms)
        if end <= timestamp_ms:
            end = timestamp_ms + 1
        if start > timestamp_ms:
            start = timestamp_ms
        gap = Slice(start, end)
        position = self._insert_position(gap.start_ms)
        self.slices.insert(position, gap)
        return gap

    def _insert_position(self, start_ms: int) -> int:
        """Index at which a slice starting at ``start_ms`` keeps order."""
        for index, existing in enumerate(self.slices):
            if start_ms >= existing.start_ms:
                return index
        return len(self.slices)

    def _align(self, timestamp_ms: int) -> int:
        return timestamp_ms - (timestamp_ms % self.write_granularity_ms)

    # ------------------------------------------------------------------
    # Read path helpers
    # ------------------------------------------------------------------

    def slices_in_window(self, start_ms: int, end_ms: int) -> Iterator[Slice]:
        """Yield slices overlapping the half-open window, newest first."""
        if end_ms <= start_ms:
            return
        for existing in self.slices:
            if existing.end_ms <= start_ms:
                break  # Everything further is older than the window.
            if existing.overlaps(start_ms, end_ms):
                yield existing

    def newest_timestamp_ms(self) -> int | None:
        """End of the newest slice, or ``None`` for an empty profile.

        Used to anchor RELATIVE time ranges ("window starting from the most
        recent action").
        """
        if not self.slices:
            return None
        return self.slices[0].end_ms

    def oldest_timestamp_ms(self) -> int | None:
        if not self.slices:
            return None
        return self.slices[-1].start_ms

    # ------------------------------------------------------------------
    # Maintenance helpers
    # ------------------------------------------------------------------

    def replace_slices(self, new_slices: list[Slice]) -> None:
        """Swap in a rebuilt slice list (compaction / truncation output)."""
        self._check_ordering(new_slices)
        self.slices = new_slices

    @staticmethod
    def _check_ordering(slices: list[Slice]) -> None:
        for newer, older in zip(slices, slices[1:]):
            if older.end_ms > newer.start_ms:
                raise InvalidTimeRangeError(
                    "slice list must be newest-first and non-overlapping: "
                    f"{newer!r} then {older!r}"
                )

    def drop_empty_slices(self) -> int:
        before = len(self.slices)
        self.slices = [s for s in self.slices if not s.is_empty()]
        return before - len(self.slices)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def slice_count(self) -> int:
        return len(self.slices)

    def feature_count(self) -> int:
        return sum(s.feature_count() for s in self.slices)

    def memory_bytes(self) -> int:
        return 64 + sum(s.memory_bytes() for s in self.slices)

    def copy(self) -> "ProfileData":
        duplicate = ProfileData(self.profile_id, self.write_granularity_ms)
        duplicate.slices = [s.copy() for s in self.slices]
        return duplicate

    def invariant_check(self) -> None:
        """Raise if the slice list violates ordering invariants (for tests)."""
        self._check_ordering(self.slices)

    def __repr__(self) -> str:
        return (
            f"ProfileData(id={self.profile_id}, slices={len(self.slices)}, "
            f"features={self.feature_count()})"
        )
