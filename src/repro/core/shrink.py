"""Shrink: long-tail feature elimination (§III-D, Listing 4).

Compaction bounds the *number of slices* but the long tail of low-count
features inside each slice still grows.  Shrink bounds the *number of
features per (slot, type)* across a whole profile while honouring the
paper's three principles:

* **Data freshness** — a recent feature with a low count may still grow, so
  recency earns a score boost (configurable half life); old data is shed
  before new data.
* **Multi-dimensional sorting** — different action counters carry different
  significance; importance is a weighted sum over the attribute schema.
* **Short/long-term balance** — the retained set is chosen *profile-wide*
  per (slot, type), not per slice, so a strong long-term interest in an old
  slice outlives a weak recent fad instead of being evicted wholesale.

The retained-per-slot budget comes from the table's
:class:`~repro.config.ShrinkConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import ShrinkConfig, SlotShrinkPolicy, TableConfig
from .feature import FeatureStat
from .profile import ProfileData


@dataclass
class ShrinkStats:
    """Outcome of one shrink pass."""

    features_before: int = 0
    features_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def features_dropped(self) -> int:
        return self.features_before - self.features_after

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


class Shrinker:
    """Applies a shrink config to profiles."""

    def __init__(self, table_config: TableConfig, shrink_config: ShrinkConfig) -> None:
        self._table = table_config
        self._config = shrink_config
        self._weight_vectors: dict[int, list[float]] = {}

    # ------------------------------------------------------------------

    def shrink(self, profile: ProfileData, now_ms: int) -> ShrinkStats:
        """Shrink a profile in place, returning before/after accounting."""
        stats = ShrinkStats(
            features_before=profile.feature_count(),
            bytes_before=profile.memory_bytes(),
        )
        slot_type_pairs = self._collect_slot_type_pairs(profile)
        for slot, type_id in slot_type_pairs:
            policy = self._config.policy_for_slot(slot)
            if policy is None:
                continue
            self._shrink_group(profile, slot, type_id, policy, now_ms)
        for profile_slice in profile.slices:
            profile_slice.drop_empty_slots()
            profile_slice.mark_mutated()
        profile.drop_empty_slices()
        stats.features_after = profile.feature_count()
        stats.bytes_after = profile.memory_bytes()
        return stats

    # ------------------------------------------------------------------

    @staticmethod
    def _collect_slot_type_pairs(profile: ProfileData) -> set[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for profile_slice in profile.slices:
            for slot, instance_set in profile_slice.slots_items():
                for type_id in instance_set.type_ids:
                    pairs.add((slot, type_id))
        return pairs

    def _shrink_group(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int,
        policy: SlotShrinkPolicy,
        now_ms: int,
    ) -> None:
        """Rank a (slot, type) group profile-wide and drop the tail."""
        # Score every fid by its aggregated importance across all slices.
        scores: dict[int, float] = {}
        occurrences = 0
        for profile_slice in profile.slices:
            instance_set = profile_slice.instance_set(slot)
            if instance_set is None:
                continue
            for stat in instance_set.features_for_type(type_id):
                occurrences += 1
                scores[stat.fid] = scores.get(stat.fid, 0.0) + self._score(
                    stat, policy, now_ms
                )
        if len(scores) <= policy.retain_features:
            return
        ranked = sorted(scores.items(), key=lambda item: (item[1], item[0]))
        doomed = {fid for fid, _ in ranked[: len(scores) - policy.retain_features]}
        for profile_slice in profile.slices:
            instance_set = profile_slice.instance_set(slot)
            if instance_set is None:
                continue
            survivors = [
                stat
                for stat in instance_set.features_for_type(type_id)
                if stat.fid not in doomed
            ]
            instance_set.replace_type(type_id, survivors)
            profile_slice.mark_mutated()

    def _score(
        self, stat: FeatureStat, policy: SlotShrinkPolicy, now_ms: int
    ) -> float:
        """Importance = weighted counts, boosted by recency."""
        base = self._weighted_counts(stat, policy)
        if policy.freshness_half_life_ms is None:
            return base
        age_ms = max(0, now_ms - stat.last_timestamp_ms)
        boost = math.pow(0.5, age_ms / policy.freshness_half_life_ms)
        # The boost adds up to one extra "virtual count" for brand-new
        # features so that a fresh single-count feature outranks a stale one.
        return base + boost

    def _weighted_counts(self, stat: FeatureStat, policy: SlotShrinkPolicy) -> float:
        if policy.attribute_weights is None:
            return float(stat.total())
        weights = self._weights_vector(policy)
        return sum(
            stat.count_at(index) * weight
            for index, weight in enumerate(weights)
            if weight != 0.0
        )

    def _weights_vector(self, policy: SlotShrinkPolicy) -> list[float]:
        """Cache the attribute-name -> schema-index weight projection."""
        cache_key = id(policy)
        vector = self._weight_vectors.get(cache_key)
        if vector is None:
            vector = [0.0] * self._table.num_attributes
            assert policy.attribute_weights is not None
            for name, weight in policy.attribute_weights.items():
                vector[self._table.attribute_index(name)] = weight
            self._weight_vectors[cache_key] = vector
        return vector
