"""Pre-configured aggregate (reduce) functions.

Each IPS table is configured with a reduce function applied wherever two
counts for the same feature meet: the in-slice write path, slice compaction
and query-time multi-way merging (§III-D uses SUM and MAX as the examples).
An aggregate takes two int counters and returns the combined counter.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError

AggregateFn = Callable[[int, int], int]


def aggregate_sum(left: int, right: int) -> int:
    return left + right


def aggregate_max(left: int, right: int) -> int:
    return left if left >= right else right


def aggregate_min(left: int, right: int) -> int:
    return left if left <= right else right


def aggregate_last(left: int, right: int) -> int:
    """Keep the most recently merged value (right operand wins).

    Useful for volatile signals such as advertising bid prices (§I-d),
    where the newest observation should replace older ones.
    """
    return right


AGGREGATES: dict[str, AggregateFn] = {
    "sum": aggregate_sum,
    "max": aggregate_max,
    "min": aggregate_min,
    "last": aggregate_last,
}


def register_aggregate(name: str, fn: AggregateFn) -> None:
    """Register a user-defined aggregate function (UDAF).

    The paper's data model supports "user defined aggregate functions over
    arbitrary time windows" (§I contributions); a registered UDAF becomes
    available both as a table's pre-configured reduce function and as a
    query-time override.  Built-in names cannot be replaced.
    """
    key = name.lower()
    if key in ("sum", "max", "min", "last"):
        raise ConfigError(f"cannot override built-in aggregate {name!r}")
    if not callable(fn):
        raise ConfigError(f"aggregate {name!r} must be callable")
    AGGREGATES[key] = fn


def unregister_aggregate(name: str) -> None:
    """Remove a previously registered UDAF (no-op for unknown names)."""
    key = name.lower()
    if key in ("sum", "max", "min", "last"):
        raise ConfigError(f"cannot remove built-in aggregate {name!r}")
    AGGREGATES.pop(key, None)


def get_aggregate(name: str) -> AggregateFn:
    """Look up an aggregate by its config name (case-insensitive)."""
    try:
        return AGGREGATES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown aggregate {name!r}; available: {sorted(AGGREGATES)}"
        ) from None
