"""Slice compaction (§III-D, Figs. 10 and Listings 2-3).

Compaction merges consecutive slices so that data of a given *age* is kept
at the granularity prescribed by the table's time-dimension config: fresh
data stays in fine slices, old data collapses into coarse ones.  Merging
applies the table's aggregate function per feature id; no data is dropped
(truncation and shrinking are separate mechanisms).

Mirroring the production lessons in the paper, the compactor supports both
*full* compaction (rebuild the whole slice list) and *partial* compaction
(compact only the oldest ``partial_budget`` slices), so the serving path can
cap per-request CPU and defer the rest to a maintenance pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import TimeDimensionConfig
from .aggregate import AggregateFn
from .profile import ProfileData
from .slice import Slice


@dataclass
class CompactionStats:
    """Outcome of one compaction run."""

    slices_before: int = 0
    slices_after: int = 0
    merges: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def slices_saved(self) -> int:
        return self.slices_before - self.slices_after

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


class Compactor:
    """Applies a time-dimension config to profiles.

    The per-feature slice fold runs on a kernel backend (see
    :mod:`repro.core.kernels`): the ``python`` reference folds stat maps
    through ``Slice.merge_from``; the ``numpy`` backend rebuilds large
    ``(slot, type)`` groups column-wise.  Both are result-identical.
    """

    def __init__(
        self,
        time_dimension: TimeDimensionConfig,
        aggregate: AggregateFn,
        backend=None,
    ) -> None:
        from .kernels import get_backend

        self._time_dimension = time_dimension
        self._aggregate = aggregate
        self._backend = get_backend(backend)

    # ------------------------------------------------------------------

    def needs_compaction(self, profile: ProfileData, now_ms: int) -> bool:
        """Cheap check: does any adjacent pair merge under the config?

        Used by the engine to decide between skipping, partial and full
        compaction based on actual load (§III-D's strategies).
        """
        slices = profile.slices
        for newer, older in zip(slices, slices[1:]):
            if self._should_merge(newer, older, now_ms):
                return True
        return False

    def compact(
        self,
        profile: ProfileData,
        now_ms: int,
        partial_budget: int | None = None,
    ) -> CompactionStats:
        """Compact a profile in place.

        With ``partial_budget`` set, only the oldest ``partial_budget``
        slices are considered for merging — a cheap incremental pass.  The
        full pass walks the whole list oldest-to-newest, greedily merging
        neighbours that fit inside one granule of their age band.
        """
        stats = CompactionStats(
            slices_before=profile.slice_count(),
            bytes_before=profile.memory_bytes(),
        )
        if profile.slice_count() >= 2:
            if partial_budget is not None and partial_budget < 2:
                pass  # Budget too small to merge anything.
            else:
                self._compact_range(profile, now_ms, partial_budget, stats)
        stats.slices_after = profile.slice_count()
        stats.bytes_after = profile.memory_bytes()
        return stats

    # ------------------------------------------------------------------

    def _compact_range(
        self,
        profile: ProfileData,
        now_ms: int,
        partial_budget: int | None,
        stats: CompactionStats,
    ) -> None:
        # Work oldest-first: old bands are coarser so they merge the most.
        oldest_first = list(reversed(profile.slices))
        if partial_budget is not None:
            workset = oldest_first[:partial_budget]
            untouched = oldest_first[partial_budget:]
        else:
            workset = oldest_first
            untouched = []

        compacted: list[Slice] = []
        for current in workset:
            if compacted and self._should_merge(current, compacted[-1], now_ms):
                self._backend.fold_slice(compacted[-1], current, self._aggregate)
                stats.merges += 1
            else:
                compacted.append(current)
        compacted.extend(untouched)
        compacted.reverse()  # Back to newest-first.
        profile.replace_slices(compacted)

    def _should_merge(self, newer: Slice, older: Slice, now_ms: int) -> bool:
        """Whether ``older`` and ``newer`` collapse into one granule.

        Both slices must sit in a band (not beyond the horizon), and the
        merged range must fit within a single aligned granule of the *older*
        slice's band — the band that governs data of that age.
        """
        age_ms = max(0, now_ms - older.start_ms)
        granularity = self._time_dimension.granularity_for_age(age_ms)
        if granularity is None:
            # Older than every band; leave for truncation to remove.
            return False
        merged_start = older.start_ms
        merged_end = newer.end_ms
        if merged_end - merged_start > granularity:
            return False
        granule_start = merged_start - (merged_start % granularity)
        return merged_end <= granule_start + granularity
