"""Truncation: dropping whole slices of low-value old data (§III-D, Fig. 11).

Unlike compaction, truncation *removes* data.  IPS supports truncating by
slice count (keep the newest N slices, e.g. "last 100 clicks" style use
cases) and by age (drop slices whose entire range is older than a bound,
e.g. "nothing beyond 30 days matters to this model").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TruncateConfig
from .profile import ProfileData


@dataclass
class TruncateStats:
    """Outcome of one truncation pass."""

    slices_dropped: int = 0
    features_dropped: int = 0
    bytes_dropped: int = 0


def truncate_by_count(profile: ProfileData, max_slices: int) -> TruncateStats:
    """Keep only the newest ``max_slices`` slices."""
    stats = TruncateStats()
    if max_slices < 0:
        raise ValueError(f"max_slices must be >= 0, got {max_slices}")
    doomed = profile.slices[max_slices:]
    if doomed:
        stats.slices_dropped = len(doomed)
        stats.features_dropped = sum(s.feature_count() for s in doomed)
        stats.bytes_dropped = sum(s.memory_bytes() for s in doomed)
        profile.replace_slices(profile.slices[:max_slices])
    return stats


def truncate_by_age(
    profile: ProfileData, now_ms: int, max_age_ms: int
) -> TruncateStats:
    """Drop slices that end before ``now_ms - max_age_ms``.

    A slice straddling the boundary is kept whole: truncation is a coarse
    mechanism and never splits slices.
    """
    stats = TruncateStats()
    if max_age_ms <= 0:
        raise ValueError(f"max_age_ms must be positive, got {max_age_ms}")
    cutoff_ms = now_ms - max_age_ms
    kept = []
    for profile_slice in profile.slices:
        if profile_slice.end_ms <= cutoff_ms:
            stats.slices_dropped += 1
            stats.features_dropped += profile_slice.feature_count()
            stats.bytes_dropped += profile_slice.memory_bytes()
        else:
            kept.append(profile_slice)
    if stats.slices_dropped:
        profile.replace_slices(kept)
    return stats


def truncate_profile(
    profile: ProfileData, config: TruncateConfig, now_ms: int
) -> TruncateStats:
    """Apply a table's full truncate config (age bound first, then count)."""
    combined = TruncateStats()
    if config.max_age_ms is not None:
        by_age = truncate_by_age(profile, now_ms, config.max_age_ms)
        combined.slices_dropped += by_age.slices_dropped
        combined.features_dropped += by_age.features_dropped
        combined.bytes_dropped += by_age.bytes_dropped
    if config.max_slices is not None:
        by_count = truncate_by_count(profile, config.max_slices)
        combined.slices_dropped += by_count.slices_dropped
        combined.features_dropped += by_count.features_dropped
        combined.bytes_dropped += by_count.bytes_dropped
    return combined
