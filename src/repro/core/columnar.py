"""Columnar feature storage: flat int64 arrays as the primary representation.

ROADMAP item #2 inverts the PR 5 design: instead of per-stat Python
objects that kernel backends *gather* into numpy arrays on first touch,
each ``(slot, type)`` group stores its features directly as parallel
``array('q')`` (int64) columns:

* ``fids``    — one feature id per row, insertion order;
* ``ts``      — last contributing timestamp per row;
* ``counts``  — row-major count matrix, each row zero-padded to ``stride``
  (the widest native row);
* ``widths``  — native row widths, or ``None`` when every row is exactly
  ``stride`` wide (the overwhelmingly common case);
* ``fid_index`` — per-row profile-wide insertion index, or ``None`` when
  every row carries the default ``-1``.

The dict-of-:class:`~repro.core.feature.FeatureStat` view that the rest
of the system historically consumed is demoted to an adapter:
:meth:`stats` / :meth:`get` materialise fresh ``FeatureStat`` objects on
demand, and all mutation flows through :meth:`add` / :meth:`merge_from`
/ :meth:`replace` which reproduce ``FeatureStat.merge_counts`` exactly
(positionwise aggregation over the *native* widths, implicit zero
padding, per-position int64 clamping, max timestamps).

Kernel backends wrap the arrays with zero gather work (one buffer view
per column), and the serializer dumps them through ``memoryview`` without
touching a single Python object per feature.

**Legacy fallback.**  int64 columns cannot hold everything the old dict
representation could: fids or timestamps outside int64, and user-defined
aggregate functions returning non-integers.  When such a value first
appears the whole group *demotes* to the old ``{fid: FeatureStat}`` dict
(``_legacy``) and keeps the original semantics verbatim; kernels treat a
demoted group as unvectorizable, exactly like the old out-of-int64
delegation path.  Demotion checks happen before any column mutation, so
a demoting operation replays cleanly against the materialised dict.

This module is imported by ``core`` proper, so it must stay numpy-free
(``tools/check_numpy_isolation.py`` enforces the isolation); everything
is stdlib ``array`` + buffer protocol.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from .feature import INT64_MAX, INT64_MIN, FeatureStat, clamp_int64

#: Typecode of every column: signed 64-bit (matches the paper's C++ structs).
INT64_TYPECODE = "q"


class _Demote(Exception):
    """Internal: a value cannot live in int64 columns; retry in dict mode."""


def _fits_int64(value: int) -> bool:
    return INT64_MIN <= value <= INT64_MAX


def _new_stat(fid, counts, last_timestamp_ms, fid_index) -> FeatureStat:
    """FeatureStat from already-clamped values, skipping re-clamping."""
    stat = FeatureStat.__new__(FeatureStat)
    stat.fid = fid
    stat.counts = counts
    stat.last_timestamp_ms = last_timestamp_ms
    stat.fid_index = fid_index
    return stat


class ColumnGroup:
    """One ``(slot, type)`` group of features as parallel int64 columns."""

    __slots__ = (
        "stride",
        "fids",
        "ts",
        "counts",
        "widths",
        "fid_index",
        "_index",
        "_legacy",
    )

    def __init__(self) -> None:
        self.stride = 0
        self.fids = array(INT64_TYPECODE)
        self.ts = array(INT64_TYPECODE)
        self.counts = array(INT64_TYPECODE)
        self.widths: array | None = None
        self.fid_index: array | None = None
        #: fid -> row position (columnar mode only).
        self._index: dict[int, int] = {}
        #: ``None`` in columnar mode; the old dict representation after
        #: demotion.
        self._legacy: dict[int, FeatureStat] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_columnar(self) -> bool:
        return self._legacy is None

    def __len__(self) -> int:
        if self._legacy is not None:
            return len(self._legacy)
        return len(self.fids)

    def is_empty(self) -> bool:
        return len(self) == 0

    def row_width(self, row: int) -> int:
        """Native (unpadded) width of one columnar row."""
        if self.widths is not None:
            return self.widths[row]
        return self.stride

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def add(self, fid: int, counts, timestamp_ms: int, aggregate) -> FeatureStat:
        """Record counts for a feature, merging with any existing row.

        Returns a freshly materialised stat reflecting the merged state
        (mutating it does not write back — the columns are primary).
        """
        if self._legacy is not None:
            return self._legacy_add(fid, counts, timestamp_ms, aggregate)
        # Mirror FeatureStat.__init__ / merge_counts int coercion so bad
        # inputs raise the same errors they always did.
        values = [int(count) for count in counts]
        try:
            return self._columnar_add(fid, values, timestamp_ms, aggregate)
        except _Demote:
            self._demote()
            return self._legacy_add(fid, counts, timestamp_ms, aggregate)

    def _columnar_add(
        self, fid: int, values: list, timestamp_ms: int, aggregate
    ) -> FeatureStat:
        if not _fits_int64(fid) or not _fits_int64(timestamp_ms):
            raise _Demote
        row = self._index.get(fid)
        if row is None:
            clamped = [clamp_int64(value) for value in values]
            self._append_row(fid, clamped, timestamp_ms, -1)
            return _new_stat(fid, list(clamped), timestamp_ms, -1)
        return self._merge_row(row, values, timestamp_ms, aggregate, coerce=False)

    def _legacy_add(self, fid, counts, timestamp_ms, aggregate) -> FeatureStat:
        assert self._legacy is not None
        stat = self._legacy.get(fid)
        if stat is None:
            stat = FeatureStat(fid, counts, timestamp_ms)
            self._legacy[fid] = stat
        else:
            stat.merge_counts(counts, aggregate, timestamp_ms)
        return stat

    def _merge_row(
        self, row: int, values: list, timestamp_ms: int, aggregate, coerce: bool
    ) -> FeatureStat:
        """Positionwise aggregate into one row — ``merge_counts`` exactly.

        ``coerce`` applies ``merge_counts``'s ``int(other)`` conversion
        (write/merge paths); copied-in rows from another group skip it.
        Raises :class:`_Demote` before mutating anything if the aggregate
        produces a value int64 columns cannot hold.
        """
        if not _fits_int64(timestamp_ms):
            raise _Demote
        width = self.row_width(row)
        incoming = len(values)
        overlap = min(width, incoming)
        base = row * self.stride
        counts = self.counts
        merged = [
            clamp_int64(
                aggregate(counts[base + i], int(values[i]) if coerce else values[i])
            )
            for i in range(overlap)
        ]
        if incoming > width:
            merged.extend(
                clamp_int64(aggregate(0, int(value) if coerce else value))
                for value in values[overlap:]
            )
        elif width > overlap:
            merged.extend(
                clamp_int64(aggregate(counts[base + i], 0))
                for i in range(overlap, width)
            )
        new_width = max(width, incoming)
        try:
            probe = array(INT64_TYPECODE, merged)
        except (TypeError, OverflowError):
            raise _Demote from None  # e.g. a UDAF returned a float
        # Validation done — commit (no failure paths below).
        if new_width > self.stride:
            self._grow_stride(new_width)
            base = row * self.stride
        if new_width != width:
            self._set_row_width(row, new_width)
        self.counts[base : base + new_width] = probe
        if timestamp_ms > self.ts[row]:
            self.ts[row] = timestamp_ms
        fid_index = self.fid_index[row] if self.fid_index is not None else -1
        return _new_stat(self.fids[row], merged, self.ts[row], fid_index)

    def _append_row(
        self, fid: int, values: Sequence[int], timestamp_ms: int, fid_index: int
    ) -> None:
        """Append one validated row (caller guarantees int64-safe values)."""
        width = len(values)
        try:
            probe = array(INT64_TYPECODE, values)
        except (TypeError, OverflowError):
            raise _Demote from None
        if not _fits_int64(fid) or not _fits_int64(timestamp_ms):
            raise _Demote
        if width > self.stride:
            self._grow_stride(width)
        row = len(self.fids)
        self.fids.append(fid)
        self.ts.append(timestamp_ms)
        self.counts.extend(probe)
        if width < self.stride:
            self.counts.extend([0] * (self.stride - width))
            if self.widths is None:
                self.widths = array(INT64_TYPECODE, [self.stride] * row)
            self.widths.append(width)
        elif self.widths is not None:
            self.widths.append(width)
        if fid_index != -1:
            if self.fid_index is None:
                self.fid_index = array(INT64_TYPECODE, [-1] * row)
            self.fid_index.append(fid_index)
        elif self.fid_index is not None:
            self.fid_index.append(-1)
        self._index[fid] = row

    def _grow_stride(self, new_stride: int) -> None:
        """Re-layout the count matrix for a wider stride."""
        old_stride = self.stride
        n_rows = len(self.fids)
        if self.widths is None and n_rows:
            self.widths = array(INT64_TYPECODE, [old_stride] * n_rows)
        relaid = array(INT64_TYPECODE, bytes(8 * n_rows * new_stride))
        for row in range(n_rows):
            src = row * old_stride
            dst = row * new_stride
            relaid[dst : dst + old_stride] = self.counts[src : src + old_stride]
        self.counts = relaid
        self.stride = new_stride

    def _set_row_width(self, row: int, width: int) -> None:
        if self.widths is None:
            if width == self.stride:
                return
            self.widths = array(
                INT64_TYPECODE, [self.stride] * len(self.fids)
            )
        self.widths[row] = width

    def _demote(self) -> None:
        """Switch to the legacy dict representation, preserving order."""
        legacy: dict[int, FeatureStat] = {}
        for stat in self._iter_columnar_stats():
            legacy[stat.fid] = stat
        self._legacy = legacy
        self.stride = 0
        self.fids = array(INT64_TYPECODE)
        self.ts = array(INT64_TYPECODE)
        self.counts = array(INT64_TYPECODE)
        self.widths = None
        self.fid_index = None
        self._index = {}

    # ------------------------------------------------------------------
    # Merging (compaction)
    # ------------------------------------------------------------------

    def merge_from(self, other: "ColumnGroup", aggregate) -> None:
        """Fold another group into this one, source order, old semantics."""
        if other._legacy is not None:
            for stat in other._legacy.values():
                self.merge_stat(stat, aggregate)
            return
        n_rows = len(other.fids)
        for row in range(n_rows):
            base = row * other.stride
            width = other.row_width(row)
            values = other.counts[base : base + width].tolist()
            fid_index = (
                other.fid_index[row] if other.fid_index is not None else -1
            )
            self._merge_values(
                other.fids[row], values, other.ts[row], fid_index, aggregate
            )

    def merge_stat(self, stat: FeatureStat, aggregate) -> None:
        """Fold one external stat into this group (``merge_from`` unit)."""
        self._merge_values(
            stat.fid, stat.counts, stat.last_timestamp_ms, stat.fid_index,
            aggregate,
        )

    def _merge_values(self, fid, values, timestamp_ms, fid_index, aggregate):
        if self._legacy is not None:
            self._legacy_merge_values(
                fid, values, timestamp_ms, fid_index, aggregate
            )
            return
        try:
            row = self._index.get(fid) if _fits_int64(fid) else None
            if row is not None:
                # merge_counts semantics (with its int() coercion).
                self._merge_row(row, values, timestamp_ms, aggregate, coerce=True)
            else:
                if not _fits_int64(fid):
                    raise _Demote
                # New fid: a straight copy, exactly like ``stat.copy()`` —
                # values pass through without re-clamping.
                self._append_row(fid, list(values), timestamp_ms, fid_index)
        except _Demote:
            self._demote()
            self._legacy_merge_values(
                fid, values, timestamp_ms, fid_index, aggregate
            )

    def _legacy_merge_values(self, fid, values, timestamp_ms, fid_index, agg):
        assert self._legacy is not None
        existing = self._legacy.get(fid)
        if existing is None:
            self._legacy[fid] = _new_stat(
                fid, list(values), timestamp_ms, fid_index
            )
        else:
            existing.merge_counts(values, agg, timestamp_ms)

    # ------------------------------------------------------------------
    # Dict-view adapters (materialise on demand)
    # ------------------------------------------------------------------

    def _iter_columnar_stats(self) -> Iterator[FeatureStat]:
        stride = self.stride
        counts = self.counts
        widths = self.widths
        fid_index = self.fid_index
        ts = self.ts
        for row, fid in enumerate(self.fids):
            base = row * stride
            width = stride if widths is None else widths[row]
            yield _new_stat(
                fid,
                counts[base : base + width].tolist(),
                ts[row],
                fid_index[row] if fid_index is not None else -1,
            )

    def iter_stats(self) -> Iterator[FeatureStat]:
        """Yield a fresh :class:`FeatureStat` per feature, insertion order.

        In legacy mode the *live* stats are yielded (the dict is primary
        there), matching the old representation's aliasing behaviour.
        """
        if self._legacy is not None:
            yield from self._legacy.values()
        else:
            yield from self._iter_columnar_stats()

    def stats(self) -> list[FeatureStat]:
        return list(self.iter_stats())

    def as_dict(self) -> dict[int, FeatureStat]:
        """``{fid: stat}`` adapter view (materialised; do not mutate)."""
        if self._legacy is not None:
            return self._legacy
        return {stat.fid: stat for stat in self._iter_columnar_stats()}

    def get(self, fid: int) -> FeatureStat | None:
        if self._legacy is not None:
            return self._legacy.get(fid)
        row = self._index.get(fid)
        if row is None:
            return None
        base = row * self.stride
        width = self.row_width(row)
        return _new_stat(
            fid,
            self.counts[base : base + width].tolist(),
            self.ts[row],
            self.fid_index[row] if self.fid_index is not None else -1,
        )

    # ------------------------------------------------------------------
    # Bulk replacement (shrink / compaction write-back / decode)
    # ------------------------------------------------------------------

    def replace(self, stats: Iterable[FeatureStat]) -> None:
        """Rebuild the group from stats — ``{stat.fid: stat}`` semantics
        (first occurrence fixes the position, last occurrence the value)."""
        by_fid: dict[int, FeatureStat] = {}
        for stat in stats:
            by_fid[stat.fid] = stat
        self.__init__()  # reset to an empty columnar group
        ordered = list(by_fid.values())
        if not ordered:
            return
        try:
            self.stride = max(len(stat.counts) for stat in ordered)
            for stat in ordered:
                self._append_row(
                    stat.fid, stat.counts, stat.last_timestamp_ms,
                    stat.fid_index,
                )
        except _Demote:
            self.__init__()
            # Keep the caller's stat objects, like the old dict rebuild.
            self._legacy = by_fid

    @classmethod
    def from_stats(cls, stats: Iterable[FeatureStat]) -> "ColumnGroup":
        group = cls()
        group.replace(stats)
        return group

    @classmethod
    def from_columns(
        cls,
        stride: int,
        fids: array,
        ts: array,
        counts: array,
        widths: array | None,
        fid_index: array | None = None,
    ) -> "ColumnGroup":
        """Adopt pre-built columns (the zero-copy decode path).

        Raises ``ValueError`` on inconsistent shapes or duplicate fids so
        the serializer can surface corruption cleanly.
        """
        n_rows = len(fids)
        if len(ts) != n_rows or len(counts) != n_rows * stride:
            raise ValueError("column length mismatch")
        if widths is not None:
            if len(widths) != n_rows:
                raise ValueError("widths length mismatch")
            if any(w < 0 or w > stride for w in widths):
                raise ValueError("row width outside [0, stride]")
        if fid_index is not None and len(fid_index) != n_rows:
            raise ValueError("fid_index length mismatch")
        group = cls()
        group.stride = stride if n_rows else 0
        group.fids = fids
        group.ts = ts
        group.counts = counts if n_rows else array(INT64_TYPECODE)
        group.widths = widths
        group.fid_index = fid_index
        group._index = {fid: row for row, fid in enumerate(fids)}
        if len(group._index) != n_rows:
            raise ValueError("duplicate fid in column group")
        return group

    # ------------------------------------------------------------------
    # Accounting / copying
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Accounting cost: 48 B group overhead + 8 B per int64 cell.

        Computed from the *logical* shape (a ``widths`` array that has
        become all-native no longer costs anything), so two groups with
        identical contents account identically regardless of the
        mutation order that produced them.
        """
        if self._legacy is not None:
            return 48 + sum(stat.memory_bytes() for stat in self._legacy.values())
        n_rows = len(self.fids)
        total = 48 + n_rows * 8 * (2 + self.stride)
        if self.widths is not None and any(
            width != self.stride for width in self.widths
        ):
            total += 8 * n_rows
        if self.fid_index is not None and any(
            index != -1 for index in self.fid_index
        ):
            total += 8 * n_rows
        return total

    def copy(self) -> "ColumnGroup":
        duplicate = ColumnGroup()
        if self._legacy is not None:
            duplicate._legacy = {
                fid: stat.copy() for fid, stat in self._legacy.items()
            }
            return duplicate
        duplicate.stride = self.stride
        duplicate.fids = array(INT64_TYPECODE, self.fids)
        duplicate.ts = array(INT64_TYPECODE, self.ts)
        duplicate.counts = array(INT64_TYPECODE, self.counts)
        duplicate.widths = (
            array(INT64_TYPECODE, self.widths) if self.widths is not None else None
        )
        duplicate.fid_index = (
            array(INT64_TYPECODE, self.fid_index)
            if self.fid_index is not None
            else None
        )
        duplicate._index = dict(self._index)
        return duplicate

    def __repr__(self) -> str:
        mode = "legacy" if self._legacy is not None else "columnar"
        return f"ColumnGroup({mode}, rows={len(self)}, stride={self.stride})"
