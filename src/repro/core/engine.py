"""Single-node profile engine: writes, queries and maintenance in one place.

:class:`ProfileEngine` composes a :class:`~repro.core.table.ProfileTable`
with the query engine, compactor, truncation and shrinker, and implements
the write APIs of §II-B (``add_profile`` / ``add_profiles``) and the read
APIs (``get_profile_topK`` / ``get_profile_filter`` / ``get_profile_decay``).

Maintenance scheduling follows §III-D's production strategy: writes mark a
profile *maintenance-pending*; the owner (the IPS server node) drains
pending profiles off the serving path, choosing full or partial compaction
based on load.  The engine also exposes synchronous maintenance entry
points so tests and benchmarks can drive it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..clock import Clock, SystemClock
from ..config import TableConfig
from .compaction import CompactionStats, Compactor
from .decay import DecayFn, get_decay
from .profile import ProfileData
from .query import FeatureResult, FilterFn, QueryEngine, QueryStats, SortType
from .shrink import Shrinker, ShrinkStats
from .table import ProfileTable
from .timerange import TimeRange
from .truncate import TruncateStats, truncate_profile


@dataclass
class MaintenanceReport:
    """Combined result of one maintenance pass over a profile."""

    compaction: CompactionStats | None = None
    truncation: TruncateStats | None = None
    shrink: ShrinkStats | None = None


class ProfileEngine:
    """Write/read/maintain engine over one table."""

    def __init__(self, config: TableConfig, clock: Clock | None = None) -> None:
        from .kernels import get_backend

        self.table = ProfileTable(config)
        self.clock = clock if clock is not None else SystemClock()
        #: Kernel backend shared by the query engine and the compactor
        #: (``config.kernel_backend``, else env/auto — see repro.core.kernels).
        self.kernel_backend = get_backend(config.kernel_backend)
        self.query_engine = QueryEngine(
            config, self.table.aggregate, backend=self.kernel_backend
        )
        self.compactor = Compactor(
            config.time_dimension, self.table.aggregate,
            backend=self.kernel_backend,
        )
        self.shrinker = (
            Shrinker(config, config.shrink) if config.shrink is not None else None
        )
        self._maintenance_pending: set[int] = set()
        #: Profiles with at least this many slices trigger eager maintenance
        #: marking on the write path.
        self.maintenance_slice_threshold = 128
        #: Observers of profile mutations performed *by the engine itself*
        #: (maintenance rewrites, hot config reloads, direct engine
        #: writes).  Called with the profile id, or ``None`` for a
        #: whole-table change.  The node wires these to its query-result
        #: cache so maintenance invalidates precisely, whichever driver
        #: runs it (node, MaintenancePool, tests).
        self._mutation_listeners: list[Callable[[int | None], None]] = []

    def add_mutation_listener(
        self, listener: Callable[[int | None], None]
    ) -> None:
        """Register an observer of engine-driven profile mutations."""
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, profile_id: int | None) -> None:
        for listener in self._mutation_listeners:
            listener(profile_id)

    @property
    def config(self) -> TableConfig:
        return self.table.config

    # ------------------------------------------------------------------
    # Write APIs (§II-B)
    # ------------------------------------------------------------------

    def add_profile(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts: Sequence[int] | dict[str, int],
    ) -> None:
        """``add_profile``: append one feature observation."""
        profile = self.table.get_or_create(profile_id)
        profile.add(
            timestamp_ms,
            slot,
            type_id,
            fid,
            self._normalize_counts(counts),
            self.table.aggregate,
        )
        self._mark_for_maintenance(profile)
        self._notify_mutation(profile_id)

    def add_profiles(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fids: Sequence[int],
        counts_list: Sequence[Sequence[int] | dict[str, int]],
    ) -> None:
        """``add_profiles``: the batched write interface."""
        if len(fids) != len(counts_list):
            raise ValueError(
                f"fids and counts must align: {len(fids)} vs {len(counts_list)}"
            )
        profile = self.table.get_or_create(profile_id)
        for fid, counts in zip(fids, counts_list):
            profile.add(
                timestamp_ms,
                slot,
                type_id,
                fid,
                self._normalize_counts(counts),
                self.table.aggregate,
            )
        self._mark_for_maintenance(profile)
        self._notify_mutation(profile_id)

    def _normalize_counts(
        self, counts: Sequence[int] | dict[str, int]
    ) -> Sequence[int]:
        """Accept either a schema-aligned vector or an attribute mapping."""
        if isinstance(counts, dict):
            vector = [0] * self.config.num_attributes
            for attribute, value in counts.items():
                vector[self.config.attribute_index(attribute)] = int(value)
            return vector
        if len(counts) > self.config.num_attributes:
            raise ValueError(
                f"count vector of length {len(counts)} exceeds schema "
                f"({self.config.num_attributes} attributes)"
            )
        return counts

    # ------------------------------------------------------------------
    # Read APIs (§II-B)
    # ------------------------------------------------------------------

    def get_profile_topk(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        descending: bool = True,
        aggregate: str | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_topK``: top features in a window, by a sort type.

        ``sort_weights`` + ``SortType.WEIGHTED`` give the paper's
        multi-dimensional top-K; ``aggregate`` names a query-time reduce
        function (built-in or a registered UDAF) overriding the table's
        pre-configured one.
        """
        profile = self.table.get(profile_id)
        if profile is None:
            return []
        from .aggregate import get_aggregate

        return self.query_engine.top_k(
            profile,
            slot,
            type_id,
            time_range,
            sort_type,
            k,
            self.clock.now_ms(),
            sort_attribute=sort_attribute,
            sort_weights=sort_weights,
            descending=descending,
            aggregate=get_aggregate(aggregate) if aggregate is not None else None,
            stats=stats,
        )

    def get_profile_filter(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_filter``: features passing a predicate in a window."""
        profile = self.table.get(profile_id)
        if profile is None:
            return []
        return self.query_engine.filter(
            profile,
            slot,
            type_id,
            time_range,
            predicate,
            self.clock.now_ms(),
            stats=stats,
        )

    def get_profile_decay(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_decay``: time-decayed feature counts in a window."""
        profile = self.table.get(profile_id)
        if profile is None:
            return []
        decay_fn = (
            get_decay(decay_function)
            if isinstance(decay_function, str)
            else decay_function
        )
        return self.query_engine.decay(
            profile,
            slot,
            type_id,
            time_range,
            decay_fn,
            decay_factor,
            self.clock.now_ms(),
            k=k,
            sort_attribute=sort_attribute,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Batch read APIs (multi-get)
    # ------------------------------------------------------------------
    #
    # One kernel invocation covers every resident profile of a multi-get
    # (the Enhanced Batch Query Architecture pass).  Results come back as
    # ``{profile_id: results}``; ids with no resident profile map to
    # ``[]`` exactly like the single-profile calls.  Each entry is
    # byte-identical to the corresponding single call.

    def _resident(self, profile_ids: Sequence[int]):
        present: dict[int, object] = {}
        missing: list[int] = []
        for profile_id in profile_ids:
            if profile_id in present:
                continue
            profile = self.table.get(profile_id)
            if profile is None:
                missing.append(profile_id)
            else:
                present[profile_id] = profile
        return present, missing

    def get_profiles_topk(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        descending: bool = True,
        aggregate: str | None = None,
        stats_map: "dict[int, QueryStats] | None" = None,
    ) -> dict[int, list[FeatureResult]]:
        """``get_profiles_topK``: one batched kernel pass over many ids."""
        present, missing = self._resident(profile_ids)
        out: dict[int, list[FeatureResult]] = {pid: [] for pid in missing}
        if present:
            from .aggregate import get_aggregate

            ids = list(present.keys())
            stats_list = (
                [stats_map.get(pid) for pid in ids] if stats_map else None
            )
            batched = self.query_engine.top_k_batch(
                list(present.values()),
                slot,
                type_id,
                time_range,
                sort_type,
                k,
                self.clock.now_ms(),
                sort_attribute=sort_attribute,
                sort_weights=sort_weights,
                descending=descending,
                aggregate=(
                    get_aggregate(aggregate) if aggregate is not None else None
                ),
                stats_list=stats_list,
            )
            out.update(zip(ids, batched))
        return out

    def get_profiles_filter(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        stats_map: "dict[int, QueryStats] | None" = None,
    ) -> dict[int, list[FeatureResult]]:
        """``get_profiles_filter``: batched predicate reads."""
        present, missing = self._resident(profile_ids)
        out: dict[int, list[FeatureResult]] = {pid: [] for pid in missing}
        if present:
            ids = list(present.keys())
            stats_list = (
                [stats_map.get(pid) for pid in ids] if stats_map else None
            )
            batched = self.query_engine.filter_batch(
                list(present.values()),
                slot,
                type_id,
                time_range,
                predicate,
                self.clock.now_ms(),
                stats_list=stats_list,
            )
            out.update(zip(ids, batched))
        return out

    def get_profiles_decay(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        stats_map: "dict[int, QueryStats] | None" = None,
    ) -> dict[int, list[FeatureResult]]:
        """``get_profiles_decay``: batched time-decayed reads."""
        present, missing = self._resident(profile_ids)
        out: dict[int, list[FeatureResult]] = {pid: [] for pid in missing}
        if present:
            decay_fn = (
                get_decay(decay_function)
                if isinstance(decay_function, str)
                else decay_function
            )
            ids = list(present.keys())
            stats_list = (
                [stats_map.get(pid) for pid in ids] if stats_map else None
            )
            batched = self.query_engine.decay_batch(
                list(present.values()),
                slot,
                type_id,
                time_range,
                decay_fn,
                decay_factor,
                self.clock.now_ms(),
                k=k,
                sort_attribute=sort_attribute,
                stats_list=stats_list,
            )
            out.update(zip(ids, batched))
        return out

    # ------------------------------------------------------------------
    # Hot reconfiguration (§V-b)
    # ------------------------------------------------------------------

    def reload_config(
        self,
        time_dimension: "TimeDimensionConfig | None" = None,
        truncate: "TruncateConfig | None" = None,
        shrink: "ShrinkConfig | None" = None,
        clear_shrink: bool = False,
    ) -> None:
        """Apply new maintenance configuration live, without a restart.

        The paper's operational lesson (§V-b): feature teams iterate on
        compaction/truncation/shrink settings constantly, so all
        feature-dependent configuration is hot-reloadable.  Existing data
        is untouched; the next maintenance pass applies the new rules.
        Write granularity for *new* head slices follows the new finest
        band; existing slices keep their ranges until compaction.
        """
        from ..config import ShrinkConfig, TimeDimensionConfig, TruncateConfig

        config = self.table.config
        if time_dimension is not None:
            config.time_dimension = time_dimension
            self.compactor = Compactor(
                time_dimension, self.table.aggregate,
                backend=self.kernel_backend,
            )
            new_granularity = time_dimension.bands[0].granularity_ms
            self.table._write_granularity_ms = new_granularity
            for profile in self.table.profiles():
                profile.write_granularity_ms = new_granularity
        if truncate is not None:
            config.truncate = truncate
        if clear_shrink:
            config.shrink = None
            self.shrinker = None
        elif shrink is not None:
            config.shrink = shrink
            self.shrinker = Shrinker(config, shrink)
        # Everything resident is now maintenance-pending under new rules.
        for profile_id in self.table.profile_ids():
            self._maintenance_pending.add(profile_id)
        # New write granularity changes how the next writes slice, which a
        # cached result cannot anticipate — conservative table-wide drop.
        self._notify_mutation(None)

    # ------------------------------------------------------------------
    # Maintenance (§III-D)
    # ------------------------------------------------------------------

    def _mark_for_maintenance(self, profile: ProfileData) -> None:
        if profile.slice_count() >= self.maintenance_slice_threshold:
            self._maintenance_pending.add(profile.profile_id)

    def pending_maintenance(self) -> frozenset[int]:
        return frozenset(self._maintenance_pending)

    def maintain_profile(
        self,
        profile_id: int,
        full: bool = True,
        partial_budget: int = 32,
    ) -> MaintenanceReport:
        """Run compaction, truncation and shrink for one profile.

        ``full=False`` runs the cheap partial compaction (oldest
        ``partial_budget`` slices only) that production uses during peaks.
        """
        report = MaintenanceReport()
        profile = self.table.get(profile_id)
        if profile is None:
            self._maintenance_pending.discard(profile_id)
            return report
        now_ms = self.clock.now_ms()
        report.compaction = self.compactor.compact(
            profile, now_ms, partial_budget=None if full else partial_budget
        )
        report.truncation = truncate_profile(profile, self.config.truncate, now_ms)
        if self.shrinker is not None:
            report.shrink = self.shrinker.shrink(profile, now_ms)
        self._maintenance_pending.discard(profile_id)
        # Compaction re-buckets, truncation/shrink discard data: cached
        # window reads over this profile are stale either way.
        self._notify_mutation(profile_id)
        return report

    def run_maintenance(
        self,
        max_profiles: int | None = None,
        full: bool = True,
        should_stop: Callable[[], bool] | None = None,
    ) -> dict[int, MaintenanceReport]:
        """Drain the maintenance-pending set (the dedicated-pool analogue)."""
        reports: dict[int, MaintenanceReport] = {}
        pending = list(self._maintenance_pending)
        if max_profiles is not None:
            pending = pending[:max_profiles]
        for profile_id in pending:
            if should_stop is not None and should_stop():
                break
            reports[profile_id] = self.maintain_profile(profile_id, full=full)
        return reports

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def profile_count(self) -> int:
        return len(self.table)

    def memory_bytes(self) -> int:
        return self.table.memory_bytes()
