"""Slice: a snapshot of one profile's behaviour over a time interval.

A profile is a time-serial list of slices with non-overlapping, adjacent
time ranges (newest first, as in the paper's figures).  Each slice maps
slot ids to :class:`~repro.core.instance_set.InstanceSet` structures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import InvalidTimeRangeError
from .feature import FeatureStat
from .instance_set import InstanceSet


class Slice:
    """Feature behaviour within ``[start_ms, end_ms)``."""

    __slots__ = (
        "start_ms",
        "end_ms",
        "_slots",
        "_memory_dirty",
        "_memory_cache",
        "kernel_cache",
    )

    def __init__(self, start_ms: int, end_ms: int) -> None:
        if end_ms <= start_ms:
            raise InvalidTimeRangeError(
                f"slice range must be non-empty: [{start_ms}, {end_ms})"
            )
        self.start_ms = start_ms
        self.end_ms = end_ms
        self._slots: dict[int, InstanceSet] = {}
        self._memory_dirty = True
        self._memory_cache = 0
        #: Opaque per-slice scratch for kernel backends (columnar
        #: projections of the feature maps).  Derived data only — cleared
        #: on every mutation, never serialised, not counted in
        #: ``memory_bytes``.
        self.kernel_cache: dict = {}

    @property
    def duration_ms(self) -> int:
        return self.end_ms - self.start_ms

    def contains(self, timestamp_ms: int) -> bool:
        return self.start_ms <= timestamp_ms < self.end_ms

    def overlaps(self, start_ms: int, end_ms: int) -> bool:
        """Whether this slice intersects the half-open window [start, end)."""
        return self.start_ms < end_ms and start_ms < self.end_ms

    def add(
        self,
        slot: int,
        type_id: int,
        fid: int,
        counts: Sequence[int],
        timestamp_ms: int,
        aggregate,
    ) -> FeatureStat:
        """Record one write inside this slice."""
        if not self.contains(timestamp_ms):
            raise InvalidTimeRangeError(
                f"timestamp {timestamp_ms} outside slice "
                f"[{self.start_ms}, {self.end_ms})"
            )
        # Clear *before* mutating: kernel projections may hold buffer views
        # over the column arrays, and a live export would block resizing.
        self._memory_dirty = True
        if self.kernel_cache:
            self.kernel_cache.clear()
        instance_set = self._slots.setdefault(slot, InstanceSet())
        return instance_set.add(type_id, fid, counts, timestamp_ms, aggregate)

    def instance_set(self, slot: int) -> InstanceSet | None:
        return self._slots.get(slot)

    def ensure_slot(self, slot: int) -> InstanceSet:
        """Get (or create) the instance set for a slot.

        Used by kernel backends that rebuild per-type feature maps during
        columnar compaction folds; callers must ``mark_mutated()`` after
        editing the returned set.
        """
        return self._slots.setdefault(slot, InstanceSet())

    def features(self, slot: int, type_id: int | None) -> Iterator[FeatureStat]:
        """Yield stats under (slot, type); empty if the slot is absent."""
        instance_set = self._slots.get(slot)
        if instance_set is not None:
            yield from instance_set.features_for_type(type_id)

    def feature_maps(self, slot: int, type_id: int | None):
        """Bulk fid -> stat maps under (slot, type); same order as
        :meth:`features`.  Read-only adapter (stats are materialised)."""
        instance_set = self._slots.get(slot)
        if instance_set is None:
            return []
        return instance_set.feature_maps(type_id)

    def column_groups(self, slot: int, type_id: int | None):
        """The primary column groups under (slot, type) — kernel and
        serializer fast path; callers must not mutate the arrays."""
        instance_set = self._slots.get(slot)
        if instance_set is None:
            return []
        return instance_set.column_groups(type_id)

    def merge_from(self, other: "Slice", aggregate) -> None:
        """Absorb another slice's data and widen the time range to cover it."""
        self._memory_dirty = True
        if self.kernel_cache:
            self.kernel_cache.clear()
        for slot, instance_set in other._slots.items():
            mine = self._slots.setdefault(slot, InstanceSet())
            mine.merge_from(instance_set, aggregate)
        self.start_ms = min(self.start_ms, other.start_ms)
        self.end_ms = max(self.end_ms, other.end_ms)

    def mark_mutated(self) -> None:
        """Invalidate cached memory accounting and kernel projections
        after in-place edits."""
        self._memory_dirty = True
        if self.kernel_cache:
            self.kernel_cache.clear()

    @property
    def slot_ids(self) -> tuple[int, ...]:
        return tuple(self._slots.keys())

    def slots_items(self) -> Iterator[tuple[int, InstanceSet]]:
        return iter(self._slots.items())

    def drop_empty_slots(self) -> None:
        empty = [slot for slot, inst in self._slots.items() if inst.is_empty()]
        for slot in empty:
            del self._slots[slot]
        if empty:
            self._memory_dirty = True
            if self.kernel_cache:
                self.kernel_cache.clear()

    def feature_count(self) -> int:
        return sum(inst.feature_count() for inst in self._slots.values())

    def is_empty(self) -> bool:
        return all(inst.is_empty() for inst in self._slots.values())

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint, cached between mutations."""
        if self._memory_dirty:
            total = 64
            for instance_set in self._slots.values():
                total += instance_set.memory_bytes()
            self._memory_cache = total
            self._memory_dirty = False
        return self._memory_cache

    def copy(self) -> "Slice":
        duplicate = Slice(self.start_ms, self.end_ms)
        for slot, instance_set in self._slots.items():
            duplicate._slots[slot] = instance_set.copy()
        return duplicate

    def __repr__(self) -> str:
        return (
            f"Slice([{self.start_ms}, {self.end_ms}), "
            f"slots={len(self._slots)}, features={self.feature_count()})"
        )
