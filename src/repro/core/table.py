"""Profile Table: the per-table map of profile id to profile data.

The basic structure is an unordered map keyed by the 64-bit profile id
(Fig. 6).  The table owns its configuration (attribute schema, aggregate,
time dimension, truncate/shrink policies) and hands out
:class:`~repro.core.profile.ProfileData` instances; the cache layer above
decides which profiles are resident.
"""

from __future__ import annotations

from typing import Iterator

from ..config import TableConfig
from ..errors import ProfileNotFoundError
from .aggregate import AggregateFn, get_aggregate
from .profile import ProfileData

UINT64_MASK = 2**64 - 1


def check_profile_id(profile_id: int) -> int:
    """Validate a 64-bit unsigned profile id."""
    if not 0 <= profile_id <= UINT64_MASK:
        raise ValueError(f"profile id out of uint64 range: {profile_id}")
    return profile_id


class ProfileTable:
    """Map of profile id -> :class:`ProfileData` plus the table config."""

    def __init__(self, config: TableConfig) -> None:
        self.config = config
        self.aggregate: AggregateFn = get_aggregate(config.aggregate)
        self._profiles: dict[int, ProfileData] = {}
        self._write_granularity_ms = config.time_dimension.bands[0].granularity_ms

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.config.name

    def get(self, profile_id: int) -> ProfileData | None:
        """Fetch a profile, or ``None`` if not resident in this table."""
        return self._profiles.get(check_profile_id(profile_id))

    def get_or_raise(self, profile_id: int) -> ProfileData:
        profile = self.get(profile_id)
        if profile is None:
            raise ProfileNotFoundError(profile_id)
        return profile

    def get_or_create(self, profile_id: int) -> ProfileData:
        profile_id = check_profile_id(profile_id)
        profile = self._profiles.get(profile_id)
        if profile is None:
            profile = ProfileData(profile_id, self._write_granularity_ms)
            self._profiles[profile_id] = profile
        return profile

    def put(self, profile: ProfileData) -> None:
        """Install a profile object wholesale (cache loads, merges)."""
        check_profile_id(profile.profile_id)
        self._profiles[profile.profile_id] = profile

    def evict(self, profile_id: int) -> ProfileData | None:
        """Remove a profile from residency and return it (cache swap-out)."""
        return self._profiles.pop(check_profile_id(profile_id), None)

    def __contains__(self, profile_id: int) -> bool:
        return check_profile_id(profile_id) in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def profile_ids(self) -> Iterator[int]:
        return iter(self._profiles.keys())

    def profiles(self) -> Iterator[ProfileData]:
        return iter(self._profiles.values())

    def memory_bytes(self) -> int:
        return sum(profile.memory_bytes() for profile in self._profiles.values())

    def __repr__(self) -> str:
        return f"ProfileTable(name={self.name!r}, profiles={len(self._profiles)})"
