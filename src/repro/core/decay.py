"""Decay functions for ``get_profile_decay`` queries.

A decay function maps the *age* of a slice (how long before the query
window's end its data was recorded) to a multiplicative weight in
``[0, 1]``, letting applications favour recent behaviour over old
behaviour (§II-B).  The ``decay_factor`` parameterises each family.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import ConfigError

#: ``fn(age_ms, decay_factor) -> weight``
DecayFn = Callable[[int, float], float]


def exponential_decay(age_ms: int, half_life_ms: float) -> float:
    """Half the weight every ``half_life_ms`` of age."""
    if half_life_ms <= 0:
        raise ConfigError(f"half life must be positive, got {half_life_ms}")
    if age_ms <= 0:
        return 1.0
    return math.pow(0.5, age_ms / half_life_ms)


def linear_decay(age_ms: int, horizon_ms: float) -> float:
    """Weight falls linearly from 1 at age 0 to 0 at ``horizon_ms``."""
    if horizon_ms <= 0:
        raise ConfigError(f"horizon must be positive, got {horizon_ms}")
    if age_ms <= 0:
        return 1.0
    if age_ms >= horizon_ms:
        return 0.0
    return 1.0 - age_ms / horizon_ms

def step_decay(age_ms: int, cutoff_ms: float) -> float:
    """Full weight up to ``cutoff_ms`` of age, zero beyond it."""
    if cutoff_ms <= 0:
        raise ConfigError(f"cutoff must be positive, got {cutoff_ms}")
    return 1.0 if age_ms < cutoff_ms else 0.0


DECAYS: dict[str, DecayFn] = {
    "exponential": exponential_decay,
    "linear": linear_decay,
    "step": step_decay,
}


def get_decay(name: str) -> DecayFn:
    """Look up a decay function by name (case-insensitive)."""
    try:
        return DECAYS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown decay function {name!r}; available: {sorted(DECAYS)}"
        ) from None
