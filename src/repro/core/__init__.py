"""Core data model and query engine of IPS.

This package implements the paper's primary contribution: the time-serial
multi-level hash map data model (§II, §III-B), the top-K / filter / decay
query processing (§II-B), and the compact / truncate / shrink maintenance
mechanisms (§III-D).
"""

from .aggregate import AGGREGATES, AggregateFn, get_aggregate
from .compaction import CompactionStats, Compactor
from .decay import DECAYS, DecayFn, exponential_decay, get_decay, linear_decay, step_decay
from .engine import ProfileEngine
from .feature import FeatureStat
from .instance_set import InstanceSet
from .profile import ProfileData
from .query import FeatureResult, QueryEngine, SortType
from .slice import Slice
from .shrink import Shrinker, ShrinkStats
from .table import ProfileTable
from .timerange import TimeRange, TimeRangeKind
from .truncate import TruncateStats, truncate_by_age, truncate_by_count, truncate_profile

__all__ = [
    "AGGREGATES",
    "AggregateFn",
    "CompactionStats",
    "Compactor",
    "DECAYS",
    "DecayFn",
    "FeatureResult",
    "FeatureStat",
    "InstanceSet",
    "ProfileData",
    "ProfileEngine",
    "ProfileTable",
    "QueryEngine",
    "Shrinker",
    "ShrinkStats",
    "Slice",
    "SortType",
    "TimeRange",
    "TimeRangeKind",
    "TruncateStats",
    "exponential_decay",
    "get_aggregate",
    "get_decay",
    "linear_decay",
    "step_decay",
    "truncate_by_age",
    "truncate_by_count",
    "truncate_profile",
]
