"""Feature statistics: the leaves of the IPS data model.

The paper's *Indexed Feature Stat* associates a feature id with a vector of
int64 action counts (likes, comments, shares, ...) plus an ``fid_index``
that tracks the feature's position in the user's full feature list to speed
up multi-way merging.  :class:`FeatureStat` is the Python equivalent; count
vectors are plain lists aligned to the owning table's attribute schema.
"""

from __future__ import annotations

from typing import Iterable, Sequence

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)


def clamp_int64(value: int) -> int:
    """Clamp a count into the int64 range the paper's C++ structs use."""
    if value > INT64_MAX:
        return INT64_MAX
    if value < INT64_MIN:
        return INT64_MIN
    return value


class FeatureStat:
    """Count vector and bookkeeping for one feature id.

    Attributes:
        fid: the 64-bit feature id (hashed literal in production).
        counts: mutable list of int64 counters aligned to the table schema.
        last_timestamp_ms: timestamp of the most recent contributing action,
            used by RELATIVE time ranges, timestamp sorting and the shrink
            freshness boost.
        fid_index: index of this feature in the profile-wide feature list;
            maintained by the engine to accelerate multi-way merges.
    """

    __slots__ = ("fid", "counts", "last_timestamp_ms", "fid_index")

    def __init__(
        self,
        fid: int,
        counts: Sequence[int],
        last_timestamp_ms: int = 0,
        fid_index: int = -1,
    ) -> None:
        self.fid = fid
        self.counts = [clamp_int64(int(count)) for count in counts]
        self.last_timestamp_ms = last_timestamp_ms
        self.fid_index = fid_index

    def copy(self) -> "FeatureStat":
        return FeatureStat(
            self.fid, list(self.counts), self.last_timestamp_ms, self.fid_index
        )

    def merge_counts(
        self, other_counts: Sequence[int], aggregate, other_timestamp_ms: int
    ) -> None:
        """Fold another count vector into this one with an aggregate function.

        Vectors of different lengths (after a schema change) are implicitly
        zero-padded to the longer length and aggregated positionwise — the
        same "missing positions read as zero" rule that :meth:`count_at`
        applies on reads.  Under SUM this matches the historical
        keep-the-tail behaviour; under MIN/MAX/LAST the absent side now
        participates as an explicit zero instead of being silently skipped.
        The merged vector always has ``max(len(self), len(other))`` entries.
        """
        overlap = min(len(self.counts), len(other_counts))
        for index in range(overlap):
            self.counts[index] = clamp_int64(
                aggregate(self.counts[index], int(other_counts[index]))
            )
        if len(other_counts) > len(self.counts):
            self.counts.extend(
                clamp_int64(aggregate(0, int(count)))
                for count in other_counts[overlap:]
            )
        elif len(self.counts) > overlap:
            for index in range(overlap, len(self.counts)):
                self.counts[index] = clamp_int64(
                    aggregate(self.counts[index], 0)
                )
        if other_timestamp_ms > self.last_timestamp_ms:
            self.last_timestamp_ms = other_timestamp_ms

    def count_at(self, attribute_index: int) -> int:
        """Counter at a schema position; missing positions read as zero."""
        if 0 <= attribute_index < len(self.counts):
            return self.counts[attribute_index]
        return 0

    def scaled(self, factor: float) -> "FeatureStat":
        """Return a copy with every counter multiplied by ``factor``.

        Used by decay queries; results round toward zero like the C++
        implementation's integer truncation.
        """
        scaled_counts = [clamp_int64(int(count * factor)) for count in self.counts]
        return FeatureStat(
            self.fid, scaled_counts, self.last_timestamp_ms, self.fid_index
        )

    def total(self) -> int:
        return sum(self.counts)

    def memory_bytes(self) -> int:
        """Rough accounting cost used by the cache layer (8 B per counter)."""
        return 32 + 8 * len(self.counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureStat):
            return NotImplemented
        return (
            self.fid == other.fid
            and self.counts == other.counts
            and self.last_timestamp_ms == other.last_timestamp_ms
        )

    def __repr__(self) -> str:
        return (
            f"FeatureStat(fid={self.fid}, counts={self.counts}, "
            f"last_ts={self.last_timestamp_ms})"
        )


def merge_feature_stats(
    stats: Iterable[FeatureStat], aggregate
) -> dict[int, FeatureStat]:
    """Multi-way merge of feature stats keyed by fid.

    This is the inner loop of both query aggregation and slice compaction:
    stats for the same fid are folded together with the table's aggregate
    function, stats for distinct fids pass through as copies.
    """
    merged: dict[int, FeatureStat] = {}
    for stat in stats:
        existing = merged.get(stat.fid)
        if existing is None:
            merged[stat.fid] = stat.copy()
        else:
            existing.merge_counts(stat.counts, aggregate, stat.last_timestamp_ms)
    return merged
