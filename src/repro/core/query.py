"""Query processing: top-K, filter and decay reads over a profile.

Query execution follows the two steps described in §II-B:

1. locate the slices overlapping the resolved time window;
2. multi-way merge and aggregate all feature counts under the requested
   ``(slot, type)``, optionally applying a decay weight per slice, then sort
   (by an attribute count, timestamp or feature id) and cut to top K.

The merge, decay scaling and top-K cut are the hot path.  They live behind
the pluggable kernel layer in :mod:`repro.core.kernels`: the ``python``
reference backend folds per-slice hash maps one stat at a time and cuts
with ``heapq``; the ``numpy`` backend runs the same three loops column-wise
over flat int64 arrays.  Both produce byte-identical results (enforced by
the differential oracle in ``tests/test_kernel_oracle.py``); this module
owns validation, window resolution and sort-spec building only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, NamedTuple, Sequence

from ..config import TableConfig
from ..errors import InvalidQueryError
from .aggregate import AggregateFn
from .decay import DECAYS, DecayFn
from .feature import FeatureStat, clamp_int64
from .profile import ProfileData
from .timerange import ResolvedWindow, TimeRange


class SortType(enum.Enum):
    """How query results are ordered before the top-K cut."""

    ATTRIBUTE = "attribute"  # by one action counter, e.g. likes
    TIMESTAMP = "timestamp"  # by most recent contributing action
    FEATURE_ID = "feature_id"  # by fid (stable, for pagination/debugging)
    TOTAL = "total"  # by the sum of all counters
    WEIGHTED = "weighted"  # by a weighted sum over attributes (multi-dim)


class FeatureResult(NamedTuple):
    """One row of a query result.

    A ``NamedTuple`` rather than a frozen dataclass: result
    materialisation builds one of these per returned row on the hot
    read path, and tuple construction is several times cheaper than
    ``__init__`` + per-field ``object.__setattr__``.  Field order is
    part of the wire contract (:mod:`repro.net.wire` encodes/decodes
    positionally).
    """

    fid: int
    counts: tuple[int, ...]
    last_timestamp_ms: int

    def count(self, index: int) -> int:
        if 0 <= index < len(self.counts):
            return self.counts[index]
        return 0

    def total(self) -> int:
        return sum(self.counts)


@dataclass
class QueryStats:
    """Execution statistics used by benchmarks and the simulator calibration."""

    slices_scanned: int = 0
    features_merged: int = 0
    results_returned: int = 0


#: Predicate over a merged stat used by ``get_profile_filter``.
FilterFn = Callable[[FeatureStat], bool]


# ----------------------------------------------------------------------
# Canonical query fingerprints (result-cache keys)
# ----------------------------------------------------------------------


def cacheable_filter(key):
    """Mark a filter predicate as cacheable under a stable ``key``.

    Filter predicates are opaque callables, so by default a filter query
    has no fingerprint and bypasses the server-side result cache.  A
    predicate whose identity *is* stable (e.g. "total >= 5") can opt in::

        @cacheable_filter(("total_at_least", 5))
        def popular(stat):
            return sum(stat.counts) >= 5

    ``key`` must be hashable and must uniquely determine the predicate's
    behaviour — two predicates sharing a key share cached results.
    """

    def mark(fn: FilterFn) -> FilterFn:
        fn.cache_key = ("filter_fn", key)  # type: ignore[attr-defined]
        return fn

    return mark


def canonical_sort_weights(
    config: TableConfig, sort_weights: dict[str, float]
) -> tuple[tuple[int, float], ...]:
    """Normalize a WEIGHTED sort's weight mapping to a canonical tuple.

    Attribute names resolve to schema indices, zero weights are dropped
    (they contribute exactly zero to every score) and the remaining
    pairs are sorted by index — so ``{"share": 3, "like": 1}`` and
    ``{"like": 1, "share": 3, "comment": 0}`` describe the same sort.
    Weight values keep their numeric type (int weights stay exact in the
    kernels; ``1 == 1.0`` already hashes identically for key sharing).
    An all-zero mapping keeps its (sorted) entries rather than becoming
    empty, which would look like a missing-weights validation error.
    """
    items = sorted(
        (config.attribute_index(name), weight)
        for name, weight in sort_weights.items()
    )
    nonzero = tuple(pair for pair in items if pair[1] != 0)
    return nonzero if nonzero else tuple(items)


def _decay_name(decay_function: "str | DecayFn") -> str | None:
    """Canonical registry name for a decay function, or None if opaque."""
    if isinstance(decay_function, str):
        name = decay_function.lower()
        return name if name in DECAYS else None
    for name, fn in DECAYS.items():
        if fn is decay_function:
            return name
    return None


def query_fingerprint(
    config: TableConfig,
    method: str,
    slot: int,
    type_id: int | None,
    window: ResolvedWindow,
    sort_type: SortType | None = None,
    k: int | None = None,
    sort_attribute: str | None = None,
    sort_weights: dict[str, float] | None = None,
    aggregate: str | None = None,
    decay_function: "str | DecayFn | None" = None,
    decay_factor: float | None = None,
    predicate: FilterFn | None = None,
) -> tuple | None:
    """Canonical cache key for one read, or ``None`` when uncacheable.

    Semantically identical queries must share a fingerprint, and queries
    that can return different bytes must not.  The normalization rules:

    * the time range is keyed by its *resolved* half-open window, so a
      CURRENT range naturally changes key as the clock advances and an
      ABSOLUTE range spelling out the same instants matches it;
    * ``aggregate=None`` collapses to the table's configured aggregate
      name (an explicit ``"sum"`` on a sum table is the default spelled
      out), and names are case-insensitive like the registry;
    * ``sort_attribute`` only participates for ``SortType.ATTRIBUTE``
      (other sorts ignore it) and is resolved to its schema index;
      a decay query's empty-string attribute means "sort by total",
      exactly like ``None``;
    * ``sort_weights`` only participate for ``SortType.WEIGHTED`` and
      are canonicalized by :func:`canonical_sort_weights`;
    * a decay function is keyed by registry name whether passed as a
      string or as the registered callable; unregistered callables are
      opaque, hence uncacheable;
    * filter predicates are uncacheable unless marked with
      :func:`cacheable_filter`.

    Invalid queries (unknown attribute, bad k) return ``None`` so the
    caller executes them directly and raises the real validation error.
    """
    try:
        base = (method, slot, type_id, window.start_ms, window.end_ms)
        if method == "topk":
            if sort_type is None or k is None or int(k) < 1:
                return None
            agg = (aggregate if aggregate is not None else config.aggregate)
            sort_part: tuple
            if sort_type is SortType.ATTRIBUTE:
                if sort_attribute is None:
                    return None
                sort_part = ("attr", config.attribute_index(sort_attribute))
            elif sort_type is SortType.WEIGHTED:
                if not sort_weights:
                    return None
                sort_part = ("weights", canonical_sort_weights(config, sort_weights))
            else:
                sort_part = (sort_type.value,)
            return base + (int(k), agg.lower(), sort_part)
        if method == "decay":
            if decay_function is None or decay_factor is None:
                return None
            name = _decay_name(decay_function)
            if name is None:
                return None
            attr = (
                config.attribute_index(sort_attribute) if sort_attribute else None
            )
            cut = int(k) if k is not None else None
            if cut is not None and cut < 1:
                return None
            return base + (name, float(decay_factor), cut, attr)
        if method == "filter":
            key = getattr(predicate, "cache_key", None)
            if key is None:
                return None
            hash(key)  # Unhashable opt-in keys degrade to uncacheable.
            return base + (key,)
        return None
    except Exception:
        return None


class QueryEngine:
    """Stateless query executor bound to one table's configuration.

    ``backend`` picks the kernel implementation (a name, a
    :class:`~repro.core.kernels.KernelBackend` instance, or ``None`` to
    follow ``config.kernel_backend`` / the ``IPS_KERNEL_BACKEND``
    environment variable / auto-detection).
    """

    def __init__(
        self,
        config: TableConfig,
        aggregate: AggregateFn,
        backend=None,
    ) -> None:
        from .kernels import get_backend

        self._config = config
        self._aggregate = aggregate
        if backend is None:
            backend = getattr(config, "kernel_backend", None)
        self._backend = get_backend(backend)

    @property
    def backend(self):
        """The active kernel backend (shared with the compactor)."""
        return self._backend

    # ------------------------------------------------------------------
    # Public query entry points
    # ------------------------------------------------------------------

    def top_k(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType,
        k: int,
        now_ms: int,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        descending: bool = True,
        aggregate: AggregateFn | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_topK``: merge, sort by ``sort_type`` and cut to K.

        ``sort_weights`` drives ``SortType.WEIGHTED`` — the paper's
        multi-dimensional top-K, ranking by a weighted sum of action
        counters (e.g. ``{"share": 3, "like": 1}``).  ``aggregate``
        overrides the table's pre-configured reduce function for this
        query only (a query-time UDAF).
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        spec = self._resolve_sort_spec(sort_type, sort_attribute, sort_weights)
        window = time_range.resolve(now_ms, profile.newest_timestamp_ms())
        if window is None:
            return self._empty(stats)
        reduce_fn = aggregate if aggregate is not None else self._aggregate
        return self._backend.run_topk(
            profile, slot, type_id, window, reduce_fn, spec, k,
            descending, stats,
        )

    def filter(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        now_ms: int,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_filter``: merge then keep stats passing ``predicate``.

        Results are returned in descending total-count order so callers get a
        deterministic, relevance-flavoured ordering.
        """
        window = time_range.resolve(now_ms, profile.newest_timestamp_ms())
        if window is None:
            return self._empty(stats)
        return self._backend.run_filter(
            profile, slot, type_id, window, self._aggregate, predicate, stats
        )

    def decay(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_fn: DecayFn,
        decay_factor: float,
        now_ms: int,
        k: int | None = None,
        sort_attribute: str | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_decay``: merge with per-slice decay weights.

        Each slice's counts are scaled by ``decay_fn(age, decay_factor)``
        where age is measured from the slice midpoint to the window end, then
        merged as usual.  An optional top-K cut applies afterwards.
        """
        if k is not None and k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        spec = self._resolve_sort_spec(
            SortType.ATTRIBUTE if sort_attribute else SortType.TOTAL,
            sort_attribute,
            None,
        )
        window = time_range.resolve(now_ms, profile.newest_timestamp_ms())
        if window is None:
            return self._empty(stats)
        return self._backend.run_decay(
            profile, slot, type_id, window, self._aggregate,
            decay_fn, decay_factor, spec, k, stats,
        )

    # ------------------------------------------------------------------
    # Batch entry points (multi-get)
    # ------------------------------------------------------------------
    #
    # Validation and sort-spec resolution happen once per batch; window
    # resolution is per profile (CURRENT ranges anchor to each profile's
    # newest timestamp).  Results are parallel to ``profiles`` and each
    # list is byte-identical to the corresponding single-profile call —
    # the batch differential oracle enforces this.

    def top_k_batch(
        self,
        profiles: Sequence[ProfileData],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType,
        k: int,
        now_ms: int,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        descending: bool = True,
        aggregate: AggregateFn | None = None,
        stats_list: "Sequence[QueryStats | None] | None" = None,
    ) -> list[list[FeatureResult]]:
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        spec = self._resolve_sort_spec(sort_type, sort_attribute, sort_weights)
        windows = [
            time_range.resolve(now_ms, profile.newest_timestamp_ms())
            for profile in profiles
        ]
        reduce_fn = aggregate if aggregate is not None else self._aggregate
        if stats_list is None:
            stats_list = [None] * len(profiles)
        return self._backend.run_topk_batch(
            list(profiles), slot, type_id, windows, reduce_fn, spec, k,
            descending, list(stats_list),
        )

    def filter_batch(
        self,
        profiles: Sequence[ProfileData],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        now_ms: int,
        stats_list: "Sequence[QueryStats | None] | None" = None,
    ) -> list[list[FeatureResult]]:
        windows = [
            time_range.resolve(now_ms, profile.newest_timestamp_ms())
            for profile in profiles
        ]
        if stats_list is None:
            stats_list = [None] * len(profiles)
        return self._backend.run_filter_batch(
            list(profiles), slot, type_id, windows, self._aggregate,
            predicate, list(stats_list),
        )

    def decay_batch(
        self,
        profiles: Sequence[ProfileData],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_fn: DecayFn,
        decay_factor: float,
        now_ms: int,
        k: int | None = None,
        sort_attribute: str | None = None,
        stats_list: "Sequence[QueryStats | None] | None" = None,
    ) -> list[list[FeatureResult]]:
        if k is not None and k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        spec = self._resolve_sort_spec(
            SortType.ATTRIBUTE if sort_attribute else SortType.TOTAL,
            sort_attribute,
            None,
        )
        windows = [
            time_range.resolve(now_ms, profile.newest_timestamp_ms())
            for profile in profiles
        ]
        if stats_list is None:
            stats_list = [None] * len(profiles)
        return self._backend.run_decay_batch(
            list(profiles), slot, type_id, windows, self._aggregate,
            decay_fn, decay_factor, spec, k, list(stats_list),
        )

    # ------------------------------------------------------------------
    # Sort-spec resolution
    # ------------------------------------------------------------------

    def _resolve_sort_spec(
        self,
        sort_type: SortType,
        sort_attribute: str | None,
        sort_weights: dict[str, float] | None = None,
    ):
        """Validate sort arguments and resolve attribute names to indices."""
        from .kernels import SortSpec

        if sort_type is SortType.ATTRIBUTE:
            if sort_attribute is None:
                raise InvalidQueryError(
                    "sort_type=ATTRIBUTE requires a sort_attribute"
                )
            return SortSpec(
                sort_type=sort_type,
                attribute_index=self._config.attribute_index(sort_attribute),
            )
        if sort_type in (SortType.TIMESTAMP, SortType.FEATURE_ID, SortType.TOTAL):
            return SortSpec(sort_type=sort_type)
        if sort_type is SortType.WEIGHTED:
            if not sort_weights:
                raise InvalidQueryError(
                    "sort_type=WEIGHTED requires non-empty sort_weights"
                )
            # Canonical order (and zero-weight dropping) makes reordered
            # weight mappings sum in the same float order, so semantically
            # identical queries are bit-identical — required for them to
            # share a result-cache entry.
            return SortSpec(
                sort_type=sort_type,
                weight_vector=canonical_sort_weights(self._config, sort_weights),
            )
        raise InvalidQueryError(f"unsupported sort type: {sort_type!r}")

    # ------------------------------------------------------------------
    # Materialisation helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _empty(stats: QueryStats | None) -> list[FeatureResult]:
        if stats is not None:
            stats.results_returned = 0
        return []

    @staticmethod
    def _finalize(
        ranked: Sequence[FeatureStat], stats: QueryStats | None
    ) -> list[FeatureResult]:
        """Materialise merged stats into results (kept for compatibility)."""
        if stats is not None:
            stats.results_returned = len(ranked)
        return [
            FeatureResult(
                fid=stat.fid,
                counts=tuple(clamp_int64(c) for c in stat.counts),
                last_timestamp_ms=stat.last_timestamp_ms,
            )
            for stat in ranked
        ]
