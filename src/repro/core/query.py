"""Query processing: top-K, filter and decay reads over a profile.

Query execution follows the two steps described in §II-B:

1. locate the slices overlapping the resolved time window;
2. multi-way merge and aggregate all feature counts under the requested
   ``(slot, type)``, optionally applying a decay weight per slice, then sort
   (by an attribute count, timestamp or feature id) and cut to top K.

The merge is the hot path: it works directly on the per-slice hash maps and
uses :func:`heapq.nlargest`/``nsmallest`` for the final cut so a top-K over
thousands of long-tail features does not pay a full sort.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import TableConfig
from ..errors import InvalidQueryError
from .aggregate import AggregateFn
from .decay import DecayFn
from .feature import FeatureStat, clamp_int64
from .profile import ProfileData
from .timerange import TimeRange


class SortType(enum.Enum):
    """How query results are ordered before the top-K cut."""

    ATTRIBUTE = "attribute"  # by one action counter, e.g. likes
    TIMESTAMP = "timestamp"  # by most recent contributing action
    FEATURE_ID = "feature_id"  # by fid (stable, for pagination/debugging)
    TOTAL = "total"  # by the sum of all counters
    WEIGHTED = "weighted"  # by a weighted sum over attributes (multi-dim)


@dataclass(frozen=True)
class FeatureResult:
    """One row of a query result."""

    fid: int
    counts: tuple[int, ...]
    last_timestamp_ms: int

    def count(self, index: int) -> int:
        if 0 <= index < len(self.counts):
            return self.counts[index]
        return 0

    def total(self) -> int:
        return sum(self.counts)


@dataclass
class QueryStats:
    """Execution statistics used by benchmarks and the simulator calibration."""

    slices_scanned: int = 0
    features_merged: int = 0
    results_returned: int = 0


#: Predicate over a merged stat used by ``get_profile_filter``.
FilterFn = Callable[[FeatureStat], bool]


class QueryEngine:
    """Stateless query executor bound to one table's configuration."""

    def __init__(self, config: TableConfig, aggregate: AggregateFn) -> None:
        self._config = config
        self._aggregate = aggregate

    # ------------------------------------------------------------------
    # Public query entry points
    # ------------------------------------------------------------------

    def top_k(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType,
        k: int,
        now_ms: int,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        descending: bool = True,
        aggregate: AggregateFn | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_topK``: merge, sort by ``sort_type`` and cut to K.

        ``sort_weights`` drives ``SortType.WEIGHTED`` — the paper's
        multi-dimensional top-K, ranking by a weighted sum of action
        counters (e.g. ``{"share": 3, "like": 1}``).  ``aggregate``
        overrides the table's pre-configured reduce function for this
        query only (a query-time UDAF).
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        merged = self._merge_window(
            profile, slot, type_id, time_range, now_ms,
            decay=None, aggregate=aggregate, stats=stats,
        )
        key = self._sort_key(sort_type, sort_attribute, sort_weights)
        select = heapq.nlargest if descending else heapq.nsmallest
        top = select(k, merged.values(), key=key)
        return self._finalize(top, stats)

    def filter(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        now_ms: int,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_filter``: merge then keep stats passing ``predicate``.

        Results are returned in descending total-count order so callers get a
        deterministic, relevance-flavoured ordering.
        """
        merged = self._merge_window(
            profile, slot, type_id, time_range, now_ms, decay=None, stats=stats
        )
        kept = [stat for stat in merged.values() if predicate(stat)]
        kept.sort(key=lambda stat: (stat.total(), stat.fid), reverse=True)
        return self._finalize(kept, stats)

    def decay(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_fn: DecayFn,
        decay_factor: float,
        now_ms: int,
        k: int | None = None,
        sort_attribute: str | None = None,
        stats: QueryStats | None = None,
    ) -> list[FeatureResult]:
        """``get_profile_decay``: merge with per-slice decay weights.

        Each slice's counts are scaled by ``decay_fn(age, decay_factor)``
        where age is measured from the slice midpoint to the window end, then
        merged as usual.  An optional top-K cut applies afterwards.
        """
        merged = self._merge_window(
            profile,
            slot,
            type_id,
            time_range,
            now_ms,
            decay=(decay_fn, decay_factor),
            stats=stats,
        )
        key = self._sort_key(
            SortType.ATTRIBUTE if sort_attribute else SortType.TOTAL,
            sort_attribute,
        )
        if k is not None:
            if k <= 0:
                raise InvalidQueryError(f"k must be positive, got {k}")
            ranked = heapq.nlargest(k, merged.values(), key=key)
        else:
            ranked = sorted(merged.values(), key=key, reverse=True)
        return self._finalize(ranked, stats)

    # ------------------------------------------------------------------
    # Merge core
    # ------------------------------------------------------------------

    def _merge_window(
        self,
        profile: ProfileData,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        now_ms: int,
        decay: tuple[DecayFn, float] | None,
        aggregate: AggregateFn | None = None,
        stats: QueryStats | None = None,
    ) -> dict[int, FeatureStat]:
        reduce_fn = aggregate if aggregate is not None else self._aggregate
        window = time_range.resolve(now_ms, profile.newest_timestamp_ms())
        if window is None:
            return {}
        merged: dict[int, FeatureStat] = {}
        for profile_slice in profile.slices_in_window(
            window.start_ms, window.end_ms
        ):
            if stats is not None:
                stats.slices_scanned += 1
            weight = 1.0
            if decay is not None:
                decay_fn, factor = decay
                midpoint = (profile_slice.start_ms + profile_slice.end_ms) // 2
                age_ms = max(0, window.end_ms - midpoint)
                weight = decay_fn(age_ms, factor)
                if weight <= 0.0:
                    continue
            for stat in profile_slice.features(slot, type_id):
                if stats is not None:
                    stats.features_merged += 1
                contribution = stat if weight == 1.0 else stat.scaled(weight)
                existing = merged.get(stat.fid)
                if existing is None:
                    merged[stat.fid] = contribution.copy()
                else:
                    existing.merge_counts(
                        contribution.counts,
                        reduce_fn,
                        contribution.last_timestamp_ms,
                    )
        return merged

    # ------------------------------------------------------------------
    # Sorting / materialisation
    # ------------------------------------------------------------------

    def _sort_key(
        self,
        sort_type: SortType,
        sort_attribute: str | None,
        sort_weights: dict[str, float] | None = None,
    ) -> Callable[[FeatureStat], tuple]:
        if sort_type is SortType.ATTRIBUTE:
            if sort_attribute is None:
                raise InvalidQueryError(
                    "sort_type=ATTRIBUTE requires a sort_attribute"
                )
            index = self._config.attribute_index(sort_attribute)
            return lambda stat: (stat.count_at(index), stat.last_timestamp_ms, -stat.fid)
        if sort_type is SortType.TIMESTAMP:
            return lambda stat: (stat.last_timestamp_ms, stat.total(), -stat.fid)
        if sort_type is SortType.FEATURE_ID:
            return lambda stat: (stat.fid,)
        if sort_type is SortType.TOTAL:
            return lambda stat: (stat.total(), stat.last_timestamp_ms, -stat.fid)
        if sort_type is SortType.WEIGHTED:
            if not sort_weights:
                raise InvalidQueryError(
                    "sort_type=WEIGHTED requires non-empty sort_weights"
                )
            weight_vector = [
                (self._config.attribute_index(name), weight)
                for name, weight in sort_weights.items()
            ]
            return lambda stat: (
                sum(stat.count_at(index) * weight for index, weight in weight_vector),
                stat.last_timestamp_ms,
                -stat.fid,
            )
        raise InvalidQueryError(f"unsupported sort type: {sort_type!r}")

    @staticmethod
    def _finalize(
        ranked: Sequence[FeatureStat], stats: QueryStats | None
    ) -> list[FeatureResult]:
        if stats is not None:
            stats.results_returned = len(ranked)
        return [
            FeatureResult(
                fid=stat.fid,
                counts=tuple(clamp_int64(c) for c in stat.counts),
                last_timestamp_ms=stat.last_timestamp_ms,
            )
            for stat in ranked
        ]
