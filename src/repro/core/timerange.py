"""Time-range specifications for read APIs.

The paper supports three kinds of time range (§II-B):

* **CURRENT** — a window of a given span ending *now*.
* **RELATIVE** — a window of a given span ending at the profile's most
  recent action (so a dormant user's last activity still anchors it).
* **ABSOLUTE** — an arbitrary historical ``[start, end)`` window.

A :class:`TimeRange` is resolved into a concrete half-open window against a
clock reading and the profile's newest timestamp.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import InvalidTimeRangeError


class TimeRangeKind(enum.Enum):
    CURRENT = "current"
    RELATIVE = "relative"
    ABSOLUTE = "absolute"


@dataclass(frozen=True)
class ResolvedWindow:
    """A concrete half-open window ``[start_ms, end_ms)``."""

    start_ms: int
    end_ms: int

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise InvalidTimeRangeError(
                f"empty window: [{self.start_ms}, {self.end_ms})"
            )

    @property
    def span_ms(self) -> int:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class TimeRange:
    """User-facing time-range specification.

    Build one with the :meth:`current`, :meth:`relative` or :meth:`absolute`
    constructors rather than the raw dataclass fields.
    """

    kind: TimeRangeKind
    span_ms: int | None = None
    start_ms: int | None = None
    end_ms: int | None = None

    @classmethod
    def current(cls, span_ms: int) -> "TimeRange":
        """Window of ``span_ms`` ending at the current moment."""
        if span_ms <= 0:
            raise InvalidTimeRangeError(f"span must be positive, got {span_ms}")
        return cls(TimeRangeKind.CURRENT, span_ms=span_ms)

    @classmethod
    def relative(cls, span_ms: int) -> "TimeRange":
        """Window of ``span_ms`` ending at the profile's newest action."""
        if span_ms <= 0:
            raise InvalidTimeRangeError(f"span must be positive, got {span_ms}")
        return cls(TimeRangeKind.RELATIVE, span_ms=span_ms)

    @classmethod
    def absolute(cls, start_ms: int, end_ms: int) -> "TimeRange":
        """Arbitrary historical window ``[start_ms, end_ms)``."""
        if end_ms <= start_ms:
            raise InvalidTimeRangeError(
                f"absolute window must be non-empty: [{start_ms}, {end_ms})"
            )
        if start_ms < 0:
            raise InvalidTimeRangeError(f"start must be >= 0, got {start_ms}")
        return cls(TimeRangeKind.ABSOLUTE, start_ms=start_ms, end_ms=end_ms)

    def resolve(
        self, now_ms: int, profile_newest_ms: int | None
    ) -> ResolvedWindow | None:
        """Resolve to a concrete window.

        Returns ``None`` for a RELATIVE range over an empty profile (there is
        no recent action to anchor it), which callers treat as an empty
        result rather than an error.
        """
        if self.kind is TimeRangeKind.CURRENT:
            assert self.span_ms is not None
            start = max(0, now_ms - self.span_ms)
            # End is now+1 so an action stamped exactly "now" is included.
            return ResolvedWindow(start, max(now_ms + 1, start + 1))
        if self.kind is TimeRangeKind.RELATIVE:
            assert self.span_ms is not None
            if profile_newest_ms is None:
                return None
            anchor = min(profile_newest_ms, now_ms + 1)
            start = max(0, anchor - self.span_ms)
            return ResolvedWindow(start, max(anchor, start + 1))
        assert self.start_ms is not None and self.end_ms is not None
        return ResolvedWindow(self.start_ms, self.end_ms)
