"""The unified IPS client (§III, §III-G).

Upstream applications talk to IPS through one client that:

* routes each request to the owning node via the region's consistent hash
  ring (refreshing node membership is the region's concern);
* on a node failure, retries with the failed node excluded so the ring
  resolves the next clockwise owner (bounded retries);
* **writes to every region** but **queries only the local region**, the
  multi-region strategy of Fig. 15, failing reads over to another region
  when the local one is down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.query import FeatureResult, SortType
from ..core.timerange import TimeRange
from ..errors import (
    NodeUnavailableError,
    NoHealthyNodeError,
    QuotaExceededError,
    RegionUnavailableError,
    RPCError,
    StorageError,
)
from ..clock import perf_ms
from ..monitoring import BatchQueryMetrics
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..server.batch import BatchKeyResult, BatchReadOutcome, dedup_preserving_order

#: Errors a retry may fix (transient transport / storage hiccups).
_RETRYABLE = (NodeUnavailableError, StorageError)
#: Errors that fail the region outright (handled by region failover).
_REGION_FATAL = (RegionUnavailableError, NoHealthyNodeError, QuotaExceededError)


@dataclass
class ClientStats:
    """Client-side request accounting (feeds the Fig. 17 error-rate curve)."""

    reads: int = 0
    writes: int = 0
    read_errors: int = 0
    write_errors: int = 0
    retries: int = 0
    region_failovers: int = 0
    batch_reads: int = 0
    batch_keys: int = 0
    batch_key_errors: int = 0

    @property
    def error_rate(self) -> float:
        total = self.reads + self.writes
        if total == 0:
            return 0.0
        return (self.read_errors + self.write_errors) / total


class IPSClient:
    """Client bound to a local region within a multi-region deployment."""

    def __init__(
        self,
        deployment,
        local_region: str,
        caller: str = "default",
        max_retries: int = 2,
        use_discovery: bool = False,
        tracer=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if local_region not in deployment.regions:
            raise NoHealthyNodeError(f"unknown local region {local_region!r}")
        self._deployment = deployment
        self.local_region = local_region
        self.caller = caller
        self.max_retries = max_retries
        self.stats = ClientStats()
        #: When enabled, the client refreshes the healthy instance set from
        #: the discovery service whenever its epoch changes (§III: clients
        #: "refresh the IPS instance list from Consul periodically") and
        #: routes around instances missing from it.
        self.use_discovery = use_discovery
        #: Tracing/metrics default to the deployment's (cluster-wide) ones,
        #: so one tracer sees client -> rpc -> node -> cache -> storage.
        if tracer is None:
            tracer = getattr(deployment, "tracer", NULL_TRACER)
        if registry is None:
            registry = getattr(deployment, "registry", None)
        self.tracer = tracer
        self.registry = registry
        if registry is not None:
            self._read_hist = registry.histogram("client_read_ms", caller=caller)
            self._write_hist = registry.histogram("client_write_ms", caller=caller)
            self._batch_hist = registry.histogram(
                "client_multi_get_ms", caller=caller
            )
        else:
            self._read_hist = self._write_hist = self._batch_hist = None
        #: Telemetry for the batched read path (size / dedup / fan-out).
        self.batch_metrics = BatchQueryMetrics(registry)
        self._discovery_epoch = -1
        self._healthy_by_region: dict[str, frozenset[str]] = {}
        self.discovery_refreshes = 0

    # ------------------------------------------------------------------
    # Writes: all regions (Fig. 15)
    # ------------------------------------------------------------------

    def add_profile(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts,
    ) -> int:
        """Write to every available region; returns number of regions written.

        A down region is skipped (weak cross-region consistency is accepted,
        §III-G); the write counts as failed only when *no* region took it.
        """
        return self._write_all_regions(
            "add_profile",
            profile_id,
            timestamp_ms,
            slot,
            type_id,
            fid,
            counts,
        )

    def add_profiles(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fids: Sequence[int],
        counts_list: Sequence,
    ) -> int:
        """Batched write to every available region."""
        return self._write_all_regions(
            "add_profiles",
            profile_id,
            timestamp_ms,
            slot,
            type_id,
            fids,
            counts_list,
        )

    def _write_all_regions(self, method: str, profile_id: int, *args) -> int:
        self.stats.writes += 1
        written = 0
        start = perf_ms()
        with self.tracer.span(
            f"client.{method}", profile=profile_id, caller=self.caller
        ) as span:
            for region in self._deployment.regions.values():
                try:
                    self._call_in_region(
                        region, profile_id, method, profile_id, *args
                    )
                    written += 1
                except (_REGION_FATAL + _RETRYABLE + (RPCError,)):
                    continue
            span.tag(regions_written=written)
        if self._write_hist is not None:
            self._write_hist.observe(perf_ms() - start)
        if written == 0:
            self.stats.write_errors += 1
        return written

    # ------------------------------------------------------------------
    # Reads: local region, failover on outage
    # ------------------------------------------------------------------

    def get_profile_topk(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_topk",
            profile_id,
            slot,
            type_id,
            time_range,
            sort_type,
            k,
            sort_attribute=sort_attribute,
            sort_weights=sort_weights,
            aggregate=aggregate,
        )

    def get_profile_filter(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_filter",
            profile_id,
            slot,
            type_id,
            time_range,
            predicate,
        )

    def get_profile_decay(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_decay",
            profile_id,
            slot,
            type_id,
            time_range,
            decay_function,
            decay_factor,
            k=k,
            sort_attribute=sort_attribute,
        )

    def _read(self, profile_id: int, method: str, *args, **kwargs):
        self.stats.reads += 1
        last_error: Exception | None = None
        start = perf_ms()
        with self.tracer.span(
            f"client.{method}", profile=profile_id, caller=self.caller
        ):
            try:
                for index, region in enumerate(self._read_region_order()):
                    if index > 0:
                        self.stats.region_failovers += 1
                    try:
                        return self._call_in_region(
                            region, profile_id, method, *args, **kwargs
                        )
                    except (_REGION_FATAL + _RETRYABLE + (RPCError,)) as error:
                        last_error = error
                        continue
                self.stats.read_errors += 1
                assert last_error is not None
                raise last_error
            finally:
                if self._read_hist is not None:
                    self._read_hist.observe(perf_ms() - start)

    # ------------------------------------------------------------------
    # Batched reads: dedup + shard-grouped fan-out + partial failure
    # ------------------------------------------------------------------

    def multi_get_topk(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_topk`` over many profiles.

        Results are positionally aligned with ``profile_ids``; each carries
        an ok/error status instead of raising, so one bad shard degrades
        only its keys (the partial-failure contract of the batch path).
        """
        return self._multi_get(
            profile_ids,
            "multi_get_topk",
            slot,
            type_id,
            time_range,
            sort_type,
            k,
            sort_attribute=sort_attribute,
            sort_weights=sort_weights,
            aggregate=aggregate,
        )

    def multi_get_filter(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_filter``; see :meth:`multi_get_topk`."""
        return self._multi_get(
            profile_ids,
            "multi_get_filter",
            slot,
            type_id,
            time_range,
            predicate,
        )

    def multi_get_decay(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_decay``; see :meth:`multi_get_topk`."""
        return self._multi_get(
            profile_ids,
            "multi_get_decay",
            slot,
            type_id,
            time_range,
            decay_function,
            decay_factor,
            k=k,
            sort_attribute=sort_attribute,
        )

    def _multi_get(
        self, profile_ids: Sequence[int], method: str, *args, **kwargs
    ) -> BatchReadOutcome:
        """Shared batched-read driver.

        1. **Dedup** — repeated profile ids are resolved once and fanned
           back to every requesting position.
        2. **Shard grouping** — per region, keys are grouped by owning
           node via the hash ring so one RPC carries all keys destined
           for that node instead of N round-trips.
        3. **Retry / failover** — a node-level transient failure retries
           the affected keys around the ring (bounded, like the single-key
           path); keys a region cannot serve fail over to the next region
           in :meth:`_read_region_order`.
        4. **Partial failure** — keys unresolved after every region carry
           their last error as a per-key status; the batch never raises.
        """
        requested = list(profile_ids)
        unique = dedup_preserving_order(requested)
        self.stats.batch_reads += 1
        self.stats.batch_keys += len(requested)
        self.batch_metrics.observe_batch(len(requested), len(unique))
        resolved: dict[int, BatchKeyResult] = {}
        errors: dict[int, BatchKeyResult] = {}
        pending = unique
        shard_calls = 0
        start = perf_ms()
        with self.tracer.span(
            f"client.{method}",
            keys=len(requested),
            unique=len(unique),
            caller=self.caller,
        ) as span:
            for index, region in enumerate(self._read_region_order()):
                if not pending:
                    break
                if index > 0:
                    self.stats.region_failovers += 1
                pending, calls = self._batch_region(
                    region, pending, resolved, errors, method, *args, **kwargs
                )
                shard_calls += calls
            span.tag(shard_calls=shard_calls)
        if self._batch_hist is not None:
            self._batch_hist.observe(perf_ms() - start)
        self.batch_metrics.observe_fanout(shard_calls)
        results = []
        for profile_id in requested:
            result = resolved.get(profile_id)
            if result is None:
                result = errors.get(profile_id)
            assert result is not None, f"key {profile_id} left unanswered"
            results.append(result)
        failed = sum(1 for result in results if not result.ok)
        self.stats.batch_key_errors += failed
        self.batch_metrics.observe_key_errors(failed)
        return BatchReadOutcome(results)

    def _batch_region(
        self,
        region,
        profile_ids: list[int],
        resolved: dict[int, BatchKeyResult],
        errors: dict[int, BatchKeyResult],
        method: str,
        *args,
        **kwargs,
    ) -> tuple[list[int], int]:
        """Serve as many keys as possible from one region.

        Returns the keys this region could not serve (for failover) and
        the number of per-shard RPCs issued.  Every returned key has a
        per-key error recorded in ``errors``.
        """
        kwargs.setdefault("caller", self.caller)
        exclude: set[str] = set(self._unhealthy_in(region))
        remaining = list(profile_ids)
        deferred: list[int] = []
        shard_calls = 0
        for _attempt in range(self.max_retries + 1):
            if not remaining:
                break
            groups: dict[str, list[int]] = {}
            nodes_by_id: dict[str, object] = {}
            unroutable: list[int] = []
            for profile_id in remaining:
                try:
                    node = region.node_for(profile_id, exclude=exclude or None)
                except (_REGION_FATAL + (RPCError,)) as error:
                    errors[profile_id] = BatchKeyResult.failure(profile_id, error)
                    unroutable.append(profile_id)
                    continue
                groups.setdefault(node.node_id, []).append(profile_id)
                nodes_by_id[node.node_id] = node
            deferred.extend(unroutable)
            next_remaining: list[int] = []
            for node_id, keys in groups.items():
                shard_calls += 1
                try:
                    per_key = getattr(nodes_by_id[node_id], method)(
                        keys, *args, **kwargs
                    )
                except _RETRYABLE as error:
                    # Transient node failure: exclude it and retry these
                    # keys against the next ring owner.
                    exclude.add(node_id)
                    self.stats.retries += 1
                    for profile_id in keys:
                        errors[profile_id] = BatchKeyResult.failure(
                            profile_id, error
                        )
                    next_remaining.extend(keys)
                    continue
                except (_REGION_FATAL + (RPCError,)) as error:
                    # Region-level failure (quota, no healthy node): stop
                    # trying these keys here, let the next region serve them.
                    for profile_id in keys:
                        errors[profile_id] = BatchKeyResult.failure(
                            profile_id, error
                        )
                    deferred.extend(keys)
                    continue
                for profile_id in keys:
                    result = per_key.get(profile_id)
                    if result is None:
                        result = BatchKeyResult.failure(
                            profile_id,
                            NoHealthyNodeError(
                                f"node {node_id} dropped key {profile_id}"
                            ),
                        )
                    if result.ok:
                        resolved[profile_id] = result
                    else:
                        errors[profile_id] = result
                        next_remaining.append(profile_id)
            remaining = next_remaining
        # Keys still remaining exhausted their in-region retries; their
        # last error is already recorded.
        return remaining + deferred, shard_calls

    def _read_region_order(self):
        """Local region first, then the others as failover candidates."""
        regions = self._deployment.regions
        ordered = [regions[self.local_region]]
        ordered.extend(
            region for name, region in regions.items() if name != self.local_region
        )
        return ordered

    # ------------------------------------------------------------------
    # Shared routing with node-level retry
    # ------------------------------------------------------------------

    def _call_in_region(self, region, profile_id: int, method: str, *args, **kwargs):
        """Call a method on the owning node, retrying around the ring."""
        kwargs.setdefault("caller", self.caller)
        exclude: set[str] = set(self._unhealthy_in(region))
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            node = region.node_for(profile_id, exclude=exclude or None)
            try:
                return getattr(node, method)(*args, **kwargs)
            except _RETRYABLE as error:
                last_error = error
                exclude.add(node.node_id)
                self.stats.retries += 1
        assert last_error is not None
        raise last_error

    def _unhealthy_in(self, region) -> frozenset[str]:
        """Nodes of a region absent from the discovery healthy set."""
        if not self.use_discovery:
            return frozenset()
        discovery = getattr(self._deployment, "discovery", None)
        if discovery is None:
            return frozenset()
        epoch = discovery.epoch
        if epoch != self._discovery_epoch:
            self._discovery_epoch = epoch
            self.discovery_refreshes += 1
            self._healthy_by_region = {}
            for record in discovery.healthy_instances():
                healthy = self._healthy_by_region.setdefault(record.region, set())
                healthy.add(record.node_id)  # type: ignore[union-attr]
            self._healthy_by_region = {
                name: frozenset(nodes)
                for name, nodes in self._healthy_by_region.items()
            }
        healthy = self._healthy_by_region.get(region.name, frozenset())
        return frozenset(set(region.nodes) - healthy)
