"""The unified IPS client (§III, §III-G).

Upstream applications talk to IPS through one client that:

* routes each request to the owning node via the region's consistent hash
  ring (refreshing node membership is the region's concern);
* on a node failure, retries with the failed node excluded so the ring
  resolves the next clockwise owner (bounded retries);
* **writes to every region** but **queries only the local region**, the
  multi-region strategy of Fig. 15, failing reads over to another region
  when the local one is down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.query import FeatureResult, SortType
from ..core.timerange import TimeRange
from ..errors import (
    REGION_FATAL_ERRORS,
    RETRYABLE_ERRORS,
    CircuitOpenError,
    DeadlineExceededError,
    IPSError,
    NoHealthyNodeError,
    RPCError,
    is_retryable,
)
from ..clock import perf_ms
from ..monitoring import BatchQueryMetrics
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..server.batch import BatchKeyResult, BatchReadOutcome, dedup_preserving_order
from .resilience import Deadline, ResilienceConfig, ResilientExecutor

#: Shared retry taxonomy (see :mod:`repro.errors`): the client and the
#: resilience layer classify errors identically.
_RETRYABLE = RETRYABLE_ERRORS
#: Errors that fail the region outright (handled by region failover).
_REGION_FATAL = REGION_FATAL_ERRORS


@dataclass
class ClientStats:
    """Client-side request accounting (feeds the Fig. 17 error-rate curve)."""

    reads: int = 0
    writes: int = 0
    read_errors: int = 0
    write_errors: int = 0
    retries: int = 0
    region_failovers: int = 0
    batch_reads: int = 0
    batch_keys: int = 0
    batch_key_errors: int = 0

    @property
    def error_rate(self) -> float:
        total = self.reads + self.writes
        if total == 0:
            return 0.0
        return (self.read_errors + self.write_errors) / total


class IPSClient:
    """Client bound to a local region within a multi-region deployment."""

    def __init__(
        self,
        deployment,
        local_region: str,
        caller: str = "default",
        max_retries: int = 2,
        use_discovery: bool = False,
        tracer=None,
        registry: MetricsRegistry | None = None,
        resilience: ResilienceConfig | None = None,
        region_failover: bool = True,
        slo=None,
    ) -> None:
        if local_region not in deployment.regions:
            raise NoHealthyNodeError(f"unknown local region {local_region!r}")
        self._deployment = deployment
        self.local_region = local_region
        self.caller = caller
        self.max_retries = max_retries
        #: When False, reads never fail over to another region — the
        #: "no resilience" baseline of the Fig. 17 bench.
        self.region_failover = region_failover
        self.stats = ClientStats()
        #: When enabled, the client refreshes the healthy instance set from
        #: the discovery service whenever its epoch changes (§III: clients
        #: "refresh the IPS instance list from Consul periodically") and
        #: routes around instances missing from it.
        self.use_discovery = use_discovery
        #: Tracing/metrics default to the deployment's (cluster-wide) ones,
        #: so one tracer sees client -> rpc -> node -> cache -> storage.
        if tracer is None:
            tracer = getattr(deployment, "tracer", NULL_TRACER)
        if registry is None:
            registry = getattr(deployment, "registry", None)
        self.tracer = tracer
        self.registry = registry
        if registry is not None:
            self._read_hist = registry.histogram("client_read_ms", caller=caller)
            self._write_hist = registry.histogram("client_write_ms", caller=caller)
            self._batch_hist = registry.histogram(
                "client_multi_get_ms", caller=caller
            )
        else:
            self._read_hist = self._write_hist = self._batch_hist = None
        #: Resilience layer (deadlines / backoff / hedging / breakers);
        #: ``None`` keeps the legacy bare-retry behaviour.
        self.resilience = (
            ResilientExecutor(deployment.clock, resilience, registry)
            if resilience is not None
            else None
        )
        #: Optional :class:`~repro.obs.slo.SLOEngine`: every finished
        #: request is classified against the declared objectives using
        #: *modelled* (clock-delta) latency, so alert timelines replay
        #: deterministically.
        self.slo = slo
        #: Telemetry for the batched read path (size / dedup / fan-out).
        self.batch_metrics = BatchQueryMetrics(registry)
        self._discovery_epoch = -1
        self._healthy_by_region: dict[str, frozenset[str]] = {}
        self.discovery_refreshes = 0

    # ------------------------------------------------------------------
    # Writes: all regions (Fig. 15)
    # ------------------------------------------------------------------

    def add_profile(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts,
    ) -> int:
        """Write to every available region; returns number of regions written.

        A down region is skipped (weak cross-region consistency is accepted,
        §III-G); the write counts as failed only when *no* region took it.
        """
        return self._write_all_regions(
            "add_profile",
            profile_id,
            timestamp_ms,
            slot,
            type_id,
            fid,
            counts,
        )

    def add_profiles(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fids: Sequence[int],
        counts_list: Sequence,
    ) -> int:
        """Batched write to every available region."""
        return self._write_all_regions(
            "add_profiles",
            profile_id,
            timestamp_ms,
            slot,
            type_id,
            fids,
            counts_list,
        )

    def _write_all_regions(self, method: str, profile_id: int, *args) -> int:
        self.stats.writes += 1
        written = 0
        start = perf_ms()
        clock = self._deployment.clock
        started_clock_ms = clock.now_ms()
        with self.tracer.span(
            f"client.{method}", profile=profile_id, caller=self.caller
        ) as span:
            for region in self._deployment.regions.values():
                try:
                    self._call_in_region(
                        region, profile_id, method, profile_id, *args
                    )
                    written += 1
                except (_REGION_FATAL + _RETRYABLE + (RPCError,)):
                    continue
            span.tag(regions_written=written)
        if self._write_hist is not None:
            self._write_hist.observe(perf_ms() - start)
        if written == 0:
            self.stats.write_errors += 1
        if self.slo is not None:
            self.slo.observe(
                self.caller,
                "write",
                clock.now_ms() - started_clock_ms,
                ok=written > 0,
            )
        return written

    # ------------------------------------------------------------------
    # Reads: local region, failover on outage
    # ------------------------------------------------------------------

    def get_profile_topk(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_topk",
            profile_id,
            slot,
            type_id,
            time_range,
            sort_type,
            k,
            sort_attribute=sort_attribute,
            sort_weights=sort_weights,
            aggregate=aggregate,
        )

    def get_profile_filter(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_filter",
            profile_id,
            slot,
            type_id,
            time_range,
            predicate,
        )

    def get_profile_decay(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
    ) -> list[FeatureResult]:
        return self._read(
            profile_id,
            "get_profile_decay",
            profile_id,
            slot,
            type_id,
            time_range,
            decay_function,
            decay_factor,
            k=k,
            sort_attribute=sort_attribute,
        )

    def _read(self, profile_id: int, method: str, *args, **kwargs):
        self.stats.reads += 1
        last_error: Exception | None = None
        start = perf_ms()
        clock = self._deployment.clock
        started_clock_ms = clock.now_ms()
        ok = False
        deadline = (
            self.resilience.deadline() if self.resilience is not None else None
        )
        with self.tracer.span(
            f"client.{method}", profile=profile_id, caller=self.caller
        ):
            try:
                for index, region in enumerate(self._read_region_order()):
                    if index > 0:
                        self.stats.region_failovers += 1
                    try:
                        result = self._call_in_region(
                            region,
                            profile_id,
                            method,
                            *args,
                            deadline=deadline,
                            **kwargs,
                        )
                        ok = True
                        return result
                    except DeadlineExceededError:
                        # No budget left: surface instead of failing over.
                        self.stats.read_errors += 1
                        self.resilience.record_deadline_exceeded()
                        raise
                    except (_REGION_FATAL + _RETRYABLE + (RPCError,)) as error:
                        last_error = error
                        continue
                self.stats.read_errors += 1
                assert last_error is not None
                raise last_error
            finally:
                if self._read_hist is not None:
                    self._read_hist.observe(perf_ms() - start)
                if self.slo is not None:
                    self.slo.observe(
                        self.caller,
                        "read",
                        clock.now_ms() - started_clock_ms,
                        ok=ok,
                    )

    # ------------------------------------------------------------------
    # Batched reads: dedup + shard-grouped fan-out + partial failure
    # ------------------------------------------------------------------

    def multi_get_topk(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_topk`` over many profiles.

        Results are positionally aligned with ``profile_ids``; each carries
        an ok/error status instead of raising, so one bad shard degrades
        only its keys (the partial-failure contract of the batch path).
        """
        return self._multi_get(
            profile_ids,
            "multi_get_topk",
            slot,
            type_id,
            time_range,
            sort_type,
            k,
            sort_attribute=sort_attribute,
            sort_weights=sort_weights,
            aggregate=aggregate,
        )

    def multi_get_filter(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_filter``; see :meth:`multi_get_topk`."""
        return self._multi_get(
            profile_ids,
            "multi_get_filter",
            slot,
            type_id,
            time_range,
            predicate,
        )

    def multi_get_decay(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
    ) -> BatchReadOutcome:
        """Batched ``get_profile_decay``; see :meth:`multi_get_topk`."""
        return self._multi_get(
            profile_ids,
            "multi_get_decay",
            slot,
            type_id,
            time_range,
            decay_function,
            decay_factor,
            k=k,
            sort_attribute=sort_attribute,
        )

    def _multi_get(
        self, profile_ids: Sequence[int], method: str, *args, **kwargs
    ) -> BatchReadOutcome:
        """Shared batched-read driver.

        1. **Dedup** — repeated profile ids are resolved once and fanned
           back to every requesting position.
        2. **Shard grouping** — per region, keys are grouped by owning
           node via the hash ring so one RPC carries all keys destined
           for that node instead of N round-trips.
        3. **Retry / failover** — a node-level transient failure retries
           the affected keys around the ring (bounded, like the single-key
           path); keys a region cannot serve fail over to the next region
           in :meth:`_read_region_order`.
        4. **Partial failure** — keys unresolved after every region carry
           their last error as a per-key status; the batch never raises.
        """
        requested = list(profile_ids)
        unique = dedup_preserving_order(requested)
        self.stats.batch_reads += 1
        self.stats.batch_keys += len(requested)
        self.batch_metrics.observe_batch(len(requested), len(unique))
        resolved: dict[int, BatchKeyResult] = {}
        errors: dict[int, BatchKeyResult] = {}
        pending = unique
        shard_calls = 0
        start = perf_ms()
        clock = self._deployment.clock
        started_clock_ms = clock.now_ms()
        deadline = (
            self.resilience.deadline() if self.resilience is not None else None
        )
        with self.tracer.span(
            f"client.{method}",
            keys=len(requested),
            unique=len(unique),
            caller=self.caller,
        ) as span:
            for index, region in enumerate(self._read_region_order()):
                if not pending:
                    break
                if deadline is not None and deadline.expired:
                    # The shared fan-out budget is gone: remaining keys
                    # fail fast instead of starting another region pass.
                    self._fail_pending_on_deadline(pending, method, errors)
                    break
                if index > 0:
                    self.stats.region_failovers += 1
                pending, calls = self._batch_region(
                    region,
                    pending,
                    resolved,
                    errors,
                    method,
                    *args,
                    deadline=deadline,
                    **kwargs,
                )
                shard_calls += calls
            span.tag(shard_calls=shard_calls)
        if self._batch_hist is not None:
            self._batch_hist.observe(perf_ms() - start)
        self.batch_metrics.observe_fanout(shard_calls)
        results = []
        for profile_id in requested:
            result = resolved.get(profile_id)
            if result is None:
                result = errors.get(profile_id)
            assert result is not None, f"key {profile_id} left unanswered"
            results.append(result)
        failed = sum(1 for result in results if not result.ok)
        self.stats.batch_key_errors += failed
        self.batch_metrics.observe_key_errors(failed)
        if self.slo is not None:
            # The batch contract is per-key: a batch with any failed key
            # burns availability budget (partial results are still an SLA
            # miss for the affected upstream request).
            self.slo.observe(
                self.caller,
                "multi_get",
                clock.now_ms() - started_clock_ms,
                ok=failed == 0,
            )
        return BatchReadOutcome(results)

    def _fail_pending_on_deadline(
        self,
        pending: list[int],
        method: str,
        errors: dict[int, BatchKeyResult],
    ) -> None:
        """Mark every still-pending key failed with a deadline error."""
        assert self.resilience is not None
        budget = self.resilience.config.deadline_ms or 0.0
        self.resilience.record_deadline_exceeded()
        for profile_id in pending:
            errors[profile_id] = BatchKeyResult.failure(
                profile_id, DeadlineExceededError(method, budget)
            )

    def _batch_region(
        self,
        region,
        profile_ids: list[int],
        resolved: dict[int, BatchKeyResult],
        errors: dict[int, BatchKeyResult],
        method: str,
        *args,
        deadline: Deadline | None = None,
        **kwargs,
    ) -> tuple[list[int], int]:
        """Serve as many keys as possible from one region.

        Returns the keys this region could not serve (for failover) and
        the number of per-shard RPCs issued.  Every returned key has a
        per-key error recorded in ``errors``.  The request ``deadline`` is
        shared by every shard call: once it expires, unserved keys fail
        with :class:`DeadlineExceededError` instead of spawning more RPCs.
        """
        kwargs.setdefault("caller", self.caller)
        executor = self.resilience
        exclude: set[str] = set(self._unhealthy_in(region))
        if executor is not None:
            exclude |= executor.open_nodes()
        remaining = list(profile_ids)
        deferred: list[int] = []
        shard_calls = 0
        for attempt in range(self.max_retries + 1):
            if not remaining:
                break
            if deadline is not None and deadline.expired:
                self._fail_pending_on_deadline(remaining, method, errors)
                return deferred, shard_calls
            groups: dict[str, list[int]] = {}
            nodes_by_id: dict[str, object] = {}
            unroutable: list[int] = []
            for profile_id in remaining:
                try:
                    node = region.node_for(profile_id, exclude=exclude or None)
                except (_REGION_FATAL + (RPCError,)) as error:
                    errors[profile_id] = BatchKeyResult.failure(profile_id, error)
                    unroutable.append(profile_id)
                    continue
                groups.setdefault(node.node_id, []).append(profile_id)
                nodes_by_id[node.node_id] = node
            deferred.extend(unroutable)
            next_remaining: list[int] = []
            for node_id, keys in groups.items():
                if deadline is not None and deadline.expired:
                    self._fail_pending_on_deadline(keys, method, errors)
                    continue
                shard_calls += 1
                try:
                    if executor is not None:
                        executor.admit(node_id)
                    per_key = getattr(nodes_by_id[node_id], method)(
                        keys, *args, **kwargs
                    )
                except _RETRYABLE as error:
                    # Transient node failure: exclude it and retry these
                    # keys against the next ring owner.
                    if executor is not None and not isinstance(
                        error, CircuitOpenError
                    ):
                        executor.record_failure(node_id)
                    exclude.add(node_id)
                    self.stats.retries += 1
                    for profile_id in keys:
                        errors[profile_id] = BatchKeyResult.failure(
                            profile_id, error
                        )
                    next_remaining.extend(keys)
                    continue
                except (_REGION_FATAL + (RPCError,)) as error:
                    # Region-level failure (quota, no healthy node): stop
                    # trying these keys here, let the next region serve them.
                    for profile_id in keys:
                        errors[profile_id] = BatchKeyResult.failure(
                            profile_id, error
                        )
                    deferred.extend(keys)
                    continue
                if executor is not None:
                    executor.record_success(node_id)
                for profile_id in keys:
                    result = per_key.get(profile_id)
                    if result is None:
                        result = BatchKeyResult.failure(
                            profile_id,
                            NoHealthyNodeError(
                                f"node {node_id} dropped key {profile_id}"
                            ),
                        )
                    if result.ok:
                        resolved[profile_id] = result
                    else:
                        errors[profile_id] = result
                        next_remaining.append(profile_id)
            if (
                executor is not None
                and next_remaining
                and attempt < self.max_retries
            ):
                executor.backoff_before_retry(attempt, deadline)
            remaining = next_remaining
        # Keys still remaining exhausted their in-region retries; their
        # last error is already recorded.
        return remaining + deferred, shard_calls

    def _read_region_order(self):
        """Local region first, then the others as failover candidates."""
        regions = self._deployment.regions
        ordered = [regions[self.local_region]]
        if self.region_failover:
            ordered.extend(
                region
                for name, region in regions.items()
                if name != self.local_region
            )
        return ordered

    # ------------------------------------------------------------------
    # Shared routing with node-level retry
    # ------------------------------------------------------------------

    def _call_in_region(
        self,
        region,
        profile_id: int,
        method: str,
        *args,
        deadline: Deadline | None = None,
        **kwargs,
    ):
        """Call a method on the owning node, retrying around the ring.

        With a resilience layer attached, each attempt also passes the
        per-node circuit breaker, waits out a jittered exponential backoff
        between retries, honours the request deadline, and may hedge a
        slow successful read against another replica.
        """
        kwargs.setdefault("caller", self.caller)
        executor = self.resilience
        exclude: set[str] = set(self._unhealthy_in(region))
        if executor is not None:
            exclude |= executor.open_nodes()
        attempts = self.max_retries + 1
        if executor is not None:
            attempts = max(attempts, executor.config.max_attempts)
        last_error: Exception | None = None
        for attempt in range(attempts):
            if deadline is not None:
                deadline.check(method)
            node = region.node_for(profile_id, exclude=exclude or None)
            node_id = node.node_id
            try:
                if executor is not None:
                    executor.admit(node_id)
                result = getattr(node, method)(*args, **kwargs)
            except IPSError as error:
                if executor is not None and not isinstance(
                    error, CircuitOpenError
                ):
                    executor.record_failure(node_id)
                if not is_retryable(error):
                    raise
                last_error = error
                exclude.add(node_id)
                if attempt + 1 < attempts:
                    # Only count attempts that actually get a retry; the
                    # final failed attempt just surfaces the error.
                    self.stats.retries += 1
                    if executor is not None and not isinstance(
                        error, CircuitOpenError
                    ):
                        executor.backoff_before_retry(attempt, deadline)
                continue
            if executor is not None:
                executor.record_success(node_id)
                result = self._maybe_hedge(
                    region, profile_id, method, node, result, exclude,
                    *args, **kwargs,
                )
            return result
        assert last_error is not None
        raise last_error

    def _maybe_hedge(
        self, region, profile_id: int, method: str, primary, result,
        exclude: set[str], *args, **kwargs,
    ):
        """Hedge a slow successful read against the next ring replica.

        Fires only for read methods over an RPC-proxied node (the modelled
        per-call latency is the trigger signal); the faster result wins.
        Writes never hedge.
        """
        executor = self.resilience
        rpc = getattr(primary, "rpc", None)
        if executor is None or rpc is None or not method.startswith("get_"):
            return result
        # Trigger on the *modelled* latency only (network model + injected
        # chaos latency): client_ms also carries measured wall-clock server
        # time, which would make hedge decisions non-reproducible.
        latency_ms = rpc.stats.last_client_ms - rpc.stats.last_server_ms
        executor.observe_latency(latency_ms)
        if not executor.should_hedge(latency_ms):
            return result
        span = self.tracer.current()
        if span is not None:
            # Hedged requests are tail-sampling candidates: the hedge
            # firing *is* the signal that the primary was slow.
            span.tag(hedged=1)
        try:
            alternate = region.node_for(
                profile_id, exclude=exclude | {primary.node_id}
            )
        except IPSError:
            return result  # No second replica available; keep the result.
        try:
            hedge_result = getattr(alternate, method)(*args, **kwargs)
        except IPSError:
            executor.record_hedge(won=False)
            return result
        alternate_rpc = getattr(alternate, "rpc", None)
        hedge_ms = (
            alternate_rpc.stats.last_client_ms - alternate_rpc.stats.last_server_ms
            if alternate_rpc is not None
            else latency_ms
        )
        won = hedge_ms < latency_ms
        executor.record_hedge(won=won)
        return hedge_result if won else result

    def resilience_summary(self) -> dict:
        """Resilience counters + breaker states (dashboards, Fig. 17 bench)."""
        if self.resilience is None:
            return {}
        summary = dict(self.resilience.stats.as_dict())
        summary["breaker_states"] = self.resilience.breaker_states()
        return summary

    def _unhealthy_in(self, region) -> frozenset[str]:
        """Nodes of a region absent from the discovery healthy set."""
        if not self.use_discovery:
            return frozenset()
        discovery = getattr(self._deployment, "discovery", None)
        if discovery is None:
            return frozenset()
        epoch = discovery.epoch
        if epoch != self._discovery_epoch:
            self._discovery_epoch = epoch
            self.discovery_refreshes += 1
            self._healthy_by_region = {}
            for record in discovery.healthy_instances():
                healthy = self._healthy_by_region.setdefault(record.region, set())
                healthy.add(record.node_id)  # type: ignore[union-attr]
            self._healthy_by_region = {
                name: frozenset(nodes)
                for name, nodes in self._healthy_by_region.items()
            }
        healthy = self._healthy_by_region.get(region.name, frozenset())
        return frozenset(set(region.nodes) - healthy)
