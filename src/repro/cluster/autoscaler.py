"""Auto-scaling of IPS instances (§IV).

Production IPS runs on Kubernetes and "can auto-scale up and down
depending on the workload".  :class:`AutoScaler` reproduces that control
loop for a :class:`~repro.cluster.region.Region`:

* it watches a load signal (requests per second per node, or memory
  pressure across the fleet);
* above ``scale_up_threshold`` it adds nodes (bounded by ``max_nodes``);
* below ``scale_down_threshold`` it removes the newest nodes (bounded by
  ``min_nodes``), draining them first — dirty cache entries flush to the
  KV store so the profiles a departing node owned are reloadable by their
  new ring owners.

Consistent hashing keeps the data movement proportional to the capacity
change: only the keys adjacent to the added/removed virtual points remap
(property-tested in ``tests/test_cluster_hashring.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..server.node import IPSNode
from .region import Region


@dataclass
class ScalingPolicy:
    """Thresholds and bounds for the control loop.

    Load is expressed as *utilisation*: observed per-node QPS divided by
    ``node_capacity_qps``.  Hysteresis between the two thresholds prevents
    flapping; ``cooldown_ticks`` enforces a minimum interval between
    scaling actions.
    """

    node_capacity_qps: float = 10_000.0
    scale_up_threshold: float = 0.75
    scale_down_threshold: float = 0.30
    min_nodes: int = 1
    max_nodes: int = 64
    step: int = 1
    cooldown_ticks: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.scale_down_threshold < self.scale_up_threshold <= 1.0:
            raise ValueError(
                "need 0 < scale_down_threshold < scale_up_threshold <= 1, got "
                f"{self.scale_down_threshold} / {self.scale_up_threshold}"
            )
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes} / {self.max_nodes}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.node_capacity_qps <= 0:
            raise ValueError("node capacity must be positive")


@dataclass
class ScalingEvent:
    tick: int
    action: str  # "scale_up" | "scale_down"
    node_id: str
    utilization: float


@dataclass
class AutoScalerStats:
    ticks: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    events: list[ScalingEvent] = field(default_factory=list)


class AutoScaler:
    """Threshold-based scaling loop over one region."""

    def __init__(self, region: Region, policy: ScalingPolicy | None = None) -> None:
        self.region = region
        self.policy = policy if policy is not None else ScalingPolicy()
        self.stats = AutoScalerStats()
        self._next_index = len(region.nodes)
        self._cooldown = 0

    # ------------------------------------------------------------------

    def utilization(self, observed_qps: float) -> float:
        """Fleet utilisation for an observed aggregate QPS."""
        healthy = max(1, self.region.healthy_node_count)
        return observed_qps / (healthy * self.policy.node_capacity_qps)

    def tick(self, observed_qps: float) -> list[ScalingEvent]:
        """One control-loop iteration; returns the actions taken."""
        self.stats.ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        utilization = self.utilization(observed_qps)
        events: list[ScalingEvent] = []
        if utilization > self.policy.scale_up_threshold:
            events = self._scale_up(utilization)
        elif utilization < self.policy.scale_down_threshold:
            events = self._scale_down(utilization)
        if events:
            self._cooldown = self.policy.cooldown_ticks
        return events

    # ------------------------------------------------------------------

    def _scale_up(self, utilization: float) -> list[ScalingEvent]:
        events = []
        for _ in range(self.policy.step):
            if len(self.region.nodes) >= self.policy.max_nodes:
                break
            node_id = self._add_node()
            self.stats.scale_ups += 1
            event = ScalingEvent(self.stats.ticks, "scale_up", node_id, utilization)
            self.stats.events.append(event)
            events.append(event)
        return events

    def _scale_down(self, utilization: float) -> list[ScalingEvent]:
        events = []
        for _ in range(self.policy.step):
            if len(self.region.nodes) <= self.policy.min_nodes:
                break
            node_id = self._remove_newest_node()
            if node_id is None:
                break
            self.stats.scale_downs += 1
            event = ScalingEvent(self.stats.ticks, "scale_down", node_id, utilization)
            self.stats.events.append(event)
            events.append(event)
        return events

    def _add_node(self) -> str:
        """Clone the region's node configuration into a fresh instance."""
        template = next(iter(self.region.nodes.values()))
        node_id = f"{self.region.name}-node-{self._next_index}"
        self._next_index += 1
        node = IPSNode(
            node_id,
            template.engine.config,
            self.region.store,
            clock=template.clock,
            cache_capacity_bytes=template.cache.capacity_bytes,
            isolation_enabled=template.isolation_enabled,
            **getattr(self.region, "node_kwargs", {}),
        )
        self.region.nodes[node_id] = node
        self.region.ring.add_node(node_id)
        return node_id

    def _remove_newest_node(self) -> str | None:
        """Drain and remove the most recently added healthy node.

        Draining = merge its write table and flush every dirty cache
        entry, so the profiles it owned are durable in the KV store and
        reloadable by their new owners after the ring update.
        """
        candidates = sorted(self.region.nodes)
        for node_id in reversed(candidates):
            if self.region.healthy_node_count <= self.policy.min_nodes:
                return None
            node = self.region.nodes[node_id]
            node.shutdown()  # Drain: merge write table + flush dirty.
            self.region.ring.remove_node(node_id)
            del self.region.nodes[node_id]
            self.region._failed_nodes.discard(node_id)
            return node_id
        return None
