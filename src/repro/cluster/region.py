"""A region: one data center's worth of IPS instances.

Each region holds a full replica of the profile data (clients write to all
regions), so any region can serve the entire query traffic after a
failover (§III-G).  Within a region, exactly one deployment persists to
the master KV cluster; the others read their local slave.
"""

from __future__ import annotations

from ..clock import Clock
from ..config import TableConfig
from ..errors import RegionUnavailableError
from ..obs.trace import NULL_TRACER
from ..server.node import IPSNode
from ..storage.kvstore import KVStore
from .discovery import DiscoveryService
from .hashring import ConsistentHashRing


class Region:
    """IPS instances of one region plus their hash ring.

    When a ``discovery`` service is supplied, nodes register on creation,
    heartbeat on :meth:`heartbeat_all`, and deregister when removed — the
    Consul flow of §III.
    """

    def __init__(
        self,
        name: str,
        config: TableConfig,
        store: KVStore,
        clock: Clock,
        num_nodes: int,
        cache_capacity_bytes: int = 256 * 1024 * 1024,
        isolation_enabled: bool = True,
        virtual_nodes: int = 64,
        discovery: DiscoveryService | None = None,
        tracer=NULL_TRACER,
        node_kwargs: dict | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"region needs at least one node, got {num_nodes}")
        self.name = name
        self.store = store
        self.discovery = discovery
        self.tracer = tracer
        #: Extra :class:`IPSNode` constructor kwargs applied to every node
        #: in the region (current and autoscaled) — e.g. ``result_cache``
        #: and ``coalesce`` for the server-side hot-read path.
        self.node_kwargs = dict(node_kwargs) if node_kwargs else {}
        self.ring = ConsistentHashRing(virtual_nodes)
        self.nodes: dict[str, IPSNode] = {}
        self._failed_nodes: set[str] = set()
        self.available = True
        for index in range(num_nodes):
            node_id = f"{name}-node-{index}"
            node = IPSNode(
                node_id,
                config,
                store,
                clock=clock,
                cache_capacity_bytes=cache_capacity_bytes,
                isolation_enabled=isolation_enabled,
                tracer=tracer,
                **self.node_kwargs,
            )
            self.nodes[node_id] = node
            self.ring.add_node(node_id)
            if discovery is not None:
                discovery.register(node_id, name)

    # ------------------------------------------------------------------

    def node_for(
        self, profile_id: int, exclude: set[str] | None = None
    ) -> IPSNode:
        """Owning healthy node for a profile id in this region.

        ``exclude`` adds caller-observed bad nodes (e.g. ones that just
        failed an RPC) on top of the region's known-failed set.
        """
        if not self.available:
            raise RegionUnavailableError(self.name)
        excluded = set(self._failed_nodes)
        if exclude:
            excluded |= exclude
        node_id = self.ring.node_for(profile_id, exclude=excluded or None)
        return self.nodes[node_id]

    def fail_node(self, node_id: str) -> None:
        """Mark a node crashed: the ring routes around it.

        A crashed node stops heartbeating, so with a discovery service it
        ages out of the healthy set via TTL rather than deregistering.
        """
        if node_id in self.nodes:
            self._failed_nodes.add(node_id)

    def recover_node(self, node_id: str) -> None:
        self._failed_nodes.discard(node_id)
        if self.discovery is not None and node_id in self.nodes:
            self.discovery.register(node_id, self.name)

    def heartbeat_all(self) -> None:
        """Heartbeat every healthy node (the periodic liveness refresh)."""
        if self.discovery is None:
            return
        for node_id in self.nodes:
            if node_id not in self._failed_nodes:
                self.discovery.heartbeat(node_id)

    def fail_region(self) -> None:
        """Take the whole region down (data-center outage)."""
        self.available = False

    def recover_region(self) -> None:
        self.available = True

    @property
    def healthy_node_count(self) -> int:
        return len(self.nodes) - len(self._failed_nodes)

    def merge_all_write_tables(self) -> int:
        """Run the isolation merge on every node (the periodic job)."""
        return sum(node.merge_write_table() for node in self.nodes.values())

    def run_cache_cycles(self) -> None:
        for node in self.nodes.values():
            node.run_cache_cycle()

    def shutdown(self) -> None:
        for node in self.nodes.values():
            node.shutdown()

    def memory_bytes(self) -> int:
        return sum(node.memory_bytes() for node in self.nodes.values())

    def __repr__(self) -> str:
        return (
            f"Region(name={self.name!r}, nodes={len(self.nodes)}, "
            f"healthy={self.healthy_node_count}, available={self.available})"
        )
