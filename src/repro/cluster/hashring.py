"""ID-based consistent hashing for load balancing (§III).

Each node owns a set of virtual points on a 64-bit ring; a profile id maps
to the first node point at or clockwise after its hash.  Virtual nodes
smooth the load distribution, and adding/removing a node only remaps the
keys adjacent to its points — the property that lets IPS scale horizontally
with minimal data movement.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from ..errors import NoHealthyNodeError


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash (blake2b keeps this deterministic across runs)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Consistent hash ring with virtual nodes."""

    def __init__(self, virtual_nodes: int = 128) -> None:
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for replica in range(self.virtual_nodes):
            point = _hash64(f"{node_id}#{replica}".encode())
            # A full 64-bit collision across different nodes is vanishingly
            # unlikely; first owner wins deterministically if it happens.
            if point not in self._owners:
                self._owners[point] = node_id
        self._points = sorted(self._owners.keys())

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._owners = {
            point: owner for point, owner in self._owners.items() if owner != node_id
        }
        self._points = sorted(self._owners.keys())

    def node_for(self, profile_id: int, exclude: set[str] | None = None) -> str:
        """Owner node for a profile id, optionally skipping excluded nodes.

        With ``exclude`` given, walks clockwise past excluded owners — the
        retry path clients use when the primary owner is down.
        """
        if not self._points:
            raise NoHealthyNodeError("hash ring is empty")
        key = _hash64(profile_id.to_bytes(8, "big", signed=False))
        start = bisect_right(self._points, key)
        count = len(self._points)
        seen: set[str] = set()
        for step in range(count):
            point = self._points[(start + step) % count]
            owner = self._owners[point]
            if exclude is None or owner not in exclude:
                return owner
            seen.add(owner)
            if len(seen) == len(self._nodes):
                break
        raise NoHealthyNodeError(
            f"all {len(self._nodes)} nodes excluded for profile {profile_id}"
        )

    def nodes_for(
        self, profile_id: int, count: int, exclude: set[str] | None = None
    ) -> list[str]:
        """Up to ``count`` distinct owners clockwise from the key's point.

        The first entry is exactly :meth:`node_for`'s answer (the primary);
        the rest are the successive distinct nodes — the replica set for
        R-way replication.  Fewer than ``count`` nodes on the ring returns
        them all.  Order is deterministic for a given membership.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not self._points:
            raise NoHealthyNodeError("hash ring is empty")
        key = _hash64(profile_id.to_bytes(8, "big", signed=False))
        start = bisect_right(self._points, key)
        total = len(self._points)
        owners: list[str] = []
        seen: set[str] = set(exclude) if exclude else set()
        eligible = len(self._nodes - seen) if exclude else len(self._nodes)
        for step in range(total):
            owner = self._owners[self._points[(start + step) % total]]
            if owner in seen:
                continue
            seen.add(owner)
            owners.append(owner)
            if len(owners) >= count or len(owners) >= eligible:
                break
        if not owners:
            raise NoHealthyNodeError(
                f"all {len(self._nodes)} nodes excluded for profile {profile_id}"
            )
        return owners

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def load_distribution(self, sample_ids: list[int]) -> dict[str, int]:
        """Histogram of ownership over sample ids (balance diagnostics)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for profile_id in sample_ids:
            counts[self.node_for(profile_id)] += 1
        return counts
