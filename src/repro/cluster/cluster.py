"""Single-region cluster and multi-region deployment composition.

:class:`IPSCluster` builds one region's fleet plus its discovery entries;
:class:`MultiRegionDeployment` wires several regions over a replicated KV
cluster per Fig. 15: every region's nodes serve from their local KV view,
the designated master region's store is the write-through master, and
clients write everywhere / read locally.
"""

from __future__ import annotations

from ..clock import Clock, SystemClock
from ..config import TableConfig
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..storage.kvstore import InMemoryKVStore
from ..storage.replication import ReplicatedKVCluster
from .client import IPSClient
from .discovery import DiscoveryService
from .region import Region


class IPSCluster:
    """One standalone (single-region) IPS cluster."""

    def __init__(
        self,
        config: TableConfig,
        num_nodes: int = 4,
        clock: Clock | None = None,
        cache_capacity_bytes: int = 256 * 1024 * 1024,
        isolation_enabled: bool = True,
        region_name: str = "local",
        tracer=NULL_TRACER,
        registry: MetricsRegistry | None = None,
        node_kwargs: dict | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self.config = config
        self.tracer = tracer
        self.registry = registry
        self.store = InMemoryKVStore()
        self.discovery = DiscoveryService(self.clock)
        self.region = Region(
            region_name,
            config,
            self.store,
            self.clock,
            num_nodes,
            cache_capacity_bytes=cache_capacity_bytes,
            isolation_enabled=isolation_enabled,
            discovery=self.discovery,
            tracer=tracer,
            node_kwargs=node_kwargs,
        )
        #: Expose a deployment-compatible view so IPSClient works unchanged.
        self.regions = {region_name: self.region}

    def client(self, caller: str = "default", **kwargs) -> IPSClient:
        return IPSClient(self, self.region.name, caller=caller, **kwargs)

    def run_background_cycle(self) -> None:
        """One deterministic tick of merge + cache + heartbeat duties."""
        self.region.merge_all_write_tables()
        self.region.run_cache_cycles()
        self.region.heartbeat_all()

    def shutdown(self) -> None:
        self.region.shutdown()


class MultiRegionDeployment:
    """Geo-replicated deployment over a master/slave KV cluster (Fig. 15)."""

    def __init__(
        self,
        config: TableConfig,
        region_names: list[str],
        nodes_per_region: int = 2,
        master_region: str | None = None,
        clock: Clock | None = None,
        cache_capacity_bytes: int = 256 * 1024 * 1024,
        isolation_enabled: bool = True,
        tracer=NULL_TRACER,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not region_names:
            raise ValueError("need at least one region")
        self.clock = clock if clock is not None else SystemClock()
        self.config = config
        self.tracer = tracer
        self.registry = registry
        self.master_region = master_region or region_names[0]
        self.kv_cluster = ReplicatedKVCluster(
            region_names, self.master_region, metrics=registry
        )
        self.discovery = DiscoveryService(self.clock)
        self.regions: dict[str, Region] = {}
        for name in region_names:
            # Only the master region persists through the replicating
            # writer; other regions serve from their local slave replica.
            store = (
                self.kv_cluster.write_store()
                if name == self.master_region
                else self.kv_cluster.read_store(name)
            )
            region = Region(
                name,
                config,
                store,
                self.clock,
                nodes_per_region,
                cache_capacity_bytes=cache_capacity_bytes,
                isolation_enabled=isolation_enabled,
                discovery=self.discovery,
                tracer=tracer,
            )
            self.regions[name] = region

    def client(
        self, local_region: str, caller: str = "default", **kwargs
    ) -> IPSClient:
        return IPSClient(self, local_region, caller=caller, **kwargs)

    def replicate(self, max_ops: int | None = None) -> int:
        """Pump KV replication from master to the regional slaves."""
        return self.kv_cluster.pump(max_ops=max_ops)

    def run_background_cycle(self) -> None:
        for region in self.regions.values():
            region.merge_all_write_tables()
            region.run_cache_cycles()
            region.heartbeat_all()
        self.replicate()

    def fail_region(self, name: str) -> None:
        self.regions[name].fail_region()

    def recover_region(self, name: str) -> None:
        self.regions[name].recover_region()

    def shutdown(self) -> None:
        for region in self.regions.values():
            region.shutdown()
