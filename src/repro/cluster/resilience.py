"""Resilience layer: deadlines, backoff, hedged reads, circuit breakers.

The paper's availability story (Fig. 17: error ceiling ~0.025 % through
machine crashes, network blips and a data-center failover) rests on the
client absorbing faults rather than surfacing them.  This module holds the
four mechanisms that do the absorbing, shared by :class:`~repro.cluster
.client.IPSClient` and anything else that talks to nodes over the RPC
seam:

* :class:`Deadline` — a per-request time budget created once at the edge
  and propagated through every retry, failover and fan-out shard call, so
  a request fails fast instead of multiplying timeouts;
* :class:`BackoffPolicy` — exponential backoff with decorrelated jitter
  between retries of retryable errors (taxonomy:
  :func:`repro.errors.is_retryable`);
* :class:`HedgePolicy` — after a successful call whose modelled latency
  exceeds a trailing percentile threshold, a hedge request is issued to a
  different replica and the faster result wins (tail-latency insurance);
* :class:`CircuitBreaker` — per-node closed/open/half-open breaker; open
  breakers are excluded from ring routing (the same health view discovery
  feeds), and half-open probes readmit a node after it recovers.

Everything is driven by the injected :class:`~repro.clock.Clock` and
seeded RNGs, so chaos runs are deterministic and replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..clock import Clock, SimulatedClock
from ..errors import CircuitOpenError, DeadlineExceededError
from ..obs.registry import Histogram, MetricsRegistry

# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class Deadline:
    """A fixed point in clock time by which a request must complete.

    Created once per client request and passed down through retries and
    fan-out, so every layer shares one budget instead of stacking its own
    timeout on top (the batch-query architecture's deadline-bounded
    fan-out).
    """

    __slots__ = ("_clock", "deadline_ms", "budget_ms")

    def __init__(self, clock: Clock, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self._clock = clock
        self.budget_ms = float(budget_ms)
        self.deadline_ms = clock.now_ms() + budget_ms

    def remaining_ms(self) -> float:
        return self.deadline_ms - self._clock.now_ms()

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0

    def check(self, operation: str) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is gone."""
        if self.expired:
            raise DeadlineExceededError(operation, self.budget_ms)


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter.

    ``delay_ms(attempt, rng)`` grows geometrically from ``base_ms`` and is
    multiplied by a uniform draw in ``[1 - jitter, 1]`` so synchronized
    clients fan out their retries.  Attempt 0 is the first *retry* (the
    initial call never waits).
    """

    base_ms: float = 5.0
    multiplier: float = 2.0
    max_ms: float = 500.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_ms <= 0 or self.multiplier < 1.0 or self.max_ms < self.base_ms:
            raise ValueError(f"invalid backoff policy {self}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_ms(self, attempt: int, rng: random.Random) -> float:
        ceiling = min(self.max_ms, self.base_ms * self.multiplier ** attempt)
        return ceiling * (1.0 - self.jitter * rng.random())


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------

#: Breaker states (the canonical three-state machine).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-node closed/open/half-open circuit breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — calls are rejected locally (no RPC) until
      ``recovery_ms`` of clock time has passed.
    * **half-open** — one probe call is admitted; success closes the
      breaker, failure re-opens it for another ``recovery_ms``.

    All timing is clock-driven so simulated runs are deterministic.
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 5,
        recovery_ms: float = 5_000.0,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {failure_threshold}")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_ms = recovery_ms
        self._on_transition = on_transition
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at_ms = 0
        self._probe_in_flight = False
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _transition(self, new_state: str) -> None:
        if new_state == self._state:
            return
        old = self._state
        self._state = new_state
        self.transitions.append((old, new_state))
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock.now_ms() - self._opened_at_ms >= self.recovery_ms
        ):
            self._transition(HALF_OPEN)
            self._probe_in_flight = False

    def allow(self) -> bool:
        """True when a call may be sent to this node right now.

        In half-open state only the first caller gets a probe slot;
        everyone else is rejected until the probe settles.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_in_flight = False
        if self._state in (HALF_OPEN, OPEN):
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._maybe_half_open()
        self._probe_in_flight = False
        if self._state == HALF_OPEN:
            self._opened_at_ms = self._clock.now_ms()
            self._transition(OPEN)
            return
        self._consecutive_failures += 1
        if self._state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at_ms = self._clock.now_ms()
            self._transition(OPEN)


# ----------------------------------------------------------------------
# Hedging
# ----------------------------------------------------------------------


class HedgePolicy:
    """Tail-latency hedging trigger.

    Observed per-call modelled latencies feed a log-bucket histogram; once
    ``min_samples`` have been seen, any call slower than the trailing
    ``percentile`` (and at least ``min_threshold_ms``) triggers a hedge
    request to a different replica.  The faster of the two results wins.
    """

    def __init__(
        self,
        percentile: float = 95.0,
        min_samples: int = 50,
        min_threshold_ms: float = 1.0,
        threshold_ms: float | None = None,
    ) -> None:
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        self.percentile = percentile
        self.min_samples = min_samples
        self.min_threshold_ms = min_threshold_ms
        #: Fixed threshold override; ``None`` derives it from the histogram.
        self.threshold_ms = threshold_ms
        self._hist = Histogram()

    def observe(self, latency_ms: float) -> None:
        self._hist.record(max(0.0, latency_ms))

    def current_threshold_ms(self) -> float | None:
        """The latency above which a hedge fires, or None if not yet armed."""
        if self.threshold_ms is not None:
            return self.threshold_ms
        if self._hist.count < self.min_samples:
            return None
        return max(self.min_threshold_ms, self._hist.percentile(self.percentile))

    def should_hedge(self, latency_ms: float) -> bool:
        threshold = self.current_threshold_ms()
        return threshold is not None and latency_ms > threshold


# ----------------------------------------------------------------------
# Configuration + stats + executor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the whole layer; one object wires a client."""

    #: Per-request time budget; ``None`` disables deadlines.
    deadline_ms: float | None = 2_000.0
    #: Total attempts per region (initial call + retries of retryables).
    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Hedging of slow successful reads; ``None`` disables hedging.
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
    breaker_failure_threshold: int = 5
    breaker_recovery_ms: float = 5_000.0
    seed: int = 0


@dataclass
class ResilienceStats:
    """Counters the dashboard and Fig. 17 bench report."""

    retries: int = 0
    backoff_waits: int = 0
    backoff_wait_ms: float = 0.0
    hedges_fired: int = 0
    hedges_won: int = 0
    breaker_rejections: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_half_opens: int = 0
    deadline_exceeded: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "retries": float(self.retries),
            "backoff_waits": float(self.backoff_waits),
            "backoff_wait_ms": self.backoff_wait_ms,
            "hedges_fired": float(self.hedges_fired),
            "hedges_won": float(self.hedges_won),
            "breaker_rejections": float(self.breaker_rejections),
            "breaker_opens": float(self.breaker_opens),
            "breaker_closes": float(self.breaker_closes),
            "breaker_half_opens": float(self.breaker_half_opens),
            "deadline_exceeded": float(self.deadline_exceeded),
        }


class ResilientExecutor:
    """Shared breaker/backoff/hedge state for one client.

    The client keeps its routing logic; the executor owns the per-node
    breakers, the backoff RNG, the hedge policy, and the metrics plumbing,
    exposing small primitives the client's retry loops call:

    * :meth:`open_nodes` — breaker-excluded nodes for ring routing;
    * :meth:`admit` / :meth:`record_success` / :meth:`record_failure` —
      breaker bookkeeping around each RPC;
    * :meth:`backoff_before_retry` — jittered wait charged to the
      simulated clock (and the request deadline);
    * :meth:`observe_latency` / :meth:`should_hedge` — hedging trigger.
    """

    def __init__(
        self,
        clock: Clock,
        config: ResilienceConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock
        self.config = config if config is not None else ResilienceConfig()
        self.stats = ResilienceStats()
        self._rng = random.Random(self.config.seed)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._registry = registry
        if registry is not None:
            self._retry_counter = registry.counter("resilience_retries")
            self._hedge_fired = registry.counter("resilience_hedges", outcome="fired")
            self._hedge_won = registry.counter("resilience_hedges", outcome="won")
            self._deadline_counter = registry.counter("resilience_deadline_exceeded")
            self._breaker_reject = registry.counter("resilience_breaker_rejections")
        else:
            self._retry_counter = None
            self._hedge_fired = None
            self._hedge_won = None
            self._deadline_counter = None
            self._breaker_reject = None

    # -- deadlines -------------------------------------------------------

    def deadline(self) -> Deadline | None:
        """A fresh per-request deadline (None when deadlines are off)."""
        if self.config.deadline_ms is None:
            return None
        return Deadline(self.clock, self.config.deadline_ms)

    def record_deadline_exceeded(self) -> None:
        self.stats.deadline_exceeded += 1
        if self._deadline_counter is not None:
            self._deadline_counter.inc()

    # -- breakers --------------------------------------------------------

    def breaker_for(self, node_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(node_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.clock,
                failure_threshold=self.config.breaker_failure_threshold,
                recovery_ms=self.config.breaker_recovery_ms,
                on_transition=lambda old, new, node_id=node_id: (
                    self._on_breaker_transition(node_id, old, new)
                ),
            )
            self._breakers[node_id] = breaker
        return breaker

    def _on_breaker_transition(self, node_id: str, old: str, new: str) -> None:
        if new == OPEN:
            self.stats.breaker_opens += 1
        elif new == CLOSED:
            self.stats.breaker_closes += 1
        elif new == HALF_OPEN:
            self.stats.breaker_half_opens += 1
        if self._registry is not None:
            self._registry.counter(
                "resilience_breaker_transitions", node=node_id, to=new
            ).inc()

    def open_nodes(self) -> set[str]:
        """Nodes whose breaker currently rejects calls (the health view)."""
        return {
            node_id
            for node_id, breaker in self._breakers.items()
            if breaker.state == OPEN
        }

    def admit(self, node_id: str) -> None:
        """Raise :class:`CircuitOpenError` unless the breaker admits a call."""
        if not self.breaker_for(node_id).allow():
            self.stats.breaker_rejections += 1
            if self._breaker_reject is not None:
                self._breaker_reject.inc()
            raise CircuitOpenError(node_id)

    def record_success(self, node_id: str) -> None:
        self.breaker_for(node_id).record_success()

    def record_failure(self, node_id: str) -> None:
        self.breaker_for(node_id).record_failure()

    def breaker_states(self) -> dict[str, str]:
        """Current state per node (dashboard / monitoring view)."""
        return {
            node_id: breaker.state
            for node_id, breaker in sorted(self._breakers.items())
        }

    # -- backoff ---------------------------------------------------------

    def backoff_before_retry(self, attempt: int, deadline: Deadline | None) -> None:
        """Wait out the jittered backoff for retry ``attempt``.

        The wait is charged to the simulated clock when one is active, so
        it consumes the request deadline exactly like real elapsed time
        would; under a wall clock no real sleep is performed (the repro is
        in-process and synchronous — sleeping would only slow tests).
        """
        delay_ms = self.config.backoff.delay_ms(attempt, self._rng)
        if deadline is not None:
            delay_ms = min(delay_ms, max(0.0, deadline.remaining_ms()))
        self.stats.retries += 1
        self.stats.backoff_waits += 1
        self.stats.backoff_wait_ms += delay_ms
        if self._retry_counter is not None:
            self._retry_counter.inc()
        if isinstance(self.clock, SimulatedClock) and delay_ms > 0:
            self.clock.advance(max(1, round(delay_ms)))

    # -- hedging ---------------------------------------------------------

    def observe_latency(self, latency_ms: float) -> None:
        if self.config.hedge is not None:
            self.config.hedge.observe(latency_ms)

    def should_hedge(self, latency_ms: float) -> bool:
        return (
            self.config.hedge is not None
            and self.config.hedge.should_hedge(latency_ms)
        )

    def record_hedge(self, won: bool) -> None:
        self.stats.hedges_fired += 1
        if self._hedge_fired is not None:
            self._hedge_fired.inc()
        if won:
            self.stats.hedges_won += 1
            if self._hedge_won is not None:
                self._hedge_won.inc()
