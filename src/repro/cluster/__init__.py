"""Cluster layer: load balancing, discovery, client and multi-region.

IPS scales horizontally by sharding profile ids over instances with an
ID-based consistent hash; instances register with a Consul-like discovery
service and clients refresh the instance list periodically (§III).  For
fault tolerance, deployments span multiple regions: clients write to every
region but query only the local one, and only one region's instances
persist to the master KV cluster (§III-G, Fig. 15).
"""

from .autoscaler import AutoScaler, ScalingEvent, ScalingPolicy
from .client import ClientStats, IPSClient
from .cluster import IPSCluster, MultiRegionDeployment
from .discovery import DiscoveryService, InstanceRecord
from .hashring import ConsistentHashRing
from .region import Region
from .resilience import (
    BackoffPolicy,
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    ResilienceConfig,
    ResilienceStats,
    ResilientExecutor,
)

__all__ = [
    "AutoScaler",
    "BackoffPolicy",
    "CircuitBreaker",
    "ClientStats",
    "ConsistentHashRing",
    "Deadline",
    "DiscoveryService",
    "HedgePolicy",
    "IPSCluster",
    "IPSClient",
    "InstanceRecord",
    "MultiRegionDeployment",
    "Region",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientExecutor",
    "ScalingEvent",
    "ScalingPolicy",
]
