"""Service discovery (the Consul substitute).

IPS instances register their address when ready and deregister on
shutdown; upstream clients refresh the instance list periodically rather
than per request (§III).  Registrations carry a TTL so a crashed node that
never deregistered ages out of the healthy set, and a monotonically
increasing *epoch* lets clients detect that their cached view is stale.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..clock import Clock, SystemClock


@dataclass(frozen=True)
class InstanceRecord:
    """One registered IPS instance."""

    node_id: str
    region: str
    address: str
    registered_at_ms: int


class DiscoveryService:
    """In-process registry with TTL-based health."""

    def __init__(self, clock: Clock | None = None, ttl_ms: int = 30_000) -> None:
        if ttl_ms <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_ms}")
        self._clock = clock if clock is not None else SystemClock()
        self.ttl_ms = ttl_ms
        self._records: dict[str, InstanceRecord] = {}
        self._heartbeats: dict[str, int] = {}
        self._epoch = 0
        self._lock = threading.Lock()

    def register(self, node_id: str, region: str, address: str = "") -> None:
        """Register an instance as ready to serve."""
        now_ms = self._clock.now_ms()
        with self._lock:
            self._records[node_id] = InstanceRecord(node_id, region, address, now_ms)
            self._heartbeats[node_id] = now_ms
            self._epoch += 1

    def deregister(self, node_id: str) -> None:
        with self._lock:
            if self._records.pop(node_id, None) is not None:
                self._heartbeats.pop(node_id, None)
                self._epoch += 1

    def heartbeat(self, node_id: str) -> bool:
        """Refresh a node's TTL; False if the node is not registered."""
        with self._lock:
            if node_id not in self._records:
                return False
            self._heartbeats[node_id] = self._clock.now_ms()
            return True

    def healthy_instances(self, region: str | None = None) -> list[InstanceRecord]:
        """Instances whose heartbeat is within the TTL, optionally by region."""
        now_ms = self._clock.now_ms()
        with self._lock:
            alive = [
                record
                for node_id, record in self._records.items()
                if now_ms - self._heartbeats[node_id] <= self.ttl_ms
                and (region is None or record.region == region)
            ]
        return sorted(alive, key=lambda record: record.node_id)

    def expire_stale(self) -> list[str]:
        """Drop records past their TTL; returns the expired node ids."""
        now_ms = self._clock.now_ms()
        with self._lock:
            expired = [
                node_id
                for node_id, beat in self._heartbeats.items()
                if now_ms - beat > self.ttl_ms
            ]
            for node_id in expired:
                del self._records[node_id]
                del self._heartbeats[node_id]
            if expired:
                self._epoch += 1
        return expired

    @property
    def epoch(self) -> int:
        """Bumped on every membership change; clients compare to refresh."""
        with self._lock:
            return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
