"""Per-key result envelopes for the batched (multi-get) read path.

Recommendation backends fetch profiles for *hundreds of candidate items
per ranking request*, so the batched read APIs return one envelope per
requested key rather than raising on the first problem: a bad shard or a
storage hiccup degrades the affected keys while the rest of the batch is
served normally.  Errors travel as strings (exception class name plus
message), mirroring what a real RPC response could carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.query import FeatureResult


@dataclass(frozen=True)
class BatchKeyResult:
    """Outcome of one key inside a batched read.

    Exactly one of the two shapes occurs:

    * ``ok=True`` — ``value`` holds the query result (possibly empty, for
      a profile with no stored data: the same contract as the single-key
      reads);
    * ``ok=False`` — ``error`` names the exception type and
      ``error_message`` carries its text; ``value`` is ``None``.
    """

    profile_id: int
    ok: bool
    value: list[FeatureResult] | None = None
    error: str | None = None
    error_message: str = ""

    @classmethod
    def success(
        cls, profile_id: int, value: list[FeatureResult]
    ) -> "BatchKeyResult":
        return cls(profile_id=profile_id, ok=True, value=value)

    @classmethod
    def failure(cls, profile_id: int, exc: BaseException) -> "BatchKeyResult":
        return cls(
            profile_id=profile_id,
            ok=False,
            error=type(exc).__name__,
            error_message=str(exc),
        )


@dataclass
class BatchReadOutcome:
    """A whole batch's answer: per-key envelopes aligned with the request.

    ``results[i]`` answers ``profile_ids[i]`` of the request, including
    duplicated keys (a deduplicated key's envelope is shared by every
    position that asked for it).
    """

    results: list[BatchKeyResult] = field(default_factory=list)

    @property
    def ok_count(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def error_count(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def values(self) -> list[list[FeatureResult] | None]:
        """Per-position values; ``None`` marks a failed key."""
        return [result.value if result.ok else None for result in self.results]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> BatchKeyResult:
        return self.results[index]


def dedup_preserving_order(profile_ids) -> list[int]:
    """Unique profile ids in first-seen order (the in-batch dedup pass)."""
    return list(dict.fromkeys(profile_ids))
