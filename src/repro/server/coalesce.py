"""Server-side request coalescing: singleflight + adaptive batch windows.

Two layers sit between the node's read API and the engine, both from the
"Enhanced Batch Query Architecture" playbook (PAPERS.md):

* :class:`SingleFlight` — concurrent reads for the *same* ``(profile,
  normalized query)`` key collapse into one execution; the leader runs
  the query, every coalesced waiter shares the result (or the failure —
  a partial failure propagates to all waiters, never silently drops).
* :class:`AdaptiveBatcher` — concurrent reads for the same normalized
  query *shape* but different profiles accumulate inside a short batch
  window and execute as one node-level multi-get pass.  The window is
  adaptive: it stays at zero (no added latency) until concurrent
  arrivals are actually observed, and disarms again after consecutive
  under-filled batches — so idle traffic never pays the window.

Both honour a per-waiter :class:`~repro.cluster.resilience.Deadline`:
waiters re-check their own budget while blocked, so one slow execution
cannot pin a short-deadline request past its budget.  Window timing uses
``repro.clock.perf_ms`` (wall time) because batch windows bound *real*
queueing delay, not modelled time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import DeadlineExceededError
from ..obs.registry import Histogram


@dataclass(frozen=True)
class CoalesceConfig:
    """Tuning for the node's coalescing layer.

    ``window_ms`` is the maximum wall time an *armed* batch window stays
    open; ``max_batch`` closes it early.  A window arms itself once
    concurrent arrivals are observed and disarms after ``disarm_after``
    consecutive batches smaller than ``min_batch``.  ``batching=False``
    keeps singleflight only.
    """

    window_ms: float = 2.0
    max_batch: int = 64
    min_batch: int = 2
    disarm_after: int = 2
    batching: bool = True

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {self.window_ms}")
        if self.max_batch < 1 or self.min_batch < 1:
            raise ValueError(
                f"batch bounds must be >= 1, got max={self.max_batch} "
                f"min={self.min_batch}"
            )
        if self.disarm_after < 1:
            raise ValueError(
                f"disarm_after must be >= 1, got {self.disarm_after}"
            )


def _wait_event(event: threading.Event, deadline, operation: str) -> None:
    """Block on ``event``, honouring the waiter's own deadline.

    The loop re-checks the deadline's clock each pass so it works with
    both system and simulated clocks; a bounded poll interval keeps
    simulated-clock waiters from sleeping past their budget.
    """
    if deadline is None:
        event.wait()
        return
    while not event.is_set():
        deadline.check(operation)
        remaining_s = max(deadline.remaining_ms(), 0.0) / 1000.0
        if event.wait(timeout=max(0.001, min(remaining_s, 0.05))):
            return
    # Event set between the loop check and the wait: nothing left to do.


# ----------------------------------------------------------------------
# Singleflight
# ----------------------------------------------------------------------


@dataclass
class SingleFlightStats:
    """How much duplicate work the singleflight layer absorbed."""

    executions: int = 0
    #: Requests that joined an in-flight execution instead of running.
    coalesced: int = 0
    #: Coalesced waiters that received the leader's failure.
    errors_shared: int = 0


class _Flight:
    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class SingleFlight:
    """Coalesce concurrent identical calls into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict = {}
        self.stats = SingleFlightStats()

    def execute(self, key, fn, deadline=None):
        """Run ``fn`` once per concurrent ``key``; returns ``(value, leader)``.

        The first caller for a key becomes the leader and executes
        ``fn``; callers arriving while it runs block until it finishes
        and share its outcome.  A leader exception is re-raised by every
        waiter.  ``leader`` in the return tells the caller whether the
        value is privately owned (leader) or shared (copy before
        mutating).  Waiters honour their own ``deadline`` while blocked.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                is_leader = True
            else:
                is_leader = False
        if is_leader:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                self.stats.executions += 1
                flight.done.set()
            return flight.value, True
        self.stats.coalesced += 1
        _wait_event(flight.done, deadline, "singleflight.wait")
        if flight.error is not None:
            self.stats.errors_shared += 1
            raise flight.error
        return flight.value, False


# ----------------------------------------------------------------------
# Adaptive batch windows
# ----------------------------------------------------------------------


@dataclass
class BatchWindowStats:
    """Occupancy telemetry for the adaptive batch windows."""

    batches: int = 0
    batched_keys: int = 0
    #: Requests that joined an already-open window.
    joined: int = 0
    #: Batches whose leader actually held an armed (non-zero) window.
    armed_windows: int = 0
    #: Window-occupancy distribution (keys per executed batch).
    occupancy_hist: Histogram = field(
        default_factory=lambda: Histogram(min_ms=1.0, max_ms=1024.0, growth=2.0)
    )

    @property
    def mean_occupancy(self) -> float:
        return self.batched_keys / self.batches if self.batches else 0.0


class _Batch:
    __slots__ = ("profile_ids", "full", "done", "results", "error", "closed")

    def __init__(self, first_profile_id: int) -> None:
        #: Insertion-ordered, deduplicated member profiles.
        self.profile_ids: dict[int, None] = {first_profile_id: None}
        self.full = threading.Event()
        self.done = threading.Event()
        self.results: dict | None = None
        self.error: BaseException | None = None
        self.closed = False


class AdaptiveBatcher:
    """Accumulate same-shape reads into one multi-get execution.

    ``submit`` is called with the query's fingerprint as the *shape key*
    — fingerprint equality means the normalized query (window included)
    is identical, so one execution closure is valid for every member
    profile.  The first caller for a shape becomes the batch leader: it
    holds the window open (if armed), snapshots the members, runs
    ``execute_many`` once and distributes per-profile results; members
    arriving during the window just wait.
    """

    def __init__(self, config: CoalesceConfig, registry=None) -> None:
        self.config = config
        self.stats = BatchWindowStats()
        if registry is not None:
            self.stats.occupancy_hist = registry.histogram(
                "batch_window_occupancy", min_ms=1.0, max_ms=1024.0, growth=2.0
            )
        self._lock = threading.Lock()
        self._open: dict = {}
        #: shape_key -> number of closed batches currently executing;
        #: an arrival during a same-shape execution is the "concurrent
        #: arrivals observed" signal that arms the window (a disarmed
        #: leader closes its batch too fast for joins to witness it).
        self._executing: dict = {}
        self._armed = False
        self._small_batches = 0

    @property
    def armed(self) -> bool:
        """Whether the next batch leader will hold the window open."""
        return self._armed

    def submit(self, shape_key, profile_id: int, execute_many, deadline=None):
        """Route one read through the batch window for its query shape.

        ``execute_many(profile_ids)`` must return ``{profile_id: result
        | Exception}`` — per-profile failures are raised only for their
        own waiter, while an exception escaping ``execute_many`` itself
        fails the whole batch (every waiter re-raises it).
        """
        with self._lock:
            batch = self._open.get(shape_key)
            if batch is not None and not batch.closed:
                is_leader = False
                batch.profile_ids.setdefault(profile_id, None)
                # Concurrency observed: keep (or start) holding windows.
                self._armed = True
                self._small_batches = 0
                if len(batch.profile_ids) >= self.config.max_batch:
                    batch.full.set()
            else:
                batch = _Batch(profile_id)
                self._open[shape_key] = batch
                is_leader = True
                if self._executing.get(shape_key, 0) > 0:
                    # A same-shape batch is executing right now: this
                    # arrival would have fit in its window.  Arm.
                    self._armed = True
                    self._small_batches = 0
                window_armed = self._armed and self.config.window_ms > 0
        if not is_leader:
            self.stats.joined += 1
            _wait_event(batch.done, deadline, "batch_window.wait")
            return self._extract(batch, profile_id)

        if window_armed:
            self.stats.armed_windows += 1
            batch.full.wait(self.config.window_ms / 1000.0)
        with self._lock:
            batch.closed = True
            if self._open.get(shape_key) is batch:
                del self._open[shape_key]
            members = list(batch.profile_ids)
            if len(members) >= self.config.min_batch:
                self._armed = True
                self._small_batches = 0
            else:
                self._small_batches += 1
                if self._small_batches >= self.config.disarm_after:
                    self._armed = False
            self._executing[shape_key] = self._executing.get(shape_key, 0) + 1
        self.stats.batches += 1
        self.stats.batched_keys += len(members)
        self.stats.occupancy_hist.record(len(members))
        try:
            # A leader whose own budget died during the window still must
            # settle the batch (inside try: waiters share the failure).
            if deadline is not None:
                deadline.check("batch_window.execute")
            batch.results = execute_many(members)
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            batch.done.set()
            with self._lock:
                remaining = self._executing.get(shape_key, 1) - 1
                if remaining > 0:
                    self._executing[shape_key] = remaining
                else:
                    self._executing.pop(shape_key, None)
        return self._extract(batch, profile_id)

    @staticmethod
    def _extract(batch: _Batch, profile_id: int):
        if batch.error is not None:
            raise batch.error
        result = (batch.results or {}).get(profile_id)
        if isinstance(result, BaseException):
            raise result
        return result
