"""Write-invalidated query-result cache for the server-side hot-read path.

Under the Zipf-skewed traffic the paper assumes, a few thousand hot
profiles absorb most reads, and each read re-executes the full
merge/sort/cut pipeline on the node.  :class:`QueryResultCache` memoizes
finished results keyed by ``(profile_id, query fingerprint)`` — the
fingerprint (:func:`repro.core.query.query_fingerprint`) canonicalizes the
query and embeds the *resolved* time window, so a CURRENT window rotates
to a new key as the clock advances and never serves a stale horizon.

Correctness rests on *precise invalidation*: every mutation path — node
writes (direct or isolation-merged), ingest applies, maintenance
(compaction / truncation / shrink), WAL recovery installs, and chaos
crash reverts — must invalidate the touched profile's entries before the
mutated state becomes readable.  The hooks live next to the existing
dirty-tracking seams (``GCache.mark_dirty`` / install / ``drop_all`` and
the engine's maintenance entry point); the differential oracle in
``tests/test_result_cache_oracle.py`` proves the set is complete by
replaying every mutation path against a cached and an uncached node and
requiring byte-identical reads.

Installs are epoch-guarded against the read/write race: a reader captures
the profile's invalidation epoch *before* executing, and the install is
discarded if any invalidation landed in between — the freshly computed
result may predate the write that invalidated it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class ResultCacheStats:
    """Counters for the hit-ratio / invalidation dashboard panel."""

    hits: int = 0
    misses: int = 0
    installs: int = 0
    #: Installs discarded because an invalidation raced the execution.
    install_races: int = 0
    #: Invalidation events (one per mutated profile or drop-all).
    invalidations: int = 0
    #: Cached entries removed by those invalidations.
    entries_invalidated: int = 0
    #: Entries removed by LRU capacity pressure.
    evictions: int = 0
    #: Reads that had no fingerprint (opaque predicate, unregistered
    #: decay fn, invalid arguments) and bypassed the cache.
    uncacheable: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryResultCache:
    """LRU of finished query results with per-profile invalidation.

    Entries are stored as immutable tuples and returned as fresh lists,
    so callers can mutate what they get back without corrupting the
    cache.  A per-profile fingerprint index makes invalidating one
    profile O(entries for that profile), not O(cache).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        registry=None,
        name: str = "result_cache",
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = ResultCacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._by_profile: dict[int, set] = {}
        self._profile_epochs: dict[int, int] = {}
        self._global_epoch = 0
        if registry is not None:
            self._hits = registry.counter(f"{name}_hits")
            self._misses = registry.counter(f"{name}_misses")
            self._invalidations = registry.counter(f"{name}_invalidations")
            self._entries_gauge = registry.gauge(f"{name}_entries")
        else:
            self._hits = self._misses = self._invalidations = None
            self._entries_gauge = None

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def epoch(self, profile_id: int) -> tuple[int, int]:
        """Invalidation epoch to capture before executing a cacheable read."""
        with self._lock:
            return (self._global_epoch, self._profile_epochs.get(profile_id, 0))

    def get(self, profile_id: int, fingerprint: tuple) -> list | None:
        """Cached result as a fresh list, or ``None`` on a miss."""
        key = (profile_id, fingerprint)
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                if self._misses is not None:
                    self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._hits is not None:
                self._hits.inc()
            return list(value)

    def put(
        self,
        profile_id: int,
        fingerprint: tuple,
        value,
        epoch: tuple[int, int],
    ) -> bool:
        """Install a result computed under ``epoch``; False if it raced.

        ``epoch`` must come from :meth:`epoch` *before* the execution
        read any profile state.  If an invalidation (= a mutation)
        arrived since, the computed result may be stale and is dropped.
        """
        with self._lock:
            current = (
                self._global_epoch,
                self._profile_epochs.get(profile_id, 0),
            )
            if epoch != current:
                self.stats.install_races += 1
                return False
            key = (profile_id, fingerprint)
            if key not in self._entries:
                self._by_profile.setdefault(profile_id, set()).add(fingerprint)
            self._entries[key] = tuple(value)
            self._entries.move_to_end(key)
            self.stats.installs += 1
            while len(self._entries) > self.max_entries:
                old_pid, old_fp = self._entries.popitem(last=False)[0]
                fps = self._by_profile.get(old_pid)
                if fps is not None:
                    fps.discard(old_fp)
                    if not fps:
                        del self._by_profile[old_pid]
                self.stats.evictions += 1
            self._update_gauge()
            return True

    # ------------------------------------------------------------------
    # Invalidation side (wired to every mutation path by the node)
    # ------------------------------------------------------------------

    def invalidate(self, profile_id: int) -> int:
        """One profile mutated: drop its entries, bump its epoch."""
        with self._lock:
            self._profile_epochs[profile_id] = (
                self._profile_epochs.get(profile_id, 0) + 1
            )
            self.stats.invalidations += 1
            if self._invalidations is not None:
                self._invalidations.inc()
            fingerprints = self._by_profile.pop(profile_id, None)
            if not fingerprints:
                return 0
            for fingerprint in fingerprints:
                self._entries.pop((profile_id, fingerprint), None)
            dropped = len(fingerprints)
            self.stats.entries_invalidated += dropped
            self._update_gauge()
            return dropped

    def invalidate_all(self) -> int:
        """Whole-node mutation (crash revert, recovery): drop everything."""
        with self._lock:
            self._global_epoch += 1
            dropped = len(self._entries)
            self._entries.clear()
            self._by_profile.clear()
            self.stats.invalidations += 1
            if self._invalidations is not None:
                self._invalidations.inc()
            self.stats.entries_invalidated += dropped
            self._update_gauge()
            return dropped

    # ------------------------------------------------------------------

    def _update_gauge(self) -> None:
        if self._entries_gauge is not None:
            self._entries_gauge.set(float(len(self._entries)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"QueryResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
