"""Read-write isolation via a separate write table (§III-F).

To keep query latency stable under real-time ingestion, IPS first lands
incoming writes in a lightweight *write table* and merges them into the
main table every few seconds, applying the configured aggregate functions.
The write table's memory usage is capped so backfill bursts cannot starve
the serving cache; the whole feature sits behind a hot switch so operators
can toggle it per table at runtime (e.g. around offline bulk loads).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence


@dataclass
class PendingWrite:
    """One buffered ``add_profile`` call."""

    profile_id: int
    timestamp_ms: int
    slot: int
    type_id: int
    fid: int
    counts: Sequence[int]

    def memory_bytes(self) -> int:
        return 64 + 8 * len(self.counts)


@dataclass
class WriteTableStats:
    buffered: int = 0
    merged: int = 0
    merge_passes: int = 0
    overflow_syncs: int = 0


class WriteTable:
    """Bounded buffer of pending writes for one table.

    :meth:`append` buffers a write and reports whether the caller must fall
    back to a synchronous main-table write (buffer at capacity — the
    "overflow" path keeps ingestion lossless while honouring the memory
    cap).  :meth:`drain` atomically takes the buffered batch for merging.
    """

    def __init__(self, memory_limit_bytes: int = 8 * 1024 * 1024) -> None:
        if memory_limit_bytes <= 0:
            raise ValueError(
                f"memory limit must be positive, got {memory_limit_bytes}"
            )
        self.memory_limit_bytes = memory_limit_bytes
        self._writes: list[PendingWrite] = []
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = WriteTableStats()

    def append(self, write: PendingWrite) -> bool:
        """Buffer a write; returns False when the memory cap is hit."""
        cost = write.memory_bytes()
        with self._lock:
            if self._bytes + cost > self.memory_limit_bytes:
                self.stats.overflow_syncs += 1
                return False
            self._writes.append(write)
            self._bytes += cost
            self.stats.buffered += 1
            return True

    def drain(self) -> list[PendingWrite]:
        """Take everything buffered so far (one merge batch)."""
        with self._lock:
            batch = self._writes
            self._writes = []
            self._bytes = 0
        if batch:
            self.stats.merged += len(batch)
            self.stats.merge_passes += 1
        return batch

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._writes)

    @property
    def memory_bytes(self) -> int:
        with self._lock:
            return self._bytes
