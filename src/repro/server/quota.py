"""Per-caller QPS quotas (§IV intro and §V-b).

IPS clusters are multi-tenant; a QPS quota is enforced per upstream caller
identity and requests beyond it are rejected until usage falls below the
limit.  The implementation is a token bucket per caller: tokens refill at
the quota rate up to a burst capacity, each admitted request consumes one
token, and an empty bucket rejects with
:class:`~repro.errors.QuotaExceededError`.
"""

from __future__ import annotations

import threading

from ..clock import Clock, SystemClock
from ..errors import QuotaExceededError


class TokenBucket:
    """Token bucket refilled continuously at ``rate_qps``."""

    def __init__(
        self, rate_qps: float, burst: float | None, clock: Clock
    ) -> None:
        if rate_qps <= 0:
            raise ValueError(f"rate must be positive, got {rate_qps}")
        self.rate_qps = rate_qps
        self.burst = burst if burst is not None else max(rate_qps, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last_refill_ms = clock.now_ms()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; False means over quota."""
        with self._lock:
            now_ms = self._clock.now_ms()
            elapsed_s = max(0, now_ms - self._last_refill_ms) / 1000.0
            self._tokens = min(self.burst, self._tokens + elapsed_s * self.rate_qps)
            # Never move the watermark backwards: a clock step into the past
            # must not let the same wall-time interval refill twice.
            self._last_refill_ms = max(self._last_refill_ms, now_ms)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            return self._tokens


class QuotaManager:
    """Quota registry keyed by caller identity.

    Callers without a configured quota fall back to ``default_qps``
    (``None`` meaning unlimited).  Quotas can be updated live, matching the
    paper's hot-reload operational requirement.
    """

    def __init__(
        self, clock: Clock | None = None, default_qps: float | None = None
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._default_qps = default_qps
        self._buckets: dict[str, TokenBucket] = {}
        self._quotas: dict[str, float] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    def set_quota(self, caller: str, qps: float, burst: float | None = None) -> None:
        """Install or hot-update a caller's quota."""
        with self._lock:
            self._quotas[caller] = qps
            self._buckets[caller] = TokenBucket(qps, burst, self._clock)

    def remove_quota(self, caller: str) -> None:
        with self._lock:
            self._quotas.pop(caller, None)
            self._buckets.pop(caller, None)

    def quota_for(self, caller: str) -> float | None:
        with self._lock:
            return self._quotas.get(caller, self._default_qps)

    def admit(self, caller: str) -> None:
        """Admit one request or raise :class:`QuotaExceededError`."""
        bucket = self._bucket_for(caller)
        if bucket is None:
            self.admitted += 1
            return
        if bucket.try_acquire():
            self.admitted += 1
            return
        self.rejected += 1
        raise QuotaExceededError(caller, bucket.rate_qps)

    def _bucket_for(self, caller: str) -> TokenBucket | None:
        with self._lock:
            bucket = self._buckets.get(caller)
            if bucket is None and self._default_qps is not None:
                bucket = TokenBucket(self._default_qps, None, self._clock)
                self._buckets[caller] = bucket
            return bucket
