"""IPS server-side components.

An :class:`~repro.server.node.IPSNode` is one IPS instance: the profile
engine fronted by GCache, persisted through a persistence manager, guarded
by per-caller QPS quotas (§V-b), with read-write isolation via a separate
write table (§III-F) and a simulated Thrift-style RPC surface used by the
cluster client and the latency experiments.
"""

from .batch import BatchKeyResult, BatchReadOutcome
from .coalesce import (
    AdaptiveBatcher,
    BatchWindowStats,
    CoalesceConfig,
    SingleFlight,
    SingleFlightStats,
)
from .isolation import WriteTable
from .maintenance import MaintenancePool, MaintenancePoolStats
from .node import IPSNode, NodeStats
from .proxy import RPCNodeProxy
from .quota import QuotaManager, TokenBucket
from .recovery import (
    CheckpointReport,
    NodeDurability,
    RecoveryReport,
    attach_memory_durability,
)
from .result_cache import QueryResultCache, ResultCacheStats
from .rpc import LatencyModel, RPCServer, RPCStats
from .service import IPSService

__all__ = [
    "AdaptiveBatcher",
    "BatchKeyResult",
    "BatchReadOutcome",
    "BatchWindowStats",
    "CheckpointReport",
    "CoalesceConfig",
    "IPSNode",
    "IPSService",
    "LatencyModel",
    "MaintenancePool",
    "MaintenancePoolStats",
    "NodeDurability",
    "NodeStats",
    "QueryResultCache",
    "QuotaManager",
    "RPCNodeProxy",
    "RPCServer",
    "RPCStats",
    "RecoveryReport",
    "ResultCacheStats",
    "SingleFlight",
    "SingleFlightStats",
    "TokenBucket",
    "WriteTable",
    "attach_memory_durability",
]
