"""Crash recovery: checkpoints + WAL replay behind the node's ack.

The durability contract (Monolith-style snapshot + log replay, grafted
onto IPS §III-E's asynchronous flush path):

* every acked write is first appended to the node's
  :class:`~repro.storage.wal.WriteAheadLog` — the ack happens only after
  the append commits under the log's sync mode;
* a **checkpoint** captures a complete replay base — the state every
  profile had at a WAL sequence barrier — then truncates the log through
  that barrier;
* **recovery** loads the checkpoint, replays the WAL tail (idempotent:
  records are deduplicated by sequence and applied onto the checkpoint
  base, never onto whatever happens to sit in the KV store), reinstalls
  the rebuilt profiles as resident *and dirty* — rebuilding the dirty
  list — and sweeps fine-grained slice orphans left by torn flushes.

Why replay onto the checkpoint base instead of the KV value: a background
flusher may have persisted a profile *after* the checkpoint barrier, so
the KV value can already contain tail writes; replaying onto it would
double-apply them.  The checkpoint base contains exactly the writes with
``sequence <= checkpoint barrier``, so base + tail is exact.

Checkpoints serialize writes against the ack path (no write can ack while
the barrier sequence is being captured) and must not run concurrently
with engine maintenance — call :meth:`NodeDurability.checkpoint` from the
same driver loop that runs maintenance, like every other background duty
in this codebase.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass, field

from ..clock import perf_ms
from ..core.profile import ProfileData
from ..errors import StorageError
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..storage.compression import compress, decompress
from ..storage.serialization import (
    ProfileCodec,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from ..storage.wal import (
    NULL_SITE,
    CrashPointSite,
    LogFile,
    MemoryLogFile,
    WriteAheadLog,
)

CHECKPOINT_MAGIC = 0x49505343  # "IPSC"
CHECKPOINT_VERSION = 1
_CRC = struct.Struct("<I")


# ----------------------------------------------------------------------
# Logical write records
# ----------------------------------------------------------------------


def encode_write(
    profile_id: int,
    timestamp_ms: int,
    slot: int,
    type_id: int,
    fid: int,
    counts,
) -> bytes:
    """Varint-encode one logical ``add_profile`` for the WAL payload."""
    out = bytearray()
    write_varint(out, profile_id)
    write_varint(out, timestamp_ms)
    write_varint(out, slot)
    write_varint(out, type_id)
    write_varint(out, fid)
    write_varint(out, len(counts))
    for count in counts:
        write_varint(out, zigzag_encode(int(count)))
    return bytes(out)


def decode_write(payload: bytes) -> tuple[int, int, int, int, int, list[int]]:
    pos = 0
    profile_id, pos = read_varint(payload, pos)
    timestamp_ms, pos = read_varint(payload, pos)
    slot, pos = read_varint(payload, pos)
    type_id, pos = read_varint(payload, pos)
    fid, pos = read_varint(payload, pos)
    count_len, pos = read_varint(payload, pos)
    counts = []
    for _ in range(count_len):
        value, pos = read_varint(payload, pos)
        counts.append(zigzag_decode(value))
    if pos != len(payload):
        raise StorageError("trailing bytes after WAL write record")
    return profile_id, timestamp_ms, slot, type_id, fid, counts


# ----------------------------------------------------------------------
# Checkpoint file
# ----------------------------------------------------------------------


def _encode_checkpoint(sequence: int, image: dict[int, bytes]) -> bytes:
    body = bytearray()
    write_varint(body, CHECKPOINT_MAGIC)
    write_varint(body, CHECKPOINT_VERSION)
    write_varint(body, sequence)
    write_varint(body, len(image))
    for profile_id in sorted(image):
        blob = image[profile_id]
        write_varint(body, profile_id)
        write_varint(body, len(blob))
        body.extend(blob)
    return _CRC.pack(zlib.crc32(body)) + bytes(body)


def _decode_checkpoint(data: bytes) -> tuple[int, dict[int, bytes]]:
    """Parse a checkpoint file; empty input means "never checkpointed"."""
    if not data:
        return 0, {}
    if len(data) < _CRC.size:
        raise StorageError("checkpoint file shorter than its checksum")
    (crc,) = _CRC.unpack_from(data, 0)
    body = data[_CRC.size :]
    if zlib.crc32(body) != crc:
        # Unlike the WAL, a checkpoint is written atomically, so damage is
        # disk rot rather than an expected crash artefact: refuse to
        # recover from a base we cannot trust.
        raise StorageError("checkpoint failed its CRC32 check")
    pos = 0
    magic, pos = read_varint(body, pos)
    if magic != CHECKPOINT_MAGIC:
        raise StorageError(f"bad checkpoint magic {magic:#x}")
    version, pos = read_varint(body, pos)
    if version != CHECKPOINT_VERSION:
        raise StorageError(f"unsupported checkpoint version {version}")
    sequence, pos = read_varint(body, pos)
    count, pos = read_varint(body, pos)
    image: dict[int, bytes] = {}
    for _ in range(count):
        profile_id, pos = read_varint(body, pos)
        length, pos = read_varint(body, pos)
        if pos + length > len(body):
            raise StorageError("truncated checkpoint record")
        image[profile_id] = body[pos : pos + length]
        pos += length
    return sequence, image


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class CheckpointReport:
    """What one checkpoint captured.

    ``skipped`` is set when a profile that was dirty at the barrier could
    not be flushed (failing KV store): committing then would leave acked
    data whose only durable copy is about to be truncated out of the WAL,
    so the checkpoint aborts and the WAL stays intact.
    """

    sequence: int = 0
    profiles: int = 0
    bytes_written: int = 0
    wal_records_truncated: int = 0
    skipped: bool = False


@dataclass
class RecoveryReport:
    """What one recovery pass did (the numbers the dashboard shows)."""

    checkpoint_sequence: int = 0
    last_sequence: int = 0
    records_scanned: int = 0
    records_replayed: int = 0
    records_deduped: int = 0
    torn_tail_bytes: int = 0
    corrupt_records: int = 0
    profiles_rebuilt: int = 0
    profiles_created: int = 0
    dirty_rebuilt: int = 0
    orphan_slices_swept: int = 0
    replay_ms: float = 0.0

    def summary(self) -> dict[str, float]:
        return {
            "checkpoint_sequence": float(self.checkpoint_sequence),
            "records_replayed": float(self.records_replayed),
            "profiles_rebuilt": float(self.profiles_rebuilt),
            "dirty_rebuilt": float(self.dirty_rebuilt),
            "orphan_slices_swept": float(self.orphan_slices_swept),
            "replay_ms": self.replay_ms,
        }


@dataclass
class DurabilityStats:
    """Cumulative counters for one node's durability layer."""

    writes_logged: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    records_replayed: int = 0
    last_recovery: RecoveryReport | None = field(default=None, repr=False)


# ----------------------------------------------------------------------
# The durability layer
# ----------------------------------------------------------------------


class NodeDurability:
    """Binds a WAL + checkpoint file to a node's write and restart paths.

    One instance per node.  The node calls :meth:`log_write` before a
    write is applied (:meth:`log_write_many` for a batched call, which
    also issues the batch's single ack barrier), :meth:`maybe_checkpoint`
    from its background cycle, and :meth:`recover` on restart.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        checkpoint_file: LogFile,
        checkpoint_interval_records: int = 0,
        node_id: str = "node",
        registry: MetricsRegistry | None = None,
        tracer=NULL_TRACER,
        site: CrashPointSite = NULL_SITE,
    ) -> None:
        if checkpoint_interval_records < 0:
            raise ValueError(
                "checkpoint_interval_records must be >= 0, got "
                f"{checkpoint_interval_records}"
            )
        self.wal = wal
        self._checkpoint_file = checkpoint_file
        self.checkpoint_interval_records = checkpoint_interval_records
        self.node_id = node_id
        self.tracer = tracer
        self._site = site
        self.stats = DurabilityStats()
        #: Serializes acks against the checkpoint barrier capture.
        self._ack_lock = threading.Lock()
        #: Highest sequence covered by the durable checkpoint.
        self.checkpoint_sequence, _ = _decode_checkpoint(
            checkpoint_file.read_all()
        )
        # A restart after a checkpoint opens a truncated (possibly empty)
        # WAL whose scan restarts sequences at 0; new appends must still
        # be numbered past the barrier or recovery's dedup would discard
        # them as already-checkpointed.
        self.wal.ensure_sequence_at_least(self.checkpoint_sequence)
        self._registry = registry
        if registry is not None:
            self._appends = registry.counter("wal_appends", node=node_id)
            self._checkpoint_counter = registry.counter(
                "checkpoints", node=node_id
            )
            self._recovery_counter = registry.counter(
                "recoveries", node=node_id
            )
            self._replayed_counter = registry.counter(
                "wal_records_replayed", node=node_id
            )
            self._lag_gauge = registry.gauge("wal_replay_lag", node=node_id)
        else:
            self._appends = None
            self._checkpoint_counter = None
            self._recovery_counter = None
            self._replayed_counter = None
            self._lag_gauge = None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def log_write(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts,
        apply=None,
    ) -> int:
        """Append one logical write; durable on return in ``always`` mode.

        ``apply`` (the node's buffer-or-apply continuation) runs under the
        same ack lock as the append, so a checkpoint barrier can never
        fall between a record entering the WAL and its effect entering
        the node — the window that would lose the write at truncation.
        """
        payload = encode_write(
            profile_id, timestamp_ms, slot, type_id, fid, counts
        )
        with self._ack_lock:
            sequence = self.wal.append(payload)
            if apply is not None:
                apply()
        self.stats.writes_logged += 1
        if self._appends is not None:
            self._appends.inc()
        if self._lag_gauge is not None:
            self._lag_gauge.set(float(self.replay_lag_records()))
        return sequence

    def log_write_many(self, writes, apply=None) -> list[int]:
        """Batch variant of :meth:`log_write`: the node's batched write
        path (``add_profiles``).

        One ack-lock hold covers every append *and* apply in the batch —
        the same no-barrier-between-append-and-apply invariant as
        :meth:`log_write`, extended over the whole batch — and the WAL's
        :meth:`~repro.storage.wal.WriteAheadLog.append_many` issues the
        single group commit the batch ack needs.  ``writes`` are
        ``(profile_id, timestamp_ms, slot, type_id, fid, counts)``
        tuples; ``apply`` is called with each tuple's fields.
        """
        payloads = [encode_write(*write) for write in writes]
        with self._ack_lock:
            sequences = self.wal.append_many(payloads)
            if apply is not None:
                for write in writes:
                    apply(*write)
        self.ack_barrier()
        self.stats.writes_logged += len(sequences)
        if self._appends is not None:
            self._appends.inc(len(sequences))
        if self._lag_gauge is not None:
            self._lag_gauge.set(float(self.replay_lag_records()))
        return sequences

    def ack_barrier(self) -> None:
        """Commit buffered records so the pending ack is crash-safe."""
        if self.wal.sync_mode != "always":
            self.wal.commit()

    def replay_lag_records(self) -> int:
        """WAL records a crash right now would have to replay."""
        return max(0, self.wal.last_sequence - self.checkpoint_sequence)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return (
            self.checkpoint_interval_records > 0
            and self.replay_lag_records() >= self.checkpoint_interval_records
        )

    def maybe_checkpoint(self, node) -> CheckpointReport | None:
        """Checkpoint when the WAL outgrew the configured interval."""
        if not self.should_checkpoint():
            return None
        return self.checkpoint(node)

    def checkpoint(self, node) -> CheckpointReport:
        """Capture a replay base at the current sequence, truncate the WAL.

        The barrier is captured under the ack lock, so every write with
        ``sequence <= barrier`` is fully applied (or buffered in the write
        table, which is merged below) before the image is built, and no
        new write can sneak under the barrier afterwards.
        """
        with self.tracer.span("node.checkpoint", node=self.node_id):
            with self._ack_lock:
                self._site.reach("checkpoint.begin")
                barrier = self.wal.last_sequence
                node.merge_write_table()
                image = self._build_image(node)
                dirty_at_barrier = node.cache.dirty.dirty_ids()
            # Only the profiles dirty AT the barrier gate truncation: a
            # barrier-dirty entry that cannot flush (failing KV store)
            # exists only in memory and the records about to be cut, and
            # the image alone is not consulted for profiles the replay
            # tail never touches.  Writes landing during this flush keep
            # their WAL records (sequence > barrier survives truncation),
            # so they cannot starve the checkpoint — flushing just the
            # barrier snapshot is both sufficient and bounded.
            if node.cache.flush_ids(dirty_at_barrier):
                return CheckpointReport(
                    sequence=self.checkpoint_sequence, skipped=True
                )
            data = _encode_checkpoint(barrier, image)
            staged = bytearray()
            self._site.write("checkpoint.write", data, staged.extend)
            self._site.reach("checkpoint.commit")
            self._checkpoint_file.rewrite(bytes(staged))
            self.checkpoint_sequence = barrier
            self._site.reach("checkpoint.post_commit")
            truncated = self.wal.truncate_through(barrier)
            self.stats.checkpoints += 1
            if self._checkpoint_counter is not None:
                self._checkpoint_counter.inc()
            if self._lag_gauge is not None:
                self._lag_gauge.set(float(self.replay_lag_records()))
            return CheckpointReport(
                sequence=barrier,
                profiles=len(image),
                bytes_written=len(data),
                wal_records_truncated=truncated,
            )

    def _build_image(self, node) -> dict[int, bytes]:
        """Encode every profile the node knows: resident and persisted.

        Resident profiles are encoded from memory (they are the freshest
        copy); profiles that were flushed and evicted are loaded from the
        persistence manager — their KV value is complete, since a profile
        with unflushed writes is by construction still resident.
        """
        image: dict[int, bytes] = {}
        for profile_id in sorted(self._known_profile_ids(node)):
            profile = node.cache.get_resident(profile_id)
            if profile is None:
                profile = node.persistence.load(profile_id)
            if profile is None:
                continue  # Deleted between enumeration and encode.
            image[profile_id] = compress(
                ProfileCodec.encode_profile(profile)
            )
        return image

    def _known_profile_ids(self, node) -> set[int]:
        known = node.persistence.stored_profile_ids()
        known.update(node.cache.resident_ids())
        return known

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, node) -> RecoveryReport:
        """Rebuild acked state: checkpoint base + deduped WAL tail replay.

        Idempotent — every pass rebuilds the touched profiles from the
        checkpoint base, so recovering twice (or recovering a node that
        did not actually lose state) converges on the same result.
        """
        with self.tracer.span("node.recover", node=self.node_id):
            started = perf_ms()
            report = RecoveryReport()
            records, scan = self.wal.replay()
            checkpoint_seq, image = _decode_checkpoint(
                self._checkpoint_file.read_all()
            )
            self.checkpoint_sequence = checkpoint_seq
            # Same restart hazard as in __init__: post-recovery appends
            # must be numbered past the barrier the checkpoint restored.
            self.wal.ensure_sequence_at_least(checkpoint_seq)
            report.checkpoint_sequence = checkpoint_seq
            report.last_sequence = scan.last_sequence
            report.records_scanned = scan.records
            report.torn_tail_bytes = scan.torn_tail_bytes
            report.corrupt_records = scan.corrupt_records

            granularity = node.engine.config.time_dimension.bands[0].granularity_ms
            aggregate = node.engine.table.aggregate
            seen: set[int] = set()
            rebuilt: dict[int, ProfileData] = {}
            for record in records:
                if record.sequence <= checkpoint_seq or record.sequence in seen:
                    report.records_deduped += 1
                    continue
                seen.add(record.sequence)
                profile_id, ts, slot, type_id, fid, counts = decode_write(
                    record.payload
                )
                profile = rebuilt.get(profile_id)
                if profile is None:
                    blob = image.get(profile_id)
                    if blob is not None:
                        profile = ProfileCodec.decode_profile(decompress(blob))
                        report.profiles_rebuilt += 1
                    else:
                        profile = ProfileData(profile_id, granularity)
                        report.profiles_created += 1
                    rebuilt[profile_id] = profile
                profile.add(ts, slot, type_id, fid, counts, aggregate)
                report.records_replayed += 1

            for profile in rebuilt.values():
                node.engine.table.put(profile)
                node.cache.install_recovered(profile)
                report.dirty_rebuilt += 1

            sweep = getattr(node.persistence, "sweep_orphans", None)
            if sweep is not None:
                report.orphan_slices_swept = sweep()

            report.replay_ms = perf_ms() - started
            self.stats.recoveries += 1
            self.stats.records_replayed += report.records_replayed
            self.stats.last_recovery = report
            if self._recovery_counter is not None:
                self._recovery_counter.inc()
            if self._replayed_counter is not None:
                self._replayed_counter.inc(report.records_replayed)
            if self._lag_gauge is not None:
                self._lag_gauge.set(float(self.replay_lag_records()))
            return report

    def close(self) -> None:
        self.wal.close()
        self._checkpoint_file.close()


def attach_memory_durability(
    node,
    sync: str = "always",
    checkpoint_interval_records: int = 256,
    registry: MetricsRegistry | None = None,
    site: CrashPointSite = NULL_SITE,
) -> NodeDurability:
    """Give a node an in-memory WAL + checkpoint (tests, chaos clusters).

    The backing :class:`~repro.storage.wal.MemoryLogFile` objects survive
    as long as the durability object does, so a chaos ``node_crash`` →
    ``restart`` cycle over the same node exercises real replay.
    """
    durability = NodeDurability(
        WriteAheadLog(MemoryLogFile(), sync=sync, site=site),
        MemoryLogFile(),
        checkpoint_interval_records=checkpoint_interval_records,
        node_id=node.node_id,
        registry=registry,
        tracer=node.tracer,
        site=site,
    )
    node.durability = durability
    return durability
