"""Multi-table IPS service: the paper's table-first API surface.

One IPS cluster is shared by multiple applications in a multi-tenancy
manner (§IV): different products create their own *tables* (each with its
own attribute schema, aggregate and maintenance configs) on shared
serving capacity, and every API call names the table first — exactly the
paper's signatures::

    add_profile(table, profile_id, timestamp, slot, type, fid, feature_counts)
    get_profile_topK(table, profile_id, slot, type, time_range, sort_type, k)
    get_profile_filter(table, profile_id, slot, type, time_range, filter_type)
    get_profile_decay(table, profile_id, slot, type, time_range,
                      decay_function, decay_factor)

:class:`IPSService` manages one engine + cache + persistence stack per
table over a shared KV store and a shared per-caller quota manager, so a
greedy tenant is throttled across all its tables at once.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..clock import Clock, SystemClock
from ..config import TableConfig
from ..core.decay import DecayFn
from ..core.query import FeatureResult, FilterFn, SortType
from ..core.timerange import TimeRange
from ..errors import ConfigError, TableNotFoundError
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..storage.kvstore import KVStore
from .batch import BatchKeyResult
from .coalesce import CoalesceConfig
from .node import IPSNode
from .quota import QuotaManager


class IPSService:
    """Table-first facade over per-table node stacks."""

    def __init__(
        self,
        store: KVStore,
        clock: Clock | None = None,
        node_id: str = "service",
        cache_capacity_bytes_per_table: int = 64 * 1024 * 1024,
        isolation_enabled: bool = True,
        tracer=NULL_TRACER,
        registry: MetricsRegistry | None = None,
        result_cache_entries: int = 0,
        coalesce: "CoalesceConfig | None" = None,
    ) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self.node_id = node_id
        self._store = store
        self._cache_capacity = cache_capacity_bytes_per_table
        self._isolation_enabled = isolation_enabled
        #: Hot-read path knobs applied to every table's node: a per-table
        #: query-result cache of this many entries (0 disables) and the
        #: singleflight/batch-window configuration (None disables).
        self._result_cache_entries = result_cache_entries
        self._coalesce = coalesce
        self.tracer = tracer
        self.registry = registry
        #: One quota manager shared across tables: multi-tenancy quotas are
        #: per *caller*, not per (caller, table).
        self.quota = QuotaManager(self.clock)
        self._tables: dict[str, IPSNode] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def create_table(self, config: TableConfig) -> None:
        """Create a table; name collisions are configuration errors."""
        with self._lock:
            if config.name in self._tables:
                raise ConfigError(f"table {config.name!r} already exists")
            self._tables[config.name] = IPSNode(
                f"{self.node_id}/{config.name}",
                config,
                self._store,
                clock=self.clock,
                cache_capacity_bytes=self._cache_capacity,
                isolation_enabled=self._isolation_enabled,
                quota=self.quota,
                tracer=self.tracer,
                result_cache=self._result_cache_entries or None,
                coalesce=self._coalesce,
            )

    def drop_table(self, table: str) -> None:
        with self._lock:
            node = self._tables.pop(table, None)
        if node is None:
            raise TableNotFoundError(table)
        node.shutdown()

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def _node(self, table: str) -> IPSNode:
        with self._lock:
            node = self._tables.get(table)
        if node is None:
            raise TableNotFoundError(table)
        return node

    def table_node(self, table: str) -> IPSNode:
        """Expose a table's node stack (maintenance, monitoring, reload)."""
        return self._node(table)

    def _span(self, method: str, table: str):
        """Root span for one table-first API call."""
        return self.tracer.span(f"service.{method}", table=table)

    # ------------------------------------------------------------------
    # Write APIs (paper §II-B signatures)
    # ------------------------------------------------------------------

    def add_profile(
        self,
        table: str,
        profile_id: int,
        timestamp: int,
        slot: int,
        type: int,
        fid: int,
        feature_counts: Sequence[int] | dict[str, int],
        caller: str = "default",
    ) -> None:
        with self._span("add_profile", table):
            self._node(table).add_profile(
                profile_id, timestamp, slot, type, fid, feature_counts,
                caller=caller,
            )

    def add_profiles(
        self,
        table: str,
        profile_id: int,
        timestamp: int,
        slot: int,
        type: int,
        fids: Sequence[int],
        feature_counts: Sequence[Sequence[int] | dict[str, int]],
        caller: str = "default",
    ) -> None:
        with self._span("add_profiles", table):
            self._node(table).add_profiles(
                profile_id, timestamp, slot, type, fids, feature_counts,
                caller=caller,
            )

    # ------------------------------------------------------------------
    # Read APIs (paper §II-B signatures)
    # ------------------------------------------------------------------

    def get_profile_topk(
        self,
        table: str,
        profile_id: int,
        slot: int,
        type: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        caller: str = "default",
    ) -> list[FeatureResult]:
        with self._span("get_profile_topk", table):
            return self._node(table).get_profile_topk(
                profile_id, slot, type, time_range, sort_type, k,
                sort_attribute=sort_attribute, sort_weights=sort_weights,
                caller=caller,
            )

    def get_profile_filter(
        self,
        table: str,
        profile_id: int,
        slot: int,
        type: int | None,
        time_range: TimeRange,
        filter_type: FilterFn,
        caller: str = "default",
    ) -> list[FeatureResult]:
        with self._span("get_profile_filter", table):
            return self._node(table).get_profile_filter(
                profile_id, slot, type, time_range, filter_type, caller=caller
            )

    def get_profile_decay(
        self,
        table: str,
        profile_id: int,
        slot: int,
        type: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        caller: str = "default",
    ) -> list[FeatureResult]:
        with self._span("get_profile_decay", table):
            return self._node(table).get_profile_decay(
                profile_id, slot, type, time_range, decay_function,
                decay_factor, k=k, sort_attribute=sort_attribute,
                caller=caller,
            )

    # ------------------------------------------------------------------
    # Batched read APIs (multi-get)
    # ------------------------------------------------------------------

    def multi_get_topk(
        self,
        table: str,
        profile_ids: Sequence[int],
        slot: int,
        type: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        caller: str = "default",
    ) -> dict[int, "BatchKeyResult"]:
        """Batched top-K over many profiles of one table (one quota admit)."""
        with self._span("multi_get_topk", table):
            return self._node(table).multi_get_topk(
                profile_ids, slot, type, time_range, sort_type, k,
                sort_attribute=sort_attribute, sort_weights=sort_weights,
                caller=caller,
            )

    def multi_get_filter(
        self,
        table: str,
        profile_ids: Sequence[int],
        slot: int,
        type: int | None,
        time_range: TimeRange,
        filter_type: FilterFn,
        caller: str = "default",
    ) -> dict[int, "BatchKeyResult"]:
        """Batched filter over many profiles of one table."""
        with self._span("multi_get_filter", table):
            return self._node(table).multi_get_filter(
                profile_ids, slot, type, time_range, filter_type, caller=caller
            )

    def multi_get_decay(
        self,
        table: str,
        profile_ids: Sequence[int],
        slot: int,
        type: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        caller: str = "default",
    ) -> dict[int, "BatchKeyResult"]:
        """Batched decay read over many profiles of one table."""
        with self._span("multi_get_decay", table):
            return self._node(table).multi_get_decay(
                profile_ids, slot, type, time_range, decay_function,
                decay_factor, k=k, sort_attribute=sort_attribute,
                caller=caller,
            )

    # ------------------------------------------------------------------
    # Background duties across tables
    # ------------------------------------------------------------------

    def run_background_cycle(self) -> None:
        """Merge write tables + one cache cycle for every table."""
        with self._lock:
            nodes = list(self._tables.values())
        for node in nodes:
            node.merge_write_table()
            node.run_cache_cycle()

    def run_maintenance(self) -> None:
        with self._lock:
            nodes = list(self._tables.values())
        for node in nodes:
            node.run_maintenance()

    def shutdown(self) -> None:
        with self._lock:
            nodes = list(self._tables.values())
        for node in nodes:
            node.shutdown()

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(node.memory_bytes() for node in self._tables.values())
