"""IPS instance node: the composed single-server stack.

One node owns a shard of the profile population and wires together:

* the :class:`~repro.core.engine.ProfileEngine` (data model + queries +
  maintenance);
* :class:`~repro.cache.GCache` for residency, swap-out and write-back;
* a persistence manager (bulk or fine-grained) over the KV store;
* the write-table read-write isolation with its hot switch (§III-F);
* per-caller QPS quotas (§V-b).

Writes go through the write table when isolation is on, else straight to
the engine.  Reads miss-through GCache: a non-resident profile is loaded
from the KV store, installed, and queried.  Maintenance (compaction /
truncate / shrink) runs off the serving path via :meth:`run_maintenance`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..clock import Clock, SystemClock
from ..config import TableConfig
from ..core.decay import DecayFn
from ..core.engine import ProfileEngine
from ..core.profile import ProfileData
from ..core.query import (
    FeatureResult,
    FilterFn,
    QueryStats,
    SortType,
    query_fingerprint,
)
from ..core.timerange import TimeRange
from ..cache import GCache
from ..errors import IPSError
from ..obs.trace import NULL_TRACER
from ..storage.kvstore import KVStore
from ..storage.persistence import (
    BulkPersistence,
    FineGrainedPersistence,
    PersistenceManager,
)
from .batch import BatchKeyResult, dedup_preserving_order
from .coalesce import AdaptiveBatcher, CoalesceConfig, SingleFlight
from .isolation import PendingWrite, WriteTable
from .quota import QuotaManager
from .result_cache import QueryResultCache


@dataclass
class NodeStats:
    """Serving counters for one node."""

    reads: int = 0
    writes: int = 0
    writes_isolated: int = 0
    writes_direct: int = 0
    merge_passes: int = 0
    quota_rejections: int = 0
    batch_reads: int = 0
    batch_keys: int = 0


class IPSNode:
    """One IPS instance serving a shard of profiles for one table."""

    def __init__(
        self,
        node_id: str,
        config: TableConfig,
        store: KVStore,
        clock: Clock | None = None,
        cache_capacity_bytes: int = 256 * 1024 * 1024,
        swap_threshold: float = 0.85,
        swap_target: float = 0.80,
        lru_shards: int = 16,
        dirty_shards: int = 4,
        isolation_enabled: bool = True,
        write_table_limit_bytes: int = 8 * 1024 * 1024,
        quota: QuotaManager | None = None,
        tracer=NULL_TRACER,
        durability=None,
        result_cache: QueryResultCache | int | None = None,
        coalesce: CoalesceConfig | None = None,
    ) -> None:
        self.node_id = node_id
        self.clock = clock if clock is not None else SystemClock()
        self.tracer = tracer
        self.engine = ProfileEngine(config, self.clock)
        self.persistence: PersistenceManager = (
            FineGrainedPersistence(store, config.name, tracer=tracer)
            if config.fine_grained_persistence
            else BulkPersistence(store, config.name, tracer=tracer)
        )
        self.cache = GCache(
            load_fn=self.persistence.load,
            flush_fn=self.persistence.flush,
            capacity_bytes=cache_capacity_bytes,
            swap_threshold=swap_threshold,
            swap_target=swap_target,
            lru_shards=lru_shards,
            dirty_shards=dirty_shards,
            evict_callback=self._on_evict,
            tracer=tracer,
        )
        self.write_table = WriteTable(write_table_limit_bytes)
        self.quota = quota if quota is not None else QuotaManager(self.clock)
        #: Optional :class:`~repro.server.recovery.NodeDurability`: when
        #: set, every write is WAL-logged before it is acked, and
        #: :meth:`recover` replays the log after a crash.
        self.durability = durability
        self.stats = NodeStats()
        self._isolation_enabled = isolation_enabled
        self._merge_lock = threading.Lock()
        # ---- server-side hot-read path (off by default) --------------
        #: Query-result cache: pass an instance, or an int for a private
        #: cache of that many entries (each node needs its own — entries
        #: key on this node's profile state).
        if isinstance(result_cache, int):
            result_cache = (
                QueryResultCache(max_entries=result_cache)
                if result_cache > 0
                else None
            )
        self.result_cache = result_cache
        self.coalesce_config = coalesce
        self.singleflight = SingleFlight() if coalesce is not None else None
        self.batcher = (
            AdaptiveBatcher(coalesce)
            if coalesce is not None and coalesce.batching
            else None
        )
        self._hot_read = (
            self.result_cache is not None or self.singleflight is not None
        )
        if self._hot_read:
            # Invalidation hooks sit on the existing mutation seams:
            # GCache observes node writes (direct, merged, ingested),
            # recovery installs and crash drops; the engine observes
            # maintenance rewrites and hot reloads.
            self.cache.set_invalidation_hook(self._on_profile_mutation)
            self.engine.add_mutation_listener(self._on_profile_mutation)

    def _on_profile_mutation(self, profile_id: int | None) -> None:
        """A mutation path touched ``profile_id`` (None = whole node)."""
        result_cache = self.result_cache
        if result_cache is None:
            return
        if profile_id is None:
            result_cache.invalidate_all()
        else:
            result_cache.invalidate(profile_id)

    # ------------------------------------------------------------------
    # Residency plumbing
    # ------------------------------------------------------------------

    def _on_evict(self, profile: ProfileData) -> None:
        """GCache evicted a profile: drop it from the engine's table too."""
        self.engine.table.evict(profile.profile_id)

    def _resident_profile(self, profile_id: int) -> ProfileData | None:
        """Fetch through the cache, installing loads into the engine table."""
        profile = self.cache.get(profile_id)
        if profile is not None and self.engine.table.get(profile_id) is None:
            self.engine.table.put(profile)
        return profile

    def _resident_profiles(
        self, profile_ids: Sequence[int]
    ) -> tuple[dict[int, ProfileData | None], dict[int, Exception]]:
        """Batched cache fetch: one probe pass, loads installed in the table."""
        profiles, errors = self.cache.get_many(profile_ids)
        for profile_id, profile in profiles.items():
            if profile is not None and self.engine.table.get(profile_id) is None:
                self.engine.table.put(profile)
        return profiles, errors

    def _writable_profile(self, profile_id: int) -> ProfileData:
        """Profile for a write: cache hit, storage load, or fresh create."""
        profile = self._resident_profile(profile_id)
        if profile is None:
            profile = self.engine.table.get_or_create(profile_id)
            self.cache.put(profile, dirty=False)
        return profile

    # ------------------------------------------------------------------
    # Write APIs
    # ------------------------------------------------------------------

    def add_profile(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts: Sequence[int] | dict[str, int],
        caller: str = "default",
    ) -> None:
        """``add_profile`` with quota admission and optional isolation.

        With durability attached, the logical write enters the WAL before
        it is buffered or applied, and this method returns (= acks) only
        once the record is committed under the WAL's sync mode.
        """
        with self.tracer.span("node.add_profile", profile=profile_id):
            self.quota.admit(caller)
            self.stats.writes += 1
            vector = self.engine._normalize_counts(counts)
            if self.durability is not None:
                self.durability.log_write(
                    profile_id, timestamp_ms, slot, type_id, fid, vector,
                    apply=lambda: self._buffer_or_apply(
                        profile_id, timestamp_ms, slot, type_id, fid, vector
                    ),
                )
                self.durability.ack_barrier()
            else:
                self._buffer_or_apply(
                    profile_id, timestamp_ms, slot, type_id, fid, vector
                )

    def add_profiles(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fids: Sequence[int],
        counts_list: Sequence[Sequence[int] | dict[str, int]],
        caller: str = "default",
    ) -> None:
        """Batched write: one quota admission for the whole batch."""
        if len(fids) != len(counts_list):
            raise ValueError(
                f"fids and counts must align: {len(fids)} vs {len(counts_list)}"
            )
        with self.tracer.span(
            "node.add_profiles", profile=profile_id, fids=len(fids)
        ):
            self.quota.admit(caller)
            writes = []
            for fid, counts in zip(fids, counts_list):
                vector = self.engine._normalize_counts(counts)
                self.stats.writes += 1
                writes.append(
                    (profile_id, timestamp_ms, slot, type_id, fid, vector)
                )
            if self.durability is not None:
                # Appends buffer under group/manual sync; log_write_many
                # issues the single ack barrier for the whole batch.
                self.durability.log_write_many(
                    writes, apply=self._buffer_or_apply
                )
            else:
                for write in writes:
                    self._buffer_or_apply(*write)

    def _buffer_or_apply(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        vector: Sequence[int],
    ) -> None:
        """Isolation buffer when enabled (and not full), else direct apply."""
        if self._isolation_enabled:
            pending = PendingWrite(
                profile_id, timestamp_ms, slot, type_id, fid, vector
            )
            if self.write_table.append(pending):
                self.stats.writes_isolated += 1
                return
            # Write table full: fall through to a synchronous write.
        self.stats.writes_direct += 1
        self._apply_write(
            profile_id, timestamp_ms, slot, type_id, fid, vector
        )

    def _apply_write(
        self,
        profile_id: int,
        timestamp_ms: int,
        slot: int,
        type_id: int,
        fid: int,
        counts: Sequence[int],
    ) -> None:
        profile = self._writable_profile(profile_id)
        lock = self.cache.entry_lock(profile_id)
        if lock is not None:
            with lock:
                profile.add(
                    timestamp_ms, slot, type_id, fid, counts, self.engine.table.aggregate
                )
        else:
            profile.add(
                timestamp_ms, slot, type_id, fid, counts, self.engine.table.aggregate
            )
        self.cache.mark_dirty(profile_id)
        self.engine._mark_for_maintenance(profile)

    # ------------------------------------------------------------------
    # Isolation merge (the "every few seconds" job of §III-F)
    # ------------------------------------------------------------------

    def merge_write_table(self) -> int:
        """Merge buffered writes into the main table; returns merge count."""
        with self._merge_lock:
            batch = self.write_table.drain()
            for write in batch:
                self._apply_write(
                    write.profile_id,
                    write.timestamp_ms,
                    write.slot,
                    write.type_id,
                    write.fid,
                    write.counts,
                )
            if batch:
                self.stats.merge_passes += 1
            return len(batch)

    def set_isolation(self, enabled: bool) -> None:
        """The hot switch: toggle isolation live, draining on disable."""
        self._isolation_enabled = enabled
        if not enabled:
            self.merge_write_table()

    @property
    def isolation_enabled(self) -> bool:
        return self._isolation_enabled

    # ------------------------------------------------------------------
    # Read APIs
    # ------------------------------------------------------------------

    def _serve_read(
        self,
        profile_id: int,
        profile: ProfileData,
        time_range: TimeRange,
        build_fingerprint,
        execute,
        stats: QueryStats | None,
        deadline,
    ) -> list[FeatureResult]:
        """Shared hot-read skeleton: cache probe, singleflight, batching.

        ``execute(profile_id, time_range)`` runs the real engine query;
        ``build_fingerprint(window)`` canonicalizes it.  The window is
        resolved *once* here and frozen to an ABSOLUTE range so the
        executed query matches the cache key exactly (CURRENT windows
        would otherwise drift between fingerprint and execution).
        Queries carrying a ``stats`` collector want execution telemetry
        and bypass the hot path entirely.
        """
        if not self._hot_read or stats is not None:
            with self.tracer.span("engine.execute", profile=profile_id):
                return execute(profile_id, time_range)
        window = time_range.resolve(
            self.clock.now_ms(), profile.newest_timestamp_ms()
        )
        if window is None:
            # Let the engine resolve (to None) itself so argument
            # validation errors surface exactly as on the cold path.
            with self.tracer.span("engine.execute", profile=profile_id):
                return execute(profile_id, time_range)
        frozen = TimeRange.absolute(window.start_ms, window.end_ms)
        fingerprint = build_fingerprint(window)
        result_cache = self.result_cache
        if fingerprint is None:
            if result_cache is not None:
                result_cache.stats.uncacheable += 1
            if deadline is not None:
                deadline.check("node.read")
            with self.tracer.span("engine.execute", profile=profile_id):
                return execute(profile_id, frozen)
        if result_cache is not None:
            cached = result_cache.get(profile_id, fingerprint)
            if cached is not None:
                span = self.tracer.current()
                if span is not None:
                    # Slow-log forensics: a "slow" cached read points at
                    # whatever held the request *around* the probe, not
                    # at query execution.
                    span.tag(served="result_cache")
                return cached

        def leader() -> list[FeatureResult]:
            epoch = (
                result_cache.epoch(profile_id)
                if result_cache is not None
                else None
            )
            if self.batcher is not None:
                value = self.batcher.submit(
                    fingerprint,
                    profile_id,
                    lambda members: self._execute_batch_window(
                        members, frozen, execute
                    ),
                    deadline=deadline,
                )
            else:
                if deadline is not None:
                    deadline.check("node.read")
                with self.tracer.span("engine.execute", profile=profile_id):
                    value = execute(profile_id, frozen)
            if result_cache is not None:
                result_cache.put(profile_id, fingerprint, value, epoch)
            return value

        if self.singleflight is not None:
            value, was_leader = self.singleflight.execute(
                (profile_id, fingerprint), leader, deadline=deadline
            )
            span = self.tracer.current()
            if span is not None:
                # Distinguish the leader that actually executed from
                # waiters parked on its flight: a slow waiter was blocked,
                # not computing.
                span.tag(
                    served=(
                        "singleflight_leader"
                        if was_leader
                        else "coalesced_waiter"
                    )
                )
            # Coalesced waiters share the leader's list: hand out copies.
            return value if was_leader else list(value)
        return leader()

    def _execute_batch_window(
        self, profile_ids: Sequence[int], frozen: TimeRange, execute
    ) -> dict[int, list[FeatureResult] | IPSError]:
        """One multi-get pass for a closed batch window (same query shape).

        Per-profile failures degrade that profile only, exactly like
        :meth:`_multi_get`; the batcher re-raises them for the owning
        waiter.
        """
        with self.tracer.span("node.batch_window", keys=len(profile_ids)):
            out: dict[int, list[FeatureResult] | IPSError] = {}
            for member in profile_ids:
                try:
                    out[member] = execute(member, frozen)
                except IPSError as exc:
                    out[member] = exc
            return out

    def get_profile_topk(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
        caller: str = "default",
        stats: QueryStats | None = None,
        deadline=None,
    ) -> list[FeatureResult]:
        with self.tracer.span("node.get_profile_topk", profile=profile_id):
            self.quota.admit(caller)
            self.stats.reads += 1
            profile = self._resident_profile(profile_id)
            if profile is None:
                return []
            return self._serve_read(
                profile_id,
                profile,
                time_range,
                lambda window: query_fingerprint(
                    self.engine.config,
                    "topk",
                    slot,
                    type_id,
                    window,
                    sort_type=sort_type,
                    k=k,
                    sort_attribute=sort_attribute,
                    sort_weights=sort_weights,
                    aggregate=aggregate,
                ),
                lambda member, window: self.engine.get_profile_topk(
                    member,
                    slot,
                    type_id,
                    window,
                    sort_type,
                    k,
                    sort_attribute=sort_attribute,
                    sort_weights=sort_weights,
                    aggregate=aggregate,
                    stats=stats,
                ),
                stats,
                deadline,
            )

    def get_profile_filter(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        caller: str = "default",
        stats: QueryStats | None = None,
        deadline=None,
    ) -> list[FeatureResult]:
        with self.tracer.span("node.get_profile_filter", profile=profile_id):
            self.quota.admit(caller)
            self.stats.reads += 1
            profile = self._resident_profile(profile_id)
            if profile is None:
                return []
            return self._serve_read(
                profile_id,
                profile,
                time_range,
                lambda window: query_fingerprint(
                    self.engine.config,
                    "filter",
                    slot,
                    type_id,
                    window,
                    predicate=predicate,
                ),
                lambda member, window: self.engine.get_profile_filter(
                    member, slot, type_id, window, predicate, stats=stats
                ),
                stats,
                deadline,
            )

    def get_profile_decay(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        caller: str = "default",
        stats: QueryStats | None = None,
        deadline=None,
    ) -> list[FeatureResult]:
        with self.tracer.span("node.get_profile_decay", profile=profile_id):
            self.quota.admit(caller)
            self.stats.reads += 1
            profile = self._resident_profile(profile_id)
            if profile is None:
                return []
            return self._serve_read(
                profile_id,
                profile,
                time_range,
                lambda window: query_fingerprint(
                    self.engine.config,
                    "decay",
                    slot,
                    type_id,
                    window,
                    decay_function=decay_function,
                    decay_factor=decay_factor,
                    k=k,
                    sort_attribute=sort_attribute,
                ),
                lambda member, window: self.engine.get_profile_decay(
                    member,
                    slot,
                    type_id,
                    window,
                    decay_function,
                    decay_factor,
                    k=k,
                    sort_attribute=sort_attribute,
                    stats=stats,
                ),
                stats,
                deadline,
            )

    # ------------------------------------------------------------------
    # Batched read APIs (multi-get)
    # ------------------------------------------------------------------

    def _multi_get(
        self,
        profile_ids: Sequence[int],
        caller: str,
        query_batch,
        method: str = "multi_get",
    ) -> dict[int, BatchKeyResult]:
        """Shared batched-read skeleton.

        One quota admission covers the whole batch, duplicated keys are
        resolved once, residency is established with a single GCache probe
        pass (grouped miss-fill), and every resident profile is served by
        **one** batch kernel invocation (``query_batch`` over the live
        ids).  Failures are still captured per key: a storage error on the
        miss-fill fails only that key, non-resident ids succeed with
        ``[]``, and a query validation error — which is batch-wide by
        construction (same spec for every key) — fails the live keys
        while leaving the rest of the batch served.
        """
        with self.tracer.span(f"node.{method}", keys=len(profile_ids)) as span:
            self.quota.admit(caller)
            unique = dedup_preserving_order(profile_ids)
            span.tag(unique=len(unique))
            self.stats.batch_reads += 1
            self.stats.batch_keys += len(unique)
            self.stats.reads += len(unique)
            profiles, load_errors = self._resident_profiles(unique)
            live = [
                profile_id
                for profile_id in unique
                if load_errors.get(profile_id) is None
                and profiles.get(profile_id) is not None
            ]
            values: dict[int, list[FeatureResult]] = {}
            batch_error: IPSError | None = None
            if live:
                try:
                    # No per-key engine.execute span here: a batch would pay
                    # for hundreds of them; the node span's keys/unique tags
                    # carry the same information at O(1) cost.
                    values = query_batch(live)
                except IPSError as exc:
                    batch_error = exc
            out: dict[int, BatchKeyResult] = {}
            for profile_id in unique:
                error = load_errors.get(profile_id)
                if error is not None:
                    out[profile_id] = BatchKeyResult.failure(profile_id, error)
                elif profiles.get(profile_id) is None:
                    out[profile_id] = BatchKeyResult.success(profile_id, [])
                elif batch_error is not None:
                    out[profile_id] = BatchKeyResult.failure(
                        profile_id, batch_error
                    )
                else:
                    out[profile_id] = BatchKeyResult.success(
                        profile_id, values.get(profile_id, [])
                    )
            return out

    def multi_get_topk(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        sort_type: SortType = SortType.TOTAL,
        k: int = 10,
        sort_attribute: str | None = None,
        sort_weights: dict[str, float] | None = None,
        aggregate: str | None = None,
        caller: str = "default",
    ) -> dict[int, BatchKeyResult]:
        """Batched ``get_profile_topk`` over deduplicated profile ids."""
        return self._multi_get(
            profile_ids,
            caller,
            lambda live_ids: self.engine.get_profiles_topk(
                live_ids,
                slot,
                type_id,
                time_range,
                sort_type,
                k,
                sort_attribute=sort_attribute,
                sort_weights=sort_weights,
                aggregate=aggregate,
            ),
            method="multi_get_topk",
        )

    def multi_get_filter(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        predicate: FilterFn,
        caller: str = "default",
    ) -> dict[int, BatchKeyResult]:
        """Batched ``get_profile_filter`` over deduplicated profile ids."""
        return self._multi_get(
            profile_ids,
            caller,
            lambda live_ids: self.engine.get_profiles_filter(
                live_ids, slot, type_id, time_range, predicate
            ),
            method="multi_get_filter",
        )

    def multi_get_decay(
        self,
        profile_ids: Sequence[int],
        slot: int,
        type_id: int | None,
        time_range: TimeRange,
        decay_function: str | DecayFn = "exponential",
        decay_factor: float = 1.0,
        k: int | None = None,
        sort_attribute: str | None = None,
        caller: str = "default",
    ) -> dict[int, BatchKeyResult]:
        """Batched ``get_profile_decay`` over deduplicated profile ids."""
        return self._multi_get(
            profile_ids,
            caller,
            lambda live_ids: self.engine.get_profiles_decay(
                live_ids,
                slot,
                type_id,
                time_range,
                decay_function,
                decay_factor,
                k=k,
                sort_attribute=sort_attribute,
            ),
            method="multi_get_decay",
        )

    # ------------------------------------------------------------------
    # Hot reconfiguration (§V-b)
    # ------------------------------------------------------------------

    def reload_config(self, **kwargs) -> None:
        """Hot-reload maintenance configuration (see
        :meth:`repro.core.engine.ProfileEngine.reload_config`)."""
        self.engine.reload_config(**kwargs)

    def set_write_table_limit(self, limit_bytes: int) -> None:
        """Hot-update the isolation buffer's memory cap."""
        if limit_bytes <= 0:
            raise ValueError(f"limit must be positive, got {limit_bytes}")
        self.write_table.memory_limit_bytes = limit_bytes

    # ------------------------------------------------------------------
    # Background duties
    # ------------------------------------------------------------------

    def run_maintenance(self, max_profiles: int | None = None, full: bool = True):
        """Compact/truncate/shrink pending profiles off the serving path."""
        return self.engine.run_maintenance(max_profiles=max_profiles, full=full)

    def maintenance_pool(self, **kwargs):
        """Build a §III-D maintenance pool bound to this node's engine.

        By default the pool's load signal is the node's cache memory
        pressure, so maintenance backs off when serving needs the CPU.
        """
        from .maintenance import MaintenancePool

        kwargs.setdefault("load_fn", self.cache.memory_ratio)
        return MaintenancePool(self.engine, **kwargs)

    def run_cache_cycle(self) -> tuple[int, int]:
        """One deterministic swap + flush pass; returns (evicted, flushed).

        With durability attached, this is also the periodic checkpoint
        driver: once the WAL outgrows the configured interval, the cycle
        snapshots state and truncates the log.
        """
        evicted = self.cache.run_swap_once()
        flushed = self.cache.run_flush_once()
        if self.durability is not None:
            self.durability.maybe_checkpoint(self)
        return evicted, flushed

    def start_background(
        self,
        num_swap_threads: int = 1,
        num_flush_threads: int | None = None,
        interval_s: float = 0.05,
    ) -> None:
        self.cache.start_workers(num_swap_threads, num_flush_threads, interval_s)

    def stop_background(self) -> None:
        self.cache.stop_workers()

    def shutdown(self) -> None:
        """Drain isolation buffer and flush everything dirty.

        A clean shutdown also takes a final checkpoint so the WAL is empty
        and the next start needs no replay.
        """
        self.merge_write_table()
        self.cache.flush_all()
        if self.durability is not None:
            self.durability.checkpoint(self)

    def crash(self) -> int:
        """Simulate a process crash: volatile state is lost, not flushed.

        The isolation write table and all cache residency vanish (unflushed
        dirty profiles included — without durability, that is what a crash
        costs); persisted data survives in the KV store and reloads on the
        next miss.  With durability attached, :meth:`recover` rebuilds the
        lost acked writes from checkpoint + WAL on restart.  Returns the
        number of resident profiles dropped.
        """
        with self._merge_lock:
            self.write_table.drain()
            return self.cache.drop_all()

    # ------------------------------------------------------------------
    # Durability (checkpoint + crash recovery)
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Snapshot state and truncate the WAL; None without durability."""
        if self.durability is None:
            return None
        return self.durability.checkpoint(self)

    def recover(self):
        """Replay checkpoint + WAL tail after a crash (restart path).

        Returns the :class:`~repro.server.recovery.RecoveryReport`, or
        ``None`` when the node has no durability layer (nothing to replay
        — the pre-WAL behaviour of coming back cold).
        """
        if self.durability is None:
            return None
        return self.durability.recover(self)

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.cache.memory_bytes() + self.write_table.memory_bytes

    def __repr__(self) -> str:
        return (
            f"IPSNode(id={self.node_id!r}, table={self.engine.config.name!r}, "
            f"resident={self.cache.resident_count()})"
        )
