"""RPC-fronted node proxy: the Thrift substitute in the serving path.

:class:`RPCNodeProxy` wraps an :class:`~repro.server.node.IPSNode` behind
the :class:`~repro.server.rpc.RPCServer` transport so every call pays the
modelled network cost and both server-side and client-side latency are
recorded per request — the decomposition Table II reports.  Server-side
time is the *measured* wall-clock time of the real handler, so proxied
traffic yields a real-code Table II.

The proxy exposes the same read/write surface as the node, which makes it
drop-in for the cluster client (duck-typed via ``getattr`` dispatch).
"""

from __future__ import annotations

import time
from typing import Any

from ..clock import Clock
from .node import IPSNode
from .rpc import LatencyModel, RPCServer


class RPCNodeProxy:
    """Routes node calls through the simulated RPC transport."""

    #: Methods forwarded through the RPC layer.
    _RPC_METHODS = frozenset(
        {
            "add_profile",
            "add_profiles",
            "get_profile_topk",
            "get_profile_filter",
            "get_profile_decay",
            "multi_get_topk",
            "multi_get_filter",
            "multi_get_decay",
        }
    )

    def __init__(
        self,
        node: IPSNode,
        clock: Clock,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.node = node
        self.rpc = RPCServer(node, clock, latency_model)

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def set_available(self, available: bool) -> None:
        self.rpc.set_available(available)

    def __getattr__(self, name: str) -> Any:
        if name in self._RPC_METHODS:
            def call(*args: Any, **kwargs: Any) -> Any:
                start = time.perf_counter()
                # The RPC layer measures the real handler cost: invoke the
                # handler inside, then charge its wall time as server time.
                def timed_handler(*inner_args: Any, **inner_kwargs: Any) -> Any:
                    return getattr(self.node, name)(*inner_args, **inner_kwargs)

                # RPCServer resolves the method on its target, so install a
                # shim attribute pointing at the timed handler.
                result = self.rpc.call(
                    name, *args,
                    server_time_ms=0.0,  # Placeholder; patched below.
                    **kwargs,
                )
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                # Replace the recorded zero server time with the measured
                # handler time (the call above already appended entries).
                if self.rpc.stats.server_latency_ms:
                    self.rpc.stats.server_latency_ms[-1] = elapsed_ms
                    self.rpc.stats.client_latency_ms[-1] += elapsed_ms
                return result

            return call
        # Non-RPC attributes (stats, cache, engine, ...) pass through so
        # operational tooling keeps working against the proxy.
        return getattr(self.node, name)

    def latency_summary(self) -> dict[str, float]:
        """Client/server latency summary over proxied calls (milliseconds)."""
        from ..sim.metrics import percentile

        stats = self.rpc.stats
        if not stats.client_latency_ms:
            return {}
        return {
            "calls": float(stats.calls),
            "client_p50_ms": percentile(stats.client_latency_ms, 50),
            "client_p99_ms": percentile(stats.client_latency_ms, 99),
            "server_p50_ms": percentile(stats.server_latency_ms, 50),
            "server_p99_ms": percentile(stats.server_latency_ms, 99),
        }
