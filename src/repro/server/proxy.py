"""RPC-fronted node proxy: the Thrift substitute in the serving path.

:class:`RPCNodeProxy` wraps an :class:`~repro.server.node.IPSNode` behind
the :class:`~repro.server.rpc.RPCServer` transport so every call pays the
modelled network cost and both server-side and client-side latency are
recorded per request — the decomposition Table II reports.  Server-side
time is the *measured* wall-clock time of the real handler (the RPC layer
times it), so proxied traffic yields a real-code Table II.

Each hop can be observed two ways:

* a :class:`~repro.obs.trace.Tracer` records an ``rpc.call`` span per
  proxied call (child of whatever client span is open on the thread);
* a :class:`~repro.obs.registry.MetricsRegistry` accumulates
  ``rpc_client_ms`` / ``rpc_server_ms`` histograms labelled by node.

The proxy exposes the same read/write surface as the node, which makes it
drop-in for the cluster client (duck-typed via ``getattr`` dispatch).
"""

from __future__ import annotations

from typing import Any

from ..clock import Clock
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from .node import IPSNode
from .rpc import LatencyModel, RPCServer


class RPCNodeProxy:
    """Routes node calls through the simulated RPC transport."""

    #: Methods forwarded through the RPC layer.
    _RPC_METHODS = frozenset(
        {
            "add_profile",
            "add_profiles",
            "get_profile_topk",
            "get_profile_filter",
            "get_profile_decay",
            "multi_get_topk",
            "multi_get_filter",
            "multi_get_decay",
        }
    )

    def __init__(
        self,
        node: IPSNode,
        clock: Clock,
        latency_model: LatencyModel | None = None,
        tracer=NULL_TRACER,
        registry: MetricsRegistry | None = None,
        advance_clock: bool = False,
    ) -> None:
        self.node = node
        self.rpc = RPCServer(node, clock, latency_model, advance_clock=advance_clock)
        self.tracer = tracer
        self._client_hist = (
            registry.histogram("rpc_client_ms", node=node.node_id)
            if registry is not None
            else None
        )
        self._server_hist = (
            registry.histogram("rpc_server_ms", node=node.node_id)
            if registry is not None
            else None
        )

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def set_available(self, available: bool) -> None:
        self.rpc.set_available(available)

    def __getattr__(self, name: str) -> Any:
        if name in self._RPC_METHODS:
            def call(*args: Any, **kwargs: Any) -> Any:
                with self.tracer.span(
                    "rpc.call", node=self.node.node_id, method=name
                ) as span:
                    result = self.rpc.call(
                        name, *args, measure_server_time=True, **kwargs
                    )
                    stats = self.rpc.stats
                    span.tag(
                        client_ms=round(stats.last_client_ms, 3),
                        server_ms=round(stats.last_server_ms, 3),
                    )
                if self._client_hist is not None:
                    self._client_hist.observe(stats.last_client_ms)
                    self._server_hist.observe(stats.last_server_ms)
                return result

            return call
        # Non-RPC attributes (stats, cache, engine, ...) pass through so
        # operational tooling keeps working against the proxy.
        return getattr(self.node, name)

    def crash(self) -> None:
        """Chaos seam: take the transport down *and* lose volatile state."""
        self.rpc.set_available(False)
        self.node.crash()

    def restart(self):
        """Chaos seam: bring the transport back up and recover durable state.

        With a durability layer attached, the restart replays checkpoint +
        WAL before accepting traffic and returns the
        :class:`~repro.server.recovery.RecoveryReport`; without one the
        node simply comes up cold and ``None`` is returned.
        """
        report = self.node.recover()
        self.rpc.set_available(True)
        return report

    def latency_summary(self) -> dict[str, float]:
        """Client/server latency summary over proxied calls (milliseconds)."""
        stats = self.rpc.stats
        if not stats.client_hist.count:
            return {}
        return {
            "calls": float(stats.calls),
            "client_p50_ms": stats.percentile(50, "client"),
            "client_p99_ms": stats.percentile(99, "client"),
            "server_p50_ms": stats.percentile(50, "server"),
            "server_p99_ms": stats.percentile(99, "server"),
        }


def wrap_region_with_proxies(
    deployment,
    latency_model: LatencyModel | None = None,
    tracer=NULL_TRACER,
    registry: MetricsRegistry | None = None,
    advance_clock: bool = False,
) -> list[RPCNodeProxy]:
    """Put every node of a cluster/deployment behind an :class:`RPCNodeProxy`.

    The standard way to build a "real" mini-cluster whose traffic pays the
    Table II network model — and the seam the chaos engine injects RPC
    faults into.  Idempotent: already-proxied nodes are left alone.
    Returns the proxies (one per node).
    """
    proxies: list[RPCNodeProxy] = []
    clock = deployment.clock
    for region in deployment.regions.values():
        for node_id in list(region.nodes):
            node = region.nodes[node_id]
            if not isinstance(node, RPCNodeProxy):
                node = RPCNodeProxy(
                    node,
                    clock,
                    latency_model=latency_model,
                    tracer=tracer,
                    registry=registry,
                    advance_clock=advance_clock,
                )
                region.nodes[node_id] = node
            proxies.append(node)
    return proxies
