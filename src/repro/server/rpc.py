"""Simulated RPC transport (the Thrift substitute).

The paper decomposes end-to-end latency into network transmission plus
server-side compute (Table II): the network contributes roughly 3 ms and
grows proportionally with the response size.  :class:`LatencyModel`
reproduces that decomposition so client-side latency measurements in our
experiments carry the same structure; :class:`RPCServer` wraps a node's
handlers with the model and per-call accounting.

The transport is in-process and synchronous: "sending" a request charges
simulated milliseconds on a :class:`~repro.clock.SimulatedClock` (when one
is used) and records client/server latencies into bounded log-bucket
histograms (:class:`RPCStats`), so a node can take billions of calls
without the stats growing.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..clock import Clock, SimulatedClock, perf_ms
from ..errors import NodeUnavailableError
from ..obs.registry import Histogram


@dataclass(frozen=True)
class RPCFault:
    """One transport-level fault decision for a single call.

    Produced by a fault hook (see :attr:`RPCServer.fault_hook`) — normally
    the chaos engine — and applied by :meth:`RPCServer.call`:
    ``extra_latency_ms`` is added to the modelled client latency (and the
    simulated clock when the server advances it); a non-``None`` ``error``
    is raised instead of dispatching the handler.
    """

    extra_latency_ms: float = 0.0
    error: Exception | None = None


@dataclass
class LatencyModel:
    """Latency decomposition of one hop.

    ``network_base_ms`` is the fixed round-trip overhead (~3 ms in the
    paper); ``per_kb_ms`` grows the cost proportionally to the payload;
    ``jitter_ms`` adds uniform noise so percentile curves are non-trivial.
    """

    network_base_ms: float = 3.0
    per_kb_ms: float = 0.05
    jitter_ms: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def network_ms(self, payload_bytes: int) -> float:
        jitter = self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms else 0.0
        return self.network_base_ms + self.per_kb_ms * (payload_bytes / 1024.0) + jitter


class RPCStats:
    """Bounded per-server call accounting.

    Latency samples go into fixed-size log-bucket histograms instead of
    unbounded lists; ``last_client_ms`` / ``last_server_ms`` keep the most
    recent sample for call-level assertions and per-call exports.
    """

    __slots__ = (
        "calls",
        "failures",
        "client_hist",
        "server_hist",
        "last_client_ms",
        "last_server_ms",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.failures = 0
        self.client_hist = Histogram()
        self.server_hist = Histogram()
        self.last_client_ms = 0.0
        self.last_server_ms = 0.0

    def observe(self, client_ms: float, server_ms: float) -> None:
        self.client_hist.record(client_ms)
        self.server_hist.record(server_ms)
        self.last_client_ms = client_ms
        self.last_server_ms = server_ms

    def percentile(self, q: float, kind: str = "client") -> float:
        """Latency percentile (``q`` in [0, 100]) for ``client`` or
        ``server`` samples — the accessor existing callers keep using."""
        if kind == "client":
            return self.client_hist.percentile(q)
        if kind == "server":
            return self.server_hist.percentile(q)
        raise ValueError(f"kind must be 'client' or 'server', got {kind!r}")


class RPCServer:
    """Dispatches named methods on a target object through the latency model.

    ``server_time_ms`` lets callers supply the simulated server-side
    compute time for a call (e.g. from measured service-time
    distributions); ``measure_server_time=True`` instead measures the real
    handler wall time through the clock's perf source — the mode the node
    proxy uses so proxied traffic yields a real-code Table II.  When the
    shared clock is a :class:`SimulatedClock` the total latency advances
    it, so driver loops see consistent timelines.
    """

    def __init__(
        self,
        target: Any,
        clock: Clock,
        latency_model: LatencyModel | None = None,
        advance_clock: bool = False,
    ) -> None:
        self._target = target
        self._clock = clock
        self._model = latency_model if latency_model is not None else LatencyModel()
        self._advance_clock = advance_clock
        self._lock = threading.Lock()
        self.stats = RPCStats()
        self.available = True
        #: Optional per-call fault source ``(node_id, method) -> RPCFault |
        #: None`` consulted before dispatch — the chaos engine's injection
        #: point for dropped/erroring RPCs and added latency.
        self.fault_hook: Callable[[str, str], RPCFault | None] | None = None

    def set_available(self, available: bool) -> None:
        """Simulate the node going down / coming back (fault injection)."""
        self.available = available

    def call(
        self,
        method: str,
        *args: Any,
        request_bytes: int = 256,
        server_time_ms: float = 0.0,
        measure_server_time: bool = False,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``method`` on the target, charging simulated latency.

        Raises :class:`NodeUnavailableError` when the server is marked
        down; other handler exceptions propagate unchanged after being
        counted as failures.
        """
        node_id = getattr(self._target, "node_id", "unknown")
        if not self.available:
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise NodeUnavailableError(node_id)
        fault = (
            self.fault_hook(node_id, method) if self.fault_hook is not None else None
        )
        extra_latency_ms = 0.0
        if fault is not None:
            extra_latency_ms = fault.extra_latency_ms
            if fault.error is not None:
                with self._lock:
                    self.stats.calls += 1
                    self.stats.failures += 1
                if self._advance_clock and isinstance(self._clock, SimulatedClock):
                    # A dropped/erroring call still burns wire time before
                    # the client sees the failure.
                    self._clock.advance(
                        max(1, round(self._model.network_base_ms + extra_latency_ms))
                    )
                raise fault.error
        handler: Callable[..., Any] = getattr(self._target, method)
        start = perf_ms() if measure_server_time else 0.0
        try:
            result = handler(*args, **kwargs)
        except Exception:
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise
        if measure_server_time:
            server_time_ms = perf_ms() - start
        response_bytes = self._estimate_size(result)
        network_ms = self._model.network_ms(request_bytes + response_bytes)
        client_ms = network_ms + server_time_ms + extra_latency_ms
        with self._lock:
            self.stats.calls += 1
            self.stats.observe(client_ms, server_time_ms)
        if self._advance_clock and isinstance(self._clock, SimulatedClock):
            self._clock.advance(max(1, round(client_ms)))
        return result

    @staticmethod
    def _estimate_size(result: Any) -> int:
        """Rough response payload size for the proportional network cost."""
        if result is None:
            return 16
        if isinstance(result, (bytes, bytearray)):
            return len(result)
        if isinstance(result, (list, tuple)):
            return 16 + 48 * len(result)
        if isinstance(result, dict):
            # Batched responses: one envelope per key plus its payload.
            return 16 + sum(
                32 + RPCServer._estimate_size(value) for value in result.values()
            )
        value = getattr(result, "value", None)
        if isinstance(value, (list, tuple)):
            # A per-key result envelope wrapping a row list.
            return 16 + 48 * len(value)
        return 64
