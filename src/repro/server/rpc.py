"""Simulated RPC transport (the Thrift substitute).

The paper decomposes end-to-end latency into network transmission plus
server-side compute (Table II): the network contributes roughly 3 ms and
grows proportionally with the response size.  :class:`LatencyModel`
reproduces that decomposition so client-side latency measurements in our
experiments carry the same structure; :class:`RPCServer` wraps a node's
handlers with the model and per-call accounting.

The transport is in-process and synchronous: "sending" a request charges
simulated milliseconds on a :class:`~repro.clock.SimulatedClock` (when one
is used) and records client/server latency samples.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..clock import Clock, SimulatedClock
from ..errors import NodeUnavailableError


@dataclass
class LatencyModel:
    """Latency decomposition of one hop.

    ``network_base_ms`` is the fixed round-trip overhead (~3 ms in the
    paper); ``per_kb_ms`` grows the cost proportionally to the payload;
    ``jitter_ms`` adds uniform noise so percentile curves are non-trivial.
    """

    network_base_ms: float = 3.0
    per_kb_ms: float = 0.05
    jitter_ms: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def network_ms(self, payload_bytes: int) -> float:
        jitter = self._rng.uniform(0.0, self.jitter_ms) if self.jitter_ms else 0.0
        return self.network_base_ms + self.per_kb_ms * (payload_bytes / 1024.0) + jitter


@dataclass
class RPCStats:
    calls: int = 0
    failures: int = 0
    client_latency_ms: list[float] = field(default_factory=list)
    server_latency_ms: list[float] = field(default_factory=list)


class RPCServer:
    """Dispatches named methods on a target object through the latency model.

    ``server_time_fn`` lets callers supply the simulated server-side compute
    time for a call (e.g. from measured service-time distributions); when
    omitted the server time is measured as zero and only network cost is
    modelled.  When the shared clock is a :class:`SimulatedClock` the total
    latency advances it, so driver loops see consistent timelines.
    """

    def __init__(
        self,
        target: Any,
        clock: Clock,
        latency_model: LatencyModel | None = None,
        advance_clock: bool = False,
    ) -> None:
        self._target = target
        self._clock = clock
        self._model = latency_model if latency_model is not None else LatencyModel()
        self._advance_clock = advance_clock
        self._lock = threading.Lock()
        self.stats = RPCStats()
        self.available = True

    def set_available(self, available: bool) -> None:
        """Simulate the node going down / coming back (fault injection)."""
        self.available = available

    def call(
        self,
        method: str,
        *args: Any,
        request_bytes: int = 256,
        server_time_ms: float = 0.0,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``method`` on the target, charging simulated latency.

        Raises :class:`NodeUnavailableError` when the server is marked
        down; other handler exceptions propagate unchanged after being
        counted as failures.
        """
        if not self.available:
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise NodeUnavailableError(getattr(self._target, "node_id", "unknown"))
        handler: Callable[..., Any] = getattr(self._target, method)
        try:
            result = handler(*args, **kwargs)
        except Exception:
            with self._lock:
                self.stats.calls += 1
                self.stats.failures += 1
            raise
        response_bytes = self._estimate_size(result)
        network_ms = self._model.network_ms(request_bytes + response_bytes)
        client_ms = network_ms + server_time_ms
        with self._lock:
            self.stats.calls += 1
            self.stats.server_latency_ms.append(server_time_ms)
            self.stats.client_latency_ms.append(client_ms)
        if self._advance_clock and isinstance(self._clock, SimulatedClock):
            self._clock.advance(max(1, round(client_ms)))
        return result

    @staticmethod
    def _estimate_size(result: Any) -> int:
        """Rough response payload size for the proportional network cost."""
        if result is None:
            return 16
        if isinstance(result, (bytes, bytearray)):
            return len(result)
        if isinstance(result, (list, tuple)):
            return 16 + 48 * len(result)
        if isinstance(result, dict):
            # Batched responses: one envelope per key plus its payload.
            return 16 + sum(
                32 + RPCServer._estimate_size(value) for value in result.values()
            )
        value = getattr(result, "value", None)
        if isinstance(value, (list, tuple)):
            # A per-key result envelope wrapping a row list.
            return 16 + 48 * len(value)
        return 64
