"""Background maintenance pool (§III-D).

The paper's production lesson: running compaction on the serving path
hurts query tails, so IPS "delegate[s] them to run asynchronously in a
dedicated thread pool with capped parallelism", and chooses full vs
partial compaction based on load.  :class:`MaintenancePool` implements
that control loop for one node:

* at most ``max_parallelism`` worker threads drain the engine's
  maintenance-pending set;
* a load signal (callable returning current utilisation in [0, 1])
  selects the strategy: below ``full_compaction_load`` profiles get a
  full pass, above it only the cheap partial pass runs, and above
  ``pause_load`` maintenance pauses entirely, leaving CPU to serving;
* :meth:`run_once` performs one deterministic scheduling round for tests
  and benches, while :meth:`start`/:meth:`stop` run the real threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from ..core.engine import ProfileEngine


@dataclass
class MaintenancePoolStats:
    rounds: int = 0
    full_passes: int = 0
    partial_passes: int = 0
    paused_rounds: int = 0


class MaintenancePool:
    """Capped-parallelism maintenance scheduler for one engine."""

    def __init__(
        self,
        engine: ProfileEngine,
        load_fn: Callable[[], float] | None = None,
        max_parallelism: int = 2,
        batch_per_round: int = 64,
        full_compaction_load: float = 0.5,
        pause_load: float = 0.9,
        partial_budget: int = 32,
    ) -> None:
        if max_parallelism < 1:
            raise ValueError(f"max_parallelism must be >= 1, got {max_parallelism}")
        if not 0.0 < full_compaction_load <= pause_load <= 1.0:
            raise ValueError(
                "need 0 < full_compaction_load <= pause_load <= 1, got "
                f"{full_compaction_load} / {pause_load}"
            )
        self._engine = engine
        self._load_fn = load_fn if load_fn is not None else (lambda: 0.0)
        self.max_parallelism = max_parallelism
        self.batch_per_round = batch_per_round
        self.full_compaction_load = full_compaction_load
        self.pause_load = pause_load
        self.partial_budget = partial_budget
        self.stats = MaintenancePoolStats()
        self._stop_event = threading.Event()
        self._workers: list[threading.Thread] = []
        self._claim_lock = threading.Lock()

    # ------------------------------------------------------------------

    def choose_strategy(self) -> str:
        """'full', 'partial' or 'pause' based on the current load."""
        load = self._load_fn()
        if load >= self.pause_load:
            return "pause"
        if load >= self.full_compaction_load:
            return "partial"
        return "full"

    def run_once(self) -> int:
        """One scheduling round; returns profiles maintained."""
        self.stats.rounds += 1
        strategy = self.choose_strategy()
        if strategy == "pause":
            self.stats.paused_rounds += 1
            return 0
        full = strategy == "full"
        maintained = 0
        with self._claim_lock:
            pending = list(self._engine.pending_maintenance())[: self.batch_per_round]
        for profile_id in pending:
            self._engine.maintain_profile(
                profile_id, full=full, partial_budget=self.partial_budget
            )
            maintained += 1
        if maintained:
            if full:
                self.stats.full_passes += maintained
            else:
                self.stats.partial_passes += maintained
        return maintained

    # ------------------------------------------------------------------

    def start(self, interval_s: float = 0.05) -> None:
        """Spawn the capped worker pool."""
        if self._workers:
            raise RuntimeError("maintenance pool already started")
        self._stop_event.clear()
        for index in range(self.max_parallelism):
            worker = threading.Thread(
                target=self._loop,
                args=(interval_s,),
                name=f"maintenance-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def stop(self) -> None:
        self._stop_event.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers.clear()

    def _loop(self, interval_s: float) -> None:
        while not self._stop_event.wait(interval_s):
            self._claim_and_run()

    def _claim_and_run(self) -> None:
        """Claim one pending profile and maintain it (worker body)."""
        with self._claim_lock:
            pending = self._engine.pending_maintenance()
            if not pending:
                return
            profile_id = next(iter(pending))
            # Claiming = removing from pending before the (slow) pass so
            # other workers pick different profiles.
            self._engine._maintenance_pending.discard(profile_id)
        strategy = self.choose_strategy()
        if strategy == "pause":
            self.stats.paused_rounds += 1
            self._engine._maintenance_pending.add(profile_id)  # Put it back.
            return
        full = strategy == "full"
        self._engine.maintain_profile(
            profile_id, full=full, partial_budget=self.partial_budget
        )
        if full:
            self.stats.full_passes += 1
        else:
            self.stats.partial_passes += 1
