"""Diurnal traffic curves.

Fig. 16 shows the Jinri Toutiao cluster's query throughput oscillating
between roughly 30M and 40M QPS across the days of the 2020 Spring
Festival, with nightly troughs.  :class:`DiurnalTrafficModel` produces that
shape: a base sinusoid with a morning/evening double peak, a nightly
trough, and seeded noise; :func:`spring_festival_curve` instantiates the
paper's parameters.
"""

from __future__ import annotations

import math
import random

from ..clock import MILLIS_PER_DAY, MILLIS_PER_HOUR


class DiurnalTrafficModel:
    """QPS as a function of time-of-day."""

    def __init__(
        self,
        base_qps: float,
        peak_qps: float,
        trough_hour: float = 4.0,
        peak_hour: float = 20.0,
        noise_fraction: float = 0.03,
        seed: int = 0,
    ) -> None:
        if peak_qps < base_qps:
            raise ValueError(
                f"peak ({peak_qps}) must be >= base ({base_qps})"
            )
        self.base_qps = base_qps
        self.peak_qps = peak_qps
        self.trough_hour = trough_hour
        self.peak_hour = peak_hour
        self.noise_fraction = noise_fraction
        self._rng = random.Random(seed)

    def qps_at(self, time_ms: int) -> float:
        """Instantaneous offered load at an epoch-ms time."""
        hour = (time_ms % MILLIS_PER_DAY) / MILLIS_PER_HOUR
        # Phase positioned so the minimum lands on trough_hour and the
        # maximum near peak_hour: a skewed double-hump built from two
        # harmonics, which matches the lunch + evening peaks of Fig. 16.
        phase = (hour - self.trough_hour) / 24.0 * 2.0 * math.pi
        primary = (1.0 - math.cos(phase)) / 2.0  # 0 at trough, 1 half-day later
        secondary = (1.0 - math.cos(2.0 * phase)) / 8.0
        shape = min(1.0, primary + secondary)
        qps = self.base_qps + (self.peak_qps - self.base_qps) * shape
        if self.noise_fraction:
            qps *= 1.0 + self._rng.uniform(-self.noise_fraction, self.noise_fraction)
        return max(0.0, qps)

    def series(
        self, start_ms: int, duration_ms: int, step_ms: int
    ) -> list[tuple[int, float]]:
        """(time_ms, qps) samples across a span."""
        if step_ms <= 0:
            raise ValueError(f"step must be positive, got {step_ms}")
        return [
            (t, self.qps_at(t))
            for t in range(start_ms, start_ms + duration_ms, step_ms)
        ]


def spring_festival_curve(
    read_traffic: bool = True, seed: int = 0
) -> DiurnalTrafficModel:
    """Fig. 16 (reads: 30-40M QPS) / Fig. 19 (writes: 3-4M QPS) curves.

    The paper reports read traffic at about 10x write traffic, so the write
    curve is the read curve scaled down by 10.
    """
    if read_traffic:
        return DiurnalTrafficModel(
            base_qps=30e6, peak_qps=40e6, seed=seed
        )
    return DiurnalTrafficModel(base_qps=3e6, peak_qps=4e6, seed=seed)
