"""Synthetic workload generation.

The paper evaluates IPS on Jinri Toutiao production traffic; we substitute
a synthetic workload with the same shape: Zipf-distributed user and item
popularity, per-request action mixes calibrated to a 10:1 read:write ratio,
and the diurnal Spring-Festival traffic curve of Fig. 16.
"""

from .diurnal import DiurnalTrafficModel, spring_festival_curve
from .generator import ActionMix, EventStreamGenerator, WorkloadConfig
from .zipf import ZipfGenerator

__all__ = [
    "ActionMix",
    "DiurnalTrafficModel",
    "EventStreamGenerator",
    "WorkloadConfig",
    "ZipfGenerator",
    "spring_festival_curve",
]
