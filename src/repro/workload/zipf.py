"""Zipf-distributed id sampling.

User and item popularity in recommendation traffic is heavily skewed; the
cache-hit-ratio behaviour of Fig. 18 only emerges with a realistic skew.
:class:`ZipfGenerator` samples ids ``0..n-1`` with probability proportional
to ``1 / (rank + 1)^s`` using inverse-CDF lookup over a precomputed table
(exact, no rejection), which keeps sampling O(log n).
"""

from __future__ import annotations

import bisect
import random


class ZipfGenerator:
    """Samples ranks from a (finite) Zipf distribution."""

    def __init__(self, n: int, s: float = 1.05, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"population must be positive, got {n}")
        if s <= 0:
            raise ValueError(f"skew must be positive, got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        cdf = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / rank**s
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self) -> int:
        """One id in ``[0, n)``; rank 0 is the most popular."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Probability mass of the id at ``rank``."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of [0, {self.n})")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - lower
