"""Synthetic event-stream and query workload generation.

:class:`EventStreamGenerator` produces the impression/action/feature event
streams that feed the ingestion pipeline, with Zipf-skewed users and items
and a configurable action mix (click-through rate, like rate, ...), plus
read-side query descriptors with the paper's ~10:1 read:write ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from ..ingest.events import ActionEvent, FeatureEvent, ImpressionEvent
from .zipf import ZipfGenerator


@dataclass(frozen=True)
class ActionMix:
    """Per-impression probability of each action type."""

    probabilities: dict[str, float] = field(
        default_factory=lambda: {
            "click": 0.30,
            "like": 0.06,
            "comment": 0.02,
            "share": 0.01,
        }
    )

    def __post_init__(self) -> None:
        for action, probability in self.probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"probability for {action!r} out of range: {probability}"
                )


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape parameters for a synthetic workload."""

    num_users: int = 10_000
    num_items: int = 50_000
    num_slots: int = 8
    num_types: int = 4
    user_skew: float = 1.05
    item_skew: float = 1.10
    action_mix: ActionMix = field(default_factory=ActionMix)
    seed: int = 0


@dataclass(frozen=True)
class QueryDescriptor:
    """One read-side request the driver replays against IPS."""

    user_id: int
    slot: int
    type_id: int | None
    window_ms: int
    k: int


class EventStreamGenerator:
    """Generates event triples and query descriptors."""

    #: Window spans queries draw from (a mix of short and long windows, the
    #: flexibility §I motivates).
    QUERY_WINDOWS_MS = (
        10 * 60 * 1000,          # 10 minutes
        MILLIS_PER_HOUR,         # 1 hour
        MILLIS_PER_DAY,          # 1 day
        7 * MILLIS_PER_DAY,      # 1 week
        30 * MILLIS_PER_DAY,     # 30 days
    )

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config if config is not None else WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self._users = ZipfGenerator(
            self.config.num_users, self.config.user_skew, self.config.seed
        )
        self._items = ZipfGenerator(
            self.config.num_items, self.config.item_skew, self.config.seed + 1
        )
        self._request_counter = 0

    # -- event side -----------------------------------------------------------

    def impressions(
        self, count: int, start_ms: int, span_ms: int
    ) -> Iterator[tuple[ImpressionEvent, list[ActionEvent], FeatureEvent]]:
        """Yield (impression, actions, feature) triples over a time span.

        Timestamps are spread uniformly over ``[start_ms, start_ms+span_ms)``
        in increasing order; actions trail the impression by a few seconds.
        """
        if count <= 0:
            return
        step = max(1, span_ms // count)
        timestamp = start_ms
        for _ in range(count):
            yield self._one_request(timestamp)
            timestamp += step

    def _one_request(
        self, timestamp_ms: int
    ) -> tuple[ImpressionEvent, list[ActionEvent], FeatureEvent]:
        self._request_counter += 1
        request_id = f"req-{self._request_counter}"
        user_id = self._users.sample()
        item_id = self._items.sample()
        impression = ImpressionEvent(
            request_id=request_id,
            user_id=user_id,
            item_id=item_id,
            timestamp_ms=timestamp_ms,
            source="client" if self._rng.random() < 0.5 else "server",
        )
        actions = []
        for action, probability in self.config.action_mix.probabilities.items():
            if self._rng.random() < probability:
                actions.append(
                    ActionEvent(
                        request_id=request_id,
                        user_id=user_id,
                        item_id=item_id,
                        timestamp_ms=timestamp_ms + self._rng.randint(500, 5000),
                        action=action,
                    )
                )
        feature = FeatureEvent(
            request_id=request_id,
            item_id=item_id,
            timestamp_ms=timestamp_ms,
            signals={
                "slot": item_id % self.config.num_slots,
                "type": item_id % self.config.num_types,
            },
        )
        return impression, actions, feature

    # -- query side ----------------------------------------------------------

    def queries(self, count: int) -> Iterator[QueryDescriptor]:
        """Yield read-request descriptors with skewed users and mixed windows."""
        for _ in range(count):
            yield QueryDescriptor(
                user_id=self._users.sample(),
                slot=self._rng.randrange(self.config.num_slots),
                type_id=(
                    self._rng.randrange(self.config.num_types)
                    if self._rng.random() < 0.7
                    else None
                ),
                window_ms=self._rng.choice(self.QUERY_WINDOWS_MS),
                k=self._rng.choice((5, 10, 20, 50)),
            )
