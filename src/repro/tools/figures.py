"""Regenerate every §IV figure as an ASCII chart.

Usage::

    python -m repro.tools.figures [--days N] [--nodes N] [--seed N]

Runs the calibrated cluster simulator over the Spring-Festival traffic
curves and prints Figures 16-19 (throughput, latency percentiles, error
rate, memory/hit ratio, write latency with the isolation A/B) as terminal
charts, each annotated with the paper's reference values.
"""

from __future__ import annotations

import argparse

from ..clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from ..sim import ClusterSimulator, FaultSchedule
from ..sim.ascii_chart import Series, render_chart
from ..workload import spring_festival_curve


def figure16(simulator, reads, days: int) -> str:
    result = simulator.simulate_queries(
        reads, 0, days * MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR
    )
    hours = lambda t: t / MILLIS_PER_HOUR
    throughput = render_chart(
        "Fig 16a — query throughput (paper: 30-40M qps diurnal)",
        [Series("qps (M)", [(hours(t), v / 1e6) for t, v in result.series("offered_qps")])],
        x_label="hours",
        y_label="million qps",
    )
    latency = render_chart(
        "Fig 16b — query latency (paper: p50 ~1ms flat, p99 9-10ms)",
        [
            Series("p99 ms", [(hours(t), v) for t, v in result.series("p99_ms")], "#"),
            Series("p50 ms", [(hours(t), v) for t, v in result.series("p50_ms")], "."),
        ],
        x_label="hours",
        y_label="milliseconds",
        y_min=0.0,
    )
    return throughput + "\n\n" + latency


def figure17(simulator, reads) -> str:
    schedule = FaultSchedule.production_twenty_days(seed=7)
    result = simulator.simulate_queries(
        reads, 0, 20 * MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR,
        fault_schedule=schedule,
    )
    days = lambda t: t / MILLIS_PER_DAY
    return render_chart(
        "Fig 17 — client error rate over 20 days "
        "(paper: max ~0.025%, avg <0.01%)",
        [
            Series(
                "error %",
                [(days(t), v * 100) for t, v in result.series("error_rate")],
            )
        ],
        x_label="days",
        y_label="percent",
        y_min=0.0,
    )


def figure18(simulator, reads, days: int) -> str:
    result = simulator.simulate_queries(
        reads, 0, days * MILLIS_PER_DAY, MILLIS_PER_HOUR
    )
    hours = lambda t: t / MILLIS_PER_HOUR
    return render_chart(
        "Fig 18 — memory usage & cache hit ratio "
        "(paper: mem ~85% stable, hit >90%)",
        [
            Series(
                "hit %",
                [(hours(t), v * 100) for t, v in result.series("hit_ratio")],
                "#",
            ),
            Series(
                "mem %",
                [(hours(t), v * 100) for t, v in result.series("memory_ratio")],
                ".",
            ),
        ],
        x_label="hours",
        y_label="percent",
        y_min=70.0,
        y_max=100.0,
    )


def figure19(simulator, writes, reads, days: int) -> str:
    on = simulator.simulate_writes(
        writes, 0, days * MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR,
        isolation=True, read_traffic_model=reads,
    )
    off = simulator.simulate_writes(
        writes, 0, days * MILLIS_PER_DAY, 2 * MILLIS_PER_HOUR,
        isolation=False, read_traffic_model=reads,
    )
    hours = lambda t: t / MILLIS_PER_HOUR
    throughput = render_chart(
        "Fig 19a — write throughput (paper: 3-4M/s, reads/10)",
        [Series("writes (M/s)", [(hours(t), v / 1e6) for t, v in on.series("offered_qps")])],
        x_label="hours",
    )
    latency = render_chart(
        "Fig 19b — write p99 with/without isolation "
        "(paper: isolation cuts p99 ~80%)",
        [
            Series("p99 isolation OFF", [(hours(t), v) for t, v in off.series("p99_ms")], "x"),
            Series("p99 isolation ON", [(hours(t), v) for t, v in on.series("p99_ms")], "#"),
            Series("p50 ON", [(hours(t), v) for t, v in on.series("p50_ms")], "."),
        ],
        x_label="hours",
        y_label="milliseconds",
        y_min=0.0,
    )
    return throughput + "\n\n" + latency


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    simulator = ClusterSimulator(
        num_nodes=args.nodes, seed=args.seed, samples_per_step=2000
    )
    reads = spring_festival_curve(read_traffic=True, seed=args.seed)
    writes = spring_festival_curve(read_traffic=False, seed=args.seed)

    sections = [
        figure16(simulator, reads, args.days),
        figure17(simulator, reads),
        figure18(simulator, reads, min(args.days, 2)),
        figure19(simulator, writes, reads, args.days),
    ]
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
