"""Calibration report: measure the real implementation's op costs.

Usage::

    python -m repro.tools.calibration_report [--repeats N]

Prints the single-operation costs the cluster simulator uses as anchors
(see ``repro.sim.calibrate`` and DESIGN.md §1.3), plus the derived
Python/C++ factor and simulated miss penalty.
"""

from __future__ import annotations

import argparse

from ..sim.calibrate import calibrate_service_times


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=200)
    parser.add_argument(
        "--kernel-backend",
        default=None,
        help="pin the query kernel backend (python/numpy; default: auto)",
    )
    args = parser.parse_args(argv)

    result = calibrate_service_times(
        repeats=args.repeats, kernel_backend=args.kernel_backend
    )
    rows = [
        ("kernel backend", result.kernel_backend),
        ("top-K query (30d window)", f"{result.query_topk_ms:.3f} ms"),
        ("single write", f"{result.write_ms * 1000:.1f} µs"),
        ("serialize profile", f"{result.serialize_ms:.3f} ms"),
        ("deserialize profile", f"{result.deserialize_ms:.3f} ms"),
        ("compress blob", f"{result.compress_ms:.3f} ms"),
        ("decompress blob", f"{result.decompress_ms:.3f} ms"),
        ("profile in-memory size", f"{result.profile_bytes / 1024:.1f} KB"),
        ("profile serialized size", f"{result.serialized_bytes / 1024:.1f} KB"),
        ("derived python/C++ factor", f"{result.python_cpp_factor:.1f}x"),
        ("derived sim miss penalty", f"{result.miss_penalty_ms:.2f} ms"),
    ]
    width = max(len(label) for label, _ in rows)
    print(f"calibration over {args.repeats} repeats:")
    for label, value in rows:
        print(f"  {label:<{width}}  {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
