"""One-screen ASCII observability dashboard (``python -m repro.tools.dashboard``).

Renders the process-wide :class:`~repro.obs.registry.MetricsRegistry`
(latency percentiles per family, counters, gauges) together with
:class:`~repro.monitoring.ClusterMonitor` rollups and QPS / hit-ratio
charts, using the same chart renderer as the figure regeneration tool.

Three modes:

* **demo** (default) — build a small traced cluster, drive a mixed
  read/write workload through it, and render the resulting dashboard.
  This is also the exposition round-trip check: the registry is rendered
  to Prometheus text, parsed back with :func:`parse_exposition`, and the
  dashboard is built from the *parsed* form.
* ``--from-file FILE`` — render a dashboard from a saved text exposition
  (``-`` reads stdin).
* ``--json`` — emit the registry's JSON export instead of the ASCII view.
"""

from __future__ import annotations

import argparse
import re
import sys

from ..monitoring import ClusterMonitor
from ..sim.ascii_chart import Series, render_chart

#: ``name{label="value",...} value [# {trace_id="..."} v]`` — the shape of
#: every sample line the registry's text exposition emits.  Label values
#: are quoted strings with ``\\``-escapes (so they may contain escaped
#: quotes), and histogram bucket lines may carry an OpenMetrics-style
#: exemplar suffix.
_QUOTED = r'"(?:[^"\\\n]|\\.)*"'
_LABEL_BODY = rf"(?:[A-Za-z_][A-Za-z0-9_]*={_QUOTED},?)*"
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    rf"(?:\{{(?P<labels>{_LABEL_BODY})\}})?\s+(?P<value>\S+)"
    rf"(?:\s+#\s+\{{(?P<ex_labels>{_LABEL_BODY})\}}\s+(?P<ex_value>\S+))?$"
)
_LABEL_RE = re.compile(
    rf'(?P<key>[A-Za-z_][A-Za-z0-9_]*)="(?P<value>(?:[^"\\\n]|\\.)*)"'
)


def _parse_labels(body: str | None) -> dict[str, str]:
    from ..obs.registry import unescape_label_value

    if not body:
        return {}
    return {
        m.group("key"): unescape_label_value(m.group("value"))
        for m in _LABEL_RE.finditer(body)
    }


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse a Prometheus-style exposition back into metric families.

    Returns ``{name: {"type": kind, "metrics": [entry, ...]}}`` where a
    counter/gauge entry is ``{"labels", "value"}`` and a histogram entry is
    ``{"labels", "count", "sum", "buckets": [(le, cumulative), ...],
    "p50", "p95", "p99"}`` (quantiles read from the ``quantile=`` summary
    lines the registry emits, not re-derived from buckets).  Bucket lines
    carrying exemplar suffixes add ``"exemplars": [{"le", "trace_id",
    "value"}, ...]``; ``# HELP`` text lands under the family's ``"help"``.
    """
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    # (family, label-key) -> accumulating entry
    entries: dict[tuple[str, tuple], dict] = {}

    def entry_for(family: str, labels: dict[str, str]) -> dict:
        key = (family, _labels_key(labels))
        if key not in entries:
            entries[key] = {"labels": labels}
        return entries[key]

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[2] in kinds:
                    raise ValueError(f"duplicate # TYPE for {parts[2]}")
                kinds[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                if parts[2] in helps:
                    raise ValueError(f"duplicate # HELP for {parts[2]}")
                helps[parts[2]] = line.split(None, 3)[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = float(match.group("value"))
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[: -len(suffix)] if name.endswith(suffix) else None
            if family is not None and kinds.get(family) == "histogram":
                break
        else:
            family = None
        if family is not None:
            if name.endswith("_bucket"):
                le = labels.pop("le", "+Inf")
                entry = entry_for(family, labels)
                entry.setdefault("buckets", []).append((le, int(value)))
                if match.group("ex_labels") is not None:
                    exemplar_labels = _parse_labels(match.group("ex_labels"))
                    entry.setdefault("exemplars", []).append({
                        "le": le,
                        "trace_id": exemplar_labels.get("trace_id", ""),
                        "value": float(match.group("ex_value")),
                    })
            elif name.endswith("_sum"):
                entry_for(family, labels)["sum"] = value
            else:
                entry_for(family, labels)["count"] = int(value)
            continue
        if kinds.get(name) == "histogram":
            # Summary quantile line: name{...,quantile="0.5"} v
            quantile = labels.pop("quantile", None)
            entry = entry_for(name, labels)
            if quantile is not None:
                entry[f"p{float(quantile) * 100:g}"] = value
            continue
        entry_for(name, labels)["value"] = value

    out: dict[str, dict] = {}
    for (family, _), entry in entries.items():
        bucket = out.setdefault(
            family, {"type": kinds.get(family, "untyped"), "metrics": []}
        )
        if family in helps:
            bucket["help"] = helps[family]
        bucket["metrics"].append(entry)
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{body}}}"


def render_dashboard(
    families: dict[str, dict],
    monitor: ClusterMonitor | None = None,
    width: int = 60,
) -> str:
    """The one-screen ASCII dashboard.

    ``families`` is :func:`parse_exposition` output (or the equivalent
    built from a live registry via its text exposition).
    """
    lines: list[str] = ["=== IPS observability dashboard ==="]

    histograms = [
        (name, entry)
        for name, family in sorted(families.items())
        if family["type"] == "histogram"
        for entry in family["metrics"]
        if entry.get("count")
    ]
    if histograms:
        lines.append("")
        lines.append("-- latency / distributions --")
        header = f"{'metric':<44} {'count':>8} {'p50':>9} {'p95':>9} {'p99':>9}"
        lines.append(header)
        for name, entry in histograms:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(
                f"{label:<44} {entry.get('count', 0):>8} "
                f"{entry.get('p50', 0.0):>9.3f} "
                f"{entry.get('p95', 0.0):>9.3f} "
                f"{entry.get('p99', 0.0):>9.3f}"
            )

    scalars = [
        (name, family["type"], entry)
        for name, family in sorted(families.items())
        if family["type"] in ("counter", "gauge")
        for entry in family["metrics"]
    ]
    # Chaos injections and resilience counters get their own section so a
    # fault-injection run reads as one block: what was injected vs how the
    # client coped (retries, hedges, breaker flips, deadline misses).
    chaos = [
        item
        for item in scalars
        if item[0].startswith(("chaos_", "resilience_"))
    ]
    scalars = [item for item in scalars if item not in chaos]
    # Durability counters (WAL appends, replay lag, checkpoints,
    # recoveries) likewise read as one block: how far behind the durable
    # checkpoint each node is, and how often it had to replay.
    durability = [
        item
        for item in scalars
        if item[0].startswith(("wal_", "checkpoint", "recover"))
    ]
    scalars = [item for item in scalars if item not in durability]
    # Hot-read-path counters (server-side result cache + coalescing): hit
    # ratio, invalidation churn and window occupancy in one block.
    hot_reads = [
        item
        for item in scalars
        if item[0].startswith(("result_cache_", "singleflight_", "batch_window_"))
    ]
    scalars = [item for item in scalars if item not in hot_reads]
    # SLO judgment: error budgets, burn-rate alert state, and the tail
    # sampler's retention counters in one block — the "are we meeting the
    # paper's SLA" view.
    slo = [
        item
        for item in scalars
        if item[0].startswith(("slo_", "tail_sampler_"))
    ]
    scalars = [item for item in scalars if item not in slo]
    if scalars:
        lines.append("")
        lines.append("-- counters / gauges --")
        for name, kind, entry in scalars:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(f"{label:<52} {entry.get('value', 0.0):>12g} ({kind})")
    if chaos:
        lines.append("")
        lines.append("-- chaos / resilience --")
        for name, kind, entry in chaos:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(f"{label:<52} {entry.get('value', 0.0):>12g} ({kind})")
    if durability:
        lines.append("")
        lines.append("-- durability --")
        for name, kind, entry in durability:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(f"{label:<52} {entry.get('value', 0.0):>12g} ({kind})")
    if hot_reads:
        lines.append("")
        lines.append("-- hot read path --")
        for name, kind, entry in hot_reads:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(f"{label:<52} {entry.get('value', 0.0):>12g} ({kind})")
    if slo:
        lines.append("")
        lines.append("-- SLO & alerts --")
        for name, kind, entry in slo:
            label = f"{name}{_fmt_labels(entry['labels'])}"
            lines.append(f"{label:<52} {entry.get('value', 0.0):>12g} ({kind})")

    if monitor is not None:
        lines.append("")
        lines.append("-- cluster --")
        lines.append(monitor.report())
        qps = monitor.series["read_qps"]
        hit = monitor.series["hit_ratio"]
        if qps.points:
            lines.append("")
            lines.append(
                render_chart(
                    "read QPS",
                    [Series("read_qps", list(qps.points))],
                    width=width,
                    height=8,
                    x_label="ms",
                )
            )
        if hit.points:
            lines.append("")
            lines.append(
                render_chart(
                    "cache hit ratio",
                    [Series("hit_ratio", list(hit.points))],
                    width=width,
                    height=8,
                    y_min=0.0,
                    y_max=1.0,
                    x_label="ms",
                )
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Demo workload
# ----------------------------------------------------------------------


def _run_demo():
    """Small traced cluster + workload; returns (registry, monitor, tracer)."""
    from ..clock import MILLIS_PER_DAY, MILLIS_PER_SECOND, SimulatedClock
    from ..cluster.cluster import IPSCluster
    from ..config import TableConfig
    from ..core.query import SortType
    from ..core.timerange import TimeRange
    from ..obs.registry import MetricsRegistry
    from ..obs.trace import Tracer
    from ..server.proxy import RPCNodeProxy
    from ..server.recovery import attach_memory_durability

    from ..obs.slo import SLOEngine
    from ..obs.tail import TailSampler

    now_ms = 400 * MILLIS_PER_DAY
    clock = SimulatedClock(now_ms)
    registry = MetricsRegistry()
    sampler = TailSampler(max_traces=64, registry=registry)
    tracer = Tracer(
        clock=clock,
        registry=registry,
        slow_threshold_ms=5.0,
        tail_sampler=sampler,
    )
    slo = SLOEngine.from_mapping(
        {
            "objectives": [
                {
                    "name": "demo-read",
                    "caller": "demo-app",
                    "op": "read",
                    "latency_threshold_ms": "1s",
                    "latency_target": 0.99,
                    "availability_target": 0.999,
                }
            ],
            "bucket": "1s",
        },
        clock,
        registry=registry,
    )
    from ..server.coalesce import CoalesceConfig
    from ..server.result_cache import QueryResultCache

    config = TableConfig(name="demo", attributes=("click", "like"))
    cluster = IPSCluster(
        config,
        num_nodes=3,
        clock=clock,
        tracer=tracer,
        registry=registry,
        node_kwargs={"coalesce": CoalesceConfig(window_ms=0.0)},
    )
    # Each node needs a private result cache (entries key on that node's
    # profile state) but they share the registry, so the dashboard's hot
    # read block shows fleet-wide counters.
    for node in cluster.region.nodes.values():
        node.result_cache = QueryResultCache(max_entries=512, registry=registry)
    for node in cluster.region.nodes.values():
        attach_memory_durability(
            node, checkpoint_interval_records=64, registry=registry
        )
    for node_id in list(cluster.region.nodes):
        cluster.region.nodes[node_id] = RPCNodeProxy(
            cluster.region.nodes[node_id],
            clock,
            tracer=tracer,
            registry=registry,
            advance_clock=True,
        )
    monitor = ClusterMonitor(cluster)
    monitor.watch_slo(slo)
    client = cluster.client("demo-app")
    # A fixed absolute window keeps the query fingerprint stable across
    # reads (the RPC proxies advance the clock per call, so a relative
    # window would resolve to fresh bounds — and a fresh cache key —
    # on every request).
    window = TimeRange.absolute(
        now_ms - 30 * MILLIS_PER_DAY, now_ms + MILLIS_PER_DAY
    )

    import random

    rng = random.Random(7)
    monitor.sample()
    for round_index in range(6):
        for _ in range(40):
            profile_id = rng.randrange(60)
            client.add_profile(
                profile_id,
                now_ms - rng.randrange(30 * MILLIS_PER_DAY),
                1,
                1,
                rng.randrange(50),
                {"click": rng.randrange(1, 5)},
            )
        cluster.run_background_cycle()
        for _ in range(25):
            # Skewed read traffic: most requests land on a hot subset,
            # which is what makes the result cache earn its keep.
            profile_id = rng.randrange(8) if rng.random() < 0.7 else rng.randrange(60)
            started_ms = clock.now_ms()
            client.get_profile_topk(
                profile_id, 1, 1, window, SortType.TOTAL, k=5
            )
            slo.observe(
                "demo-app", "read", clock.now_ms() - started_ms, ok=True
            )
        client.multi_get_topk(
            [rng.randrange(60) for _ in range(32)],
            1,
            1,
            window,
            SortType.TOTAL,
            k=5,
        )
        clock.advance(MILLIS_PER_SECOND)
        slo.evaluate()
        monitor.sample()
    return registry, monitor, tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--from-file",
        metavar="FILE",
        help="render from a saved text exposition ('-' reads stdin)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry JSON export instead of the ASCII dashboard",
    )
    parser.add_argument(
        "--width", type=int, default=60, help="chart width in characters"
    )
    args = parser.parse_args(argv)

    if args.from_file is not None:
        if args.from_file == "-":
            text = sys.stdin.read()
        else:
            with open(args.from_file, encoding="utf-8") as handle:
                text = handle.read()
        print(render_dashboard(parse_exposition(text), width=args.width))
        return 0

    registry, monitor, tracer = _run_demo()
    if args.json:
        print(registry.to_json(indent=2))
        return 0
    # Round-trip through the text exposition: what the dashboard shows is
    # what a scrape would carry.
    families = parse_exposition(registry.render_text())
    print(render_dashboard(families, monitor=monitor, width=args.width))
    if tracer.slow_log:
        print()
        print("-- slow queries --")
        for entry in tracer.slow_log:
            print(entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
