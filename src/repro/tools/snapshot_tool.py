"""Snapshot tool: demonstrate table export/import between clusters.

Usage::

    python -m repro.tools.snapshot_tool [--profiles N] [--out PATH]

Builds a populated demo table, exports it to a snapshot file, imports it
into a brand-new cluster (optionally under a different table name) and
verifies a probe query — the migration/DR-drill workflow in one command.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from ..clock import MILLIS_PER_DAY, SimulatedClock
from ..config import TableConfig
from ..core.timerange import TimeRange
from ..server.node import IPSNode
from ..storage import InMemoryKVStore
from ..storage.snapshot import export_table, import_table

NOW_MS = 400 * MILLIS_PER_DAY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profiles", type=int, default=100)
    parser.add_argument("--out", type=str, default="")
    args = parser.parse_args(argv)

    path = (
        Path(args.out)
        if args.out
        else Path(tempfile.mkdtemp()) / "demo.snapshot"
    )
    config = TableConfig(name="demo", attributes=("click", "like"))

    # Source cluster: populate and flush.
    source_store = InMemoryKVStore()
    source = IPSNode("src", config, source_store, clock=SimulatedClock(NOW_MS))
    for profile_id in range(args.profiles):
        source.add_profile(
            profile_id, NOW_MS, 1, 0, profile_id % 9,
            {"click": 1 + profile_id % 3},
        )
    source.shutdown()

    exported = export_table(source_store, "demo", path)
    print(f"exported {exported} profiles to {path} "
          f"({path.stat().st_size} bytes)")

    # Destination cluster: import under a new name and probe.
    dest_store = InMemoryKVStore()
    imported = import_table(dest_store, path, table="demo_restored")
    restored_config = TableConfig(
        name="demo_restored", attributes=("click", "like")
    )
    dest = IPSNode(
        "dst", restored_config, dest_store, clock=SimulatedClock(NOW_MS)
    )
    probe = dest.get_profile_topk(
        7, 1, 0, TimeRange.current(MILLIS_PER_DAY), k=3
    )
    print(f"imported {imported} profiles as 'demo_restored'; "
          f"probe query for profile 7: {[(r.fid, r.counts) for r in probe]}")
    if not probe:
        print("ERROR: probe query returned nothing")
        return 1
    print("snapshot round trip OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
