"""Profile inspector: dump a profile's slice structure.

Usage::

    python -m repro.tools.inspect_profile [--writes N] [--maintain]

Builds a demonstration profile (the §III-D representative shape), then
prints its slice list — time ranges, per-slot feature counts, memory —
before and optionally after a maintenance pass, making the compaction
band structure visible.  Useful when tuning time-dimension configs.
"""

from __future__ import annotations

import argparse

from ..clock import MILLIS_PER_DAY, SimulatedClock
from ..config import TableConfig
from ..core.engine import ProfileEngine
from ..core.profile import ProfileData
from ..sim.calibrate import build_representative_profile

NOW_MS = 400 * MILLIS_PER_DAY


def format_profile(profile: ProfileData, now_ms: int, limit: int = 40) -> str:
    """Render a profile's slice list, newest first."""
    lines = [
        f"profile {profile.profile_id}: {profile.slice_count()} slices, "
        f"{profile.feature_count()} feature stats, "
        f"{profile.memory_bytes() / 1024:.1f} KB"
    ]
    for index, profile_slice in enumerate(profile.slices[:limit]):
        age_h = (now_ms - profile_slice.end_ms) / 3_600_000
        span_s = profile_slice.duration_ms / 1000
        slots = ", ".join(
            f"slot{slot}:{instance_set.feature_count()}"
            for slot, instance_set in profile_slice.slots_items()
        )
        lines.append(
            f"  [{index:3d}] age={age_h:8.1f}h span={span_s:9.0f}s "
            f"features=({slots})"
        )
    if profile.slice_count() > limit:
        lines.append(f"  ... {profile.slice_count() - limit} more slices")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--maintain", action="store_true",
                        help="also show the profile after maintenance")
    args = parser.parse_args(argv)

    clock = SimulatedClock(NOW_MS)
    config = TableConfig(
        name="inspect", attributes=("click", "like", "share")
    )
    engine = ProfileEngine(config, clock)
    build_representative_profile(engine, profile_id=1, now_ms=NOW_MS)
    profile = engine.table.get_or_raise(1)
    print("== before maintenance ==")
    print(format_profile(profile, NOW_MS))
    if args.maintain:
        report = engine.maintain_profile(1)
        print("\n== after maintenance ==")
        print(format_profile(profile, NOW_MS))
        if report.compaction is not None:
            print(
                f"\ncompaction: {report.compaction.slices_before} -> "
                f"{report.compaction.slices_after} slices "
                f"({report.compaction.merges} merges, "
                f"{report.compaction.bytes_saved} bytes saved)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
