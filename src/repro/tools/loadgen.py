"""Load generator: drive a real in-process cluster and print a dashboard.

Usage::

    python -m repro.tools.loadgen [--requests N] [--nodes N] [--users N]
                                  [--seed N] [--isolation/--no-isolation]

Generates a Zipf-skewed mixed workload (≈10:1 read:write, §IV-C) against
a fresh cluster, then prints real latency percentiles and the monitoring
rollup.
"""

from __future__ import annotations

import argparse
import time

from ..clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, SimulatedClock
from ..cluster import IPSCluster
from ..config import TableConfig
from ..core.query import SortType
from ..core.timerange import TimeRange
from ..monitoring import ClusterMonitor
from ..sim.metrics import percentile
from ..workload import EventStreamGenerator, WorkloadConfig

NOW_MS = 400 * MILLIS_PER_DAY


def run_load(
    requests: int,
    nodes: int,
    users: int,
    seed: int,
    isolation: bool,
) -> dict:
    """Run the workload and return the measured summary."""
    clock = SimulatedClock(NOW_MS)
    config = TableConfig(
        name="loadgen", attributes=("impression", "click", "like")
    )
    cluster = IPSCluster(
        config, num_nodes=nodes, clock=clock, isolation_enabled=isolation
    )
    client = cluster.client("loadgen")
    generator = EventStreamGenerator(
        WorkloadConfig(num_users=users, num_items=users * 3, seed=seed)
    )
    for user_id in range(users):
        client.add_profile(
            user_id, NOW_MS - MILLIS_PER_HOUR, user_id % 8, 0,
            user_id % 500, {"impression": 1},
        )
    cluster.run_background_cycle()

    monitor = ClusterMonitor(cluster)
    monitor.sample()
    reads: list[float] = []
    writes: list[float] = []
    wall_start = time.perf_counter()
    for index, query in enumerate(generator.queries(requests)):
        if index % 11 == 0:
            start = time.perf_counter()
            client.add_profile(
                query.user_id, NOW_MS, query.slot, query.type_id or 0,
                index % 500, {"click": 1, "impression": 1},
            )
            writes.append((time.perf_counter() - start) * 1000)
        else:
            start = time.perf_counter()
            client.get_profile_topk(
                query.user_id, query.slot, query.type_id,
                TimeRange.current(query.window_ms),
                SortType.ATTRIBUTE, query.k, sort_attribute="click",
            )
            reads.append((time.perf_counter() - start) * 1000)
        if index % 2000 == 1999:
            cluster.run_background_cycle()
            monitor.sample()
    wall_seconds = time.perf_counter() - wall_start
    report = monitor.report()
    cluster.shutdown()
    return {
        "wall_seconds": wall_seconds,
        "ops_per_second": requests / wall_seconds,
        "read_p50_ms": percentile(reads, 50),
        "read_p99_ms": percentile(reads, 99),
        "write_p50_ms": percentile(writes, 50),
        "write_p99_ms": percentile(writes, 99),
        "report": report,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--users", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-isolation", dest="isolation", action="store_false",
        help="disable the read-write isolation write table",
    )
    args = parser.parse_args(argv)

    summary = run_load(
        args.requests, args.nodes, args.users, args.seed, args.isolation
    )
    print(
        f"{args.requests} requests in {summary['wall_seconds']:.2f}s "
        f"({summary['ops_per_second']:.0f} ops/s, isolation="
        f"{'on' if args.isolation else 'off'})"
    )
    print(
        f"reads:  p50={summary['read_p50_ms']:.3f}ms "
        f"p99={summary['read_p99_ms']:.3f}ms"
    )
    print(
        f"writes: p50={summary['write_p50_ms']:.3f}ms "
        f"p99={summary['write_p99_ms']:.3f}ms"
    )
    print(summary["report"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
