"""Operational command-line tools.

Each tool runs as a module::

    python -m repro.tools.loadgen --requests 20000 --nodes 4
    python -m repro.tools.calibration_report
    python -m repro.tools.inspect_profile

They exercise the real implementation end to end and print the telemetry
rollups an operator would look at — handy for smoke-testing a checkout
and for eyeballing the mechanisms behind the §IV figures.
"""
