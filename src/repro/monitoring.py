"""Cluster monitoring: the telemetry surface behind the §IV dashboards.

Production IPS is observed through per-node counters rolled up into
cluster dashboards (throughput, latency percentiles, error rate, memory,
hit ratio — Figs. 16-19).  :class:`ClusterMonitor` collects those rollups
from a live in-process cluster or deployment:

* :meth:`snapshot` reads every node's counters and returns a
  :class:`ClusterSnapshot` (gauges and monotonic counters);
* :meth:`sample` appends deltas-per-interval to named
  :class:`~repro.sim.metrics.TimeSeries` so a driver loop produces the
  same series the paper plots, from the *real* implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .obs.registry import Histogram, MetricsRegistry
from .sim.metrics import TimeSeries


def _size_histogram() -> Histogram:
    """Power-of-two buckets (1, 2, 4, ... 1024) as a log-bucket histogram."""
    return Histogram(min_ms=1.0, max_ms=1024.0, growth=2.0)


def _bucket_labels(histogram: Histogram) -> dict[str, int]:
    """Populated buckets as the ``<=N`` label dict the dashboards show."""
    return {
        f"<={upper:g}": count for upper, count in histogram.nonzero_buckets()
    }


class BatchQueryMetrics:
    """Telemetry for the batched (multi-get) read path.

    Tracks the three quantities the batch architecture lives or dies by:
    how large batches actually are (``batch_size_hist``), how much
    in-batch deduplication saves (``dedup_ratio``), and how many per-shard
    RPCs a batch fans out into (``fanout_hist`` / ``shard_calls``).
    Distributions live in :class:`~repro.obs.registry.Histogram` instances;
    when a :class:`~repro.obs.registry.MetricsRegistry` is supplied, they
    are registered there (``batch_size`` / ``batch_fanout``) so the same
    objects show up in the process-wide exposition.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.batches = 0
        self.keys_total = 0
        self.keys_unique = 0
        self.key_errors = 0
        self.shard_calls = 0
        if registry is not None:
            self.size_hist = registry.histogram(
                "batch_size", min_ms=1.0, max_ms=1024.0, growth=2.0
            )
            self.fan_hist = registry.histogram(
                "batch_fanout", min_ms=1.0, max_ms=1024.0, growth=2.0
            )
        else:
            self.size_hist = _size_histogram()
            self.fan_hist = _size_histogram()

    @property
    def batch_size_hist(self) -> dict[str, int]:
        """Batch-size distribution as ``<=N`` labels (dashboard view)."""
        return _bucket_labels(self.size_hist)

    @property
    def fanout_hist(self) -> dict[str, int]:
        """Per-batch shard fan-out distribution as ``<=N`` labels."""
        return _bucket_labels(self.fan_hist)

    def observe_batch(self, size: int, unique: int) -> None:
        self.batches += 1
        self.keys_total += size
        self.keys_unique += unique
        self.size_hist.record(size)

    def observe_fanout(self, shard_calls: int) -> None:
        self.shard_calls += shard_calls
        self.fan_hist.record(shard_calls)

    def observe_key_errors(self, count: int) -> None:
        self.key_errors += count

    @property
    def dedup_ratio(self) -> float:
        """Fraction of requested keys removed by in-batch deduplication."""
        if self.keys_total == 0:
            return 0.0
        return 1.0 - self.keys_unique / self.keys_total

    @property
    def mean_fanout(self) -> float:
        """Average number of per-shard RPCs a batch fans out into."""
        return self.shard_calls / self.batches if self.batches else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "batches": float(self.batches),
            "keys_total": float(self.keys_total),
            "keys_unique": float(self.keys_unique),
            "key_errors": float(self.key_errors),
            "dedup_ratio": self.dedup_ratio,
            "mean_fanout": self.mean_fanout,
        }


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's counters at an instant."""

    node_id: str
    region: str
    reads: int
    writes: int
    cache_hits: int
    cache_misses: int
    cache_swaps: int
    flushes: int
    flush_failures: int
    memory_bytes: int
    cache_capacity_bytes: int
    resident_profiles: int
    write_table_pending: int
    quota_rejections: int
    batch_reads: int = 0
    batch_keys: int = 0
    #: Durability-layer counters (zero when the node runs without a WAL).
    wal_appends: int = 0
    wal_replay_lag: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    #: Hot-read-path counters (zero when the node runs without the
    #: result cache / coalescing layer).
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    result_cache_entries: int = 0
    result_cache_invalidations: int = 0
    coalesced_reads: int = 0
    batch_windows: int = 0
    batch_window_keys: int = 0

    @property
    def memory_ratio(self) -> float:
        if self.cache_capacity_bytes == 0:
            return 0.0
        return self.memory_bytes / self.cache_capacity_bytes

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def result_cache_hit_ratio(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0


@dataclass(frozen=True)
class ClusterSnapshot:
    """Fleet-wide rollup."""

    time_ms: int
    nodes: tuple[NodeSnapshot, ...]

    @property
    def reads(self) -> int:
        return sum(node.reads for node in self.nodes)

    @property
    def writes(self) -> int:
        return sum(node.writes for node in self.nodes)

    @property
    def memory_bytes(self) -> int:
        return sum(node.memory_bytes for node in self.nodes)

    @property
    def memory_ratio(self) -> float:
        capacity = sum(node.cache_capacity_bytes for node in self.nodes)
        return self.memory_bytes / capacity if capacity else 0.0

    @property
    def hit_ratio(self) -> float:
        hits = sum(node.cache_hits for node in self.nodes)
        misses = sum(node.cache_misses for node in self.nodes)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def resident_profiles(self) -> int:
        return sum(node.resident_profiles for node in self.nodes)

    @property
    def quota_rejections(self) -> int:
        return sum(node.quota_rejections for node in self.nodes)

    @property
    def wal_replay_lag(self) -> int:
        """WAL records a fleet-wide crash right now would have to replay."""
        return sum(node.wal_replay_lag for node in self.nodes)

    @property
    def recoveries(self) -> int:
        return sum(node.recoveries for node in self.nodes)

    @property
    def result_cache_hit_ratio(self) -> float:
        hits = sum(node.result_cache_hits for node in self.nodes)
        total = hits + sum(node.result_cache_misses for node in self.nodes)
        return hits / total if total else 0.0

    @property
    def coalesced_reads(self) -> int:
        return sum(node.coalesced_reads for node in self.nodes)

    @property
    def batch_window_occupancy(self) -> float:
        """Mean keys per executed batch window, fleet-wide."""
        windows = sum(node.batch_windows for node in self.nodes)
        keys = sum(node.batch_window_keys for node in self.nodes)
        return keys / windows if windows else 0.0


def fleet_summary(fleet_stats: dict[str, dict]) -> dict:
    """Roll up :meth:`repro.net.cluster.ProcessCluster.fleet_stats`.

    :class:`ClusterMonitor` introspects in-process node objects directly;
    a process-per-node fleet is only observable through each worker's
    ``node_stats`` admin RPC.  This takes that ``node_id -> stats`` dict
    and produces the same style of fleet-wide rollup (sums plus the
    per-worker pids, which in-process clusters by definition cannot show).
    """
    workers = sorted(fleet_stats)
    summed = (
        "reads", "writes", "batch_reads", "batch_keys",
        "merge_passes", "resident", "memory_bytes", "wal_appends",
    )
    summary: dict = {"workers": len(workers), "worker_ids": workers}
    for key in summed:
        summary[key] = sum(stats.get(key, 0) for stats in fleet_stats.values())
    summary["pids"] = {
        node_id: fleet_stats[node_id].get("pid") for node_id in workers
    }
    summary["wal_last_sequence"] = {
        node_id: fleet_stats[node_id].get("wal_last_sequence", 0)
        for node_id in workers
    }
    replication = {
        node_id: stats["replication"]
        for node_id, stats in fleet_stats.items()
        if stats.get("replication")
    }
    if replication:
        summary["replication"] = {
            # "pending" is a per-peer lag dict on each worker; the rollup
            # is total queued deltas fleet-wide.
            "pending": sum(
                sum(r.get("pending", {}).values())
                for r in replication.values()
            ),
            "handoff_depth": sum(
                r.get("handoff_depth", 0) for r in replication.values()
            ),
            "applies": sum(r.get("applies", 0) for r in replication.values()),
            "delta_bytes": sum(
                r.get("delta_bytes", 0) for r in replication.values()
            ),
            "repair_bytes": sum(
                r.get("repair_bytes_shipped", 0) for r in replication.values()
            ),
        }
    return summary


def format_fleet_report(fleet_stats: dict[str, dict]) -> str:
    """One-screen text view of a process fleet (mirrors ``report()``)."""
    summary = fleet_summary(fleet_stats)
    lines = [
        f"fleet — {summary['workers']} worker processes, "
        f"{summary['resident']} resident profiles",
        f"  reads={summary['reads']}  writes={summary['writes']}  "
        f"batch_keys={summary['batch_keys']}  "
        f"memory_bytes={summary['memory_bytes']}",
    ]
    if "replication" in summary:
        repl = summary["replication"]
        lines.append(
            f"  replication: pending={repl['pending']}  "
            f"handoff={repl['handoff_depth']}  applies={repl['applies']}  "
            f"delta_bytes={repl['delta_bytes']}  "
            f"repair_bytes={repl['repair_bytes']}"
        )
    for node_id in summary["worker_ids"]:
        stats = fleet_stats[node_id]
        lines.append(
            f"  {node_id}: pid={stats.get('pid')} "
            f"reads={stats.get('reads', 0)} writes={stats.get('writes', 0)} "
            f"resident={stats.get('resident', 0)} "
            f"wal_seq={stats.get('wal_last_sequence', 0)}"
        )
    return "\n".join(lines)


class ClusterMonitor:
    """Collects snapshots and rate series from a cluster or deployment."""

    def __init__(self, deployment) -> None:
        self._deployment = deployment
        self._watched_clients: list = []
        self._watched_slos: list = []
        self._previous: ClusterSnapshot | None = None
        #: node_id -> (reads, writes) at the previous sample, used for
        #: membership-change-safe rate computation (a scaled-down node's
        #: counters vanish; summing cluster cumulatives would go negative).
        self._previous_counts: dict[str, tuple[int, int]] = {}
        self.series: dict[str, TimeSeries] = {
            name: TimeSeries(name)
            for name in (
                "read_qps",
                "write_qps",
                "memory_ratio",
                "hit_ratio",
                "resident_profiles",
            )
        }

    # ------------------------------------------------------------------

    def watch_client(self, client) -> None:
        """Include a client's resilience rollup (breakers, retries, hedges)
        in :meth:`report`.  Clients without a resilience executor are
        accepted and simply contribute nothing."""
        self._watched_clients.append(client)

    def watch_slo(self, engine) -> None:
        """Include an :class:`~repro.obs.slo.SLOEngine`'s budgets and
        active alerts in :meth:`report`."""
        self._watched_slos.append(engine)

    def slo_rollup(self) -> list[dict]:
        """Summaries of every watched SLO engine, in watch order."""
        return [engine.summary() for engine in self._watched_slos]

    def resilience_rollup(self) -> dict[str, dict]:
        """Per-watched-client resilience summaries, keyed by caller."""
        rollup: dict[str, dict] = {}
        for client in self._watched_clients:
            summary = getattr(client, "resilience_summary", None)
            if summary is None:
                continue
            data = summary()
            if data:
                rollup[getattr(client, "caller", repr(client))] = data
        return rollup

    def snapshot(self) -> ClusterSnapshot:
        """Roll up every node's counters right now."""
        nodes = []
        for region in self._deployment.regions.values():
            for node in region.nodes.values():
                metrics = node.cache.metrics
                durability = getattr(node, "durability", None)
                result_cache = getattr(node, "result_cache", None)
                singleflight = getattr(node, "singleflight", None)
                batcher = getattr(node, "batcher", None)
                nodes.append(
                    NodeSnapshot(
                        node_id=node.node_id,
                        region=region.name,
                        reads=node.stats.reads,
                        writes=node.stats.writes,
                        cache_hits=metrics.hits,
                        cache_misses=metrics.misses,
                        cache_swaps=metrics.swaps,
                        flushes=metrics.flushes,
                        flush_failures=metrics.flush_failures,
                        memory_bytes=node.memory_bytes(),
                        cache_capacity_bytes=node.cache.capacity_bytes,
                        resident_profiles=node.cache.resident_count(),
                        write_table_pending=node.write_table.pending_count,
                        quota_rejections=node.quota.rejected,
                        batch_reads=node.stats.batch_reads,
                        batch_keys=node.stats.batch_keys,
                        wal_appends=(
                            durability.stats.writes_logged if durability else 0
                        ),
                        wal_replay_lag=(
                            durability.replay_lag_records() if durability else 0
                        ),
                        checkpoints=(
                            durability.stats.checkpoints if durability else 0
                        ),
                        recoveries=(
                            durability.stats.recoveries if durability else 0
                        ),
                        result_cache_hits=(
                            result_cache.stats.hits if result_cache else 0
                        ),
                        result_cache_misses=(
                            result_cache.stats.misses if result_cache else 0
                        ),
                        result_cache_entries=(
                            len(result_cache) if result_cache else 0
                        ),
                        result_cache_invalidations=(
                            result_cache.stats.invalidations
                            if result_cache
                            else 0
                        ),
                        coalesced_reads=(
                            singleflight.stats.coalesced if singleflight else 0
                        ),
                        batch_windows=(batcher.stats.batches if batcher else 0),
                        batch_window_keys=(
                            batcher.stats.batched_keys if batcher else 0
                        ),
                    )
                )
        clock = self._deployment.clock
        return ClusterSnapshot(time_ms=clock.now_ms(), nodes=tuple(nodes))

    def sample(self) -> ClusterSnapshot:
        """Take a snapshot and append rate/gauge points to the series.

        QPS values are deltas against the previous sample divided by the
        elapsed simulated (or wall) time; the first sample only seeds the
        baseline.
        """
        current = self.snapshot()
        previous = self._previous
        self._previous = current
        if previous is not None:
            elapsed_s = max(1e-9, (current.time_ms - previous.time_ms) / 1000.0)
            # Per-node deltas survive membership changes: a node that left
            # contributes nothing, a node that joined contributes its full
            # counters (it started from zero).
            read_delta = 0
            write_delta = 0
            for node in current.nodes:
                prev_reads, prev_writes = self._previous_counts.get(
                    node.node_id, (0, 0)
                )
                read_delta += max(0, node.reads - prev_reads)
                write_delta += max(0, node.writes - prev_writes)
            self.series["read_qps"].append(
                current.time_ms, read_delta / elapsed_s
            )
            self.series["write_qps"].append(
                current.time_ms, write_delta / elapsed_s
            )
        self._previous_counts = {
            node.node_id: (node.reads, node.writes) for node in current.nodes
        }
        self.series["memory_ratio"].append(current.time_ms, current.memory_ratio)
        self.series["hit_ratio"].append(current.time_ms, current.hit_ratio)
        self.series["resident_profiles"].append(
            current.time_ms, float(current.resident_profiles)
        )
        return current

    # ------------------------------------------------------------------

    def report(self) -> str:
        """Human-readable one-screen dashboard of the latest snapshot."""
        snapshot = self.snapshot()
        lines = [
            f"cluster @ t={snapshot.time_ms}ms — "
            f"{len(snapshot.nodes)} nodes, "
            f"{snapshot.resident_profiles} resident profiles",
            f"  reads={snapshot.reads}  writes={snapshot.writes}  "
            f"hit_ratio={snapshot.hit_ratio:.3f}  "
            f"memory={snapshot.memory_ratio:.1%}  "
            f"quota_rejections={snapshot.quota_rejections}",
        ]
        if any(
            node.result_cache_hits
            or node.result_cache_misses
            or node.coalesced_reads
            or node.batch_windows
            for node in snapshot.nodes
        ):
            invalidations = sum(
                node.result_cache_invalidations for node in snapshot.nodes
            )
            lines.append(
                "  hot reads: result_cache_hit_ratio="
                f"{snapshot.result_cache_hit_ratio:.3f}  "
                f"invalidations={invalidations}  "
                f"coalesced={snapshot.coalesced_reads}  "
                f"batch_windows="
                f"{sum(node.batch_windows for node in snapshot.nodes)}  "
                f"window_occupancy={snapshot.batch_window_occupancy:.1f}"
            )
        if any(node.wal_appends or node.recoveries for node in snapshot.nodes):
            appends = sum(node.wal_appends for node in snapshot.nodes)
            checkpoints = sum(node.checkpoints for node in snapshot.nodes)
            lines.append(
                f"  durability: wal_appends={appends}  "
                f"replay_lag={snapshot.wal_replay_lag}  "
                f"checkpoints={checkpoints}  "
                f"recoveries={snapshot.recoveries}"
            )
        for node in snapshot.nodes:
            lines.append(
                f"  {node.node_id}: reads={node.reads} writes={node.writes} "
                f"hit={node.hit_ratio:.2f} mem={node.memory_ratio:.1%} "
                f"pending={node.write_table_pending}"
            )
        for caller, summary in self.resilience_rollup().items():
            breakers = summary.pop("breaker_states", {})
            counters = "  ".join(
                f"{key}={value:g}" for key, value in sorted(summary.items())
            )
            lines.append(f"  resilience[{caller}]: {counters}")
            open_or_probing = {
                node_id: state
                for node_id, state in sorted(breakers.items())
                if state != "closed"
            }
            if open_or_probing:
                states = "  ".join(
                    f"{node_id}={state}"
                    for node_id, state in open_or_probing.items()
                )
                lines.append(f"    breakers: {states}")
        for summary in self.slo_rollup():
            for key, series in sorted(summary["series"].items()):
                lines.append(
                    f"  slo[{key}]: target={series['target']:g}  "
                    f"good={series['good']}  bad={series['bad']}  "
                    f"budget_remaining={series['budget_remaining']:+.3f}"
                )
            for alert in summary["active_alerts"]:
                lines.append(
                    f"    ALERT {alert['severity'].upper()} "
                    f"{alert['slo']} rule={alert['rule']} "
                    f"since t={alert['fired_at_ms']}ms"
                )
        return "\n".join(lines)
