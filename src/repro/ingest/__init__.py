"""Data ingestion substrate (§III-A).

The paper's ingestion topology: impression, action and feature streams are
joined by Flink jobs into *instance data* (the training samples), written
to Kafka topics, and a final streaming job with user-defined extraction
logic consumes the instances and writes them into IPS.  This package
reproduces that topology in-process:

* :mod:`events` — the three event kinds plus the joined instance record;
* :mod:`streams` — Kafka-like topics with offsets and consumer groups;
* :mod:`join` — a windowed stream join keyed by (user, item) request id;
* :mod:`pipeline` — the extraction job that turns instances into
  ``add_profile`` calls (end-to-end freshness within a minute);
* :mod:`batch` — Spark-like bulk import for backfilling historical data.
"""

from .batch import BatchImporter
from .events import ActionEvent, FeatureEvent, ImpressionEvent, InstanceRecord
from .join import InstanceJoiner, JoinStats
from .pipeline import ExtractionFn, IngestionJob, default_extraction
from .streams import Topic, TopicMessage
from .templates import (
    StreamingPipeline,
    advertising_pipeline,
    content_feed_pipeline,
)

__all__ = [
    "ActionEvent",
    "BatchImporter",
    "ExtractionFn",
    "FeatureEvent",
    "ImpressionEvent",
    "IngestionJob",
    "InstanceJoiner",
    "InstanceRecord",
    "JoinStats",
    "StreamingPipeline",
    "Topic",
    "TopicMessage",
    "advertising_pipeline",
    "content_feed_pipeline",
    "default_extraction",
]
