"""Bulk (batch) import: the Spark / MapReduce backfill path (§III-F, §V-b).

Historical profile data is occasionally backfilled in bulk.  The paper's
operational guidance is to turn the read-write isolation *on* for the
duration so the offline job cannot disturb online serving; the importer
does exactly that around the load, restoring the previous switch state
afterwards, and uses the batched ``add_profiles`` API for efficiency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from .pipeline import ProfileWrite


@dataclass
class BatchImportStats:
    records: int = 0
    batches: int = 0
    failures: int = 0


class BatchImporter:
    """Imports a historical dataset through a deployment's nodes."""

    def __init__(self, deployment, batch_size: int = 256) -> None:
        self._deployment = deployment
        self._batch_size = batch_size
        self.stats = BatchImportStats()

    def run(self, writes: Iterable[ProfileWrite], caller: str = "backfill") -> None:
        """Import all writes with isolation forced on for the duration."""
        previous_states = self._force_isolation_on()
        client = self._client(caller)
        try:
            # Group contiguous writes by (profile, slot, type, timestamp) so
            # the batched API amortises routing and quota admission.
            grouped: dict[tuple[int, int, int, int], list[ProfileWrite]]
            grouped = defaultdict(list)
            for write in writes:
                key = (write.profile_id, write.slot, write.type_id, write.timestamp_ms)
                grouped[key].append(write)
                self.stats.records += 1
            for (profile_id, slot, type_id, timestamp_ms), group in grouped.items():
                for start in range(0, len(group), self._batch_size):
                    chunk = group[start : start + self._batch_size]
                    written = client.add_profiles(
                        profile_id,
                        timestamp_ms,
                        slot,
                        type_id,
                        [write.fid for write in chunk],
                        [write.counts for write in chunk],
                    )
                    self.stats.batches += 1
                    if written == 0:
                        self.stats.failures += 1
        finally:
            self._restore_isolation(previous_states)

    def _client(self, caller: str):
        """Works with both IPSCluster and MultiRegionDeployment factories."""
        try:
            return self._deployment.client(caller=caller)
        except TypeError:
            first_region = next(iter(self._deployment.regions.keys()))
            return self._deployment.client(first_region, caller=caller)

    def _force_isolation_on(self) -> dict[str, bool]:
        states: dict[str, bool] = {}
        for region in self._deployment.regions.values():
            for node in region.nodes.values():
                states[node.node_id] = node.isolation_enabled
                node.set_isolation(True)
        return states

    def _restore_isolation(self, states: dict[str, bool]) -> None:
        for region in self._deployment.regions.values():
            for node in region.nodes.values():
                if node.node_id in states:
                    node.set_isolation(states[node.node_id])
