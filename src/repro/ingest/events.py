"""Event types flowing through the ingestion pipeline (§III-A).

Instance data joins three input sources:

* **impressions** — an item was actually presented to a user (server- or
  client-side);
* **actions** — what the user did ('like', 'comment', 'share', ...);
* **features** — backend signals about the item used for ranking.

The join key is the ``request_id`` shared by all events originating from
one recommendation request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class ImpressionEvent:
    """An item presented to a user."""

    request_id: str
    user_id: int
    item_id: int
    timestamp_ms: int
    source: str = "server"  # "server" or "client" impression


@dataclass(frozen=True)
class ActionEvent:
    """A user action on a presented item."""

    request_id: str
    user_id: int
    item_id: int
    timestamp_ms: int
    action: str  # e.g. "click", "like", "comment", "share"
    value: int = 1


@dataclass(frozen=True)
class FeatureEvent:
    """Backend item signals for a request (category, topic, bid, ...)."""

    request_id: str
    item_id: int
    timestamp_ms: int
    #: Item metadata used for extraction, e.g. {"slot": 7, "type": 3}.
    signals: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class InstanceRecord:
    """The joined training sample produced by the stream join.

    ``actions`` accumulates action name -> total value for the request;
    requests with an impression but no action become negative samples with
    an empty action map.
    """

    request_id: str
    user_id: int
    item_id: int
    timestamp_ms: int
    actions: Mapping[str, int]
    signals: Mapping[str, int]

    @property
    def is_positive(self) -> bool:
        return bool(self.actions)
