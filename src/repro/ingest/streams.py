"""Kafka-like topic substrate.

A :class:`Topic` is an append-only, partitioned log.  Producers append
messages; consumer groups track per-partition offsets so multiple jobs can
read the same topic independently (the joined-instance topic is consumed
both by model training and by the IPS ingestion job in the paper).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TopicMessage:
    """One message in a partition."""

    partition: int
    offset: int
    timestamp_ms: int
    value: Any


class Topic:
    """Append-only partitioned log with consumer-group offsets."""

    def __init__(self, name: str, num_partitions: int = 4) -> None:
        if num_partitions <= 0:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        self.name = name
        self.num_partitions = num_partitions
        self._partitions: list[list[TopicMessage]] = [
            [] for _ in range(num_partitions)
        ]
        #: group -> list of next-offset per partition
        self._offsets: dict[str, list[int]] = {}
        self._lock = threading.Lock()

    # -- produce ------------------------------------------------------------

    def produce(self, key: int, value: Any, timestamp_ms: int) -> TopicMessage:
        """Append a message, partitioned by key hash."""
        partition = hash(key) % self.num_partitions
        with self._lock:
            log = self._partitions[partition]
            message = TopicMessage(partition, len(log), timestamp_ms, value)
            log.append(message)
            return message

    # -- consume ------------------------------------------------------------

    def poll(
        self, group: str, max_messages: int = 1000
    ) -> list[TopicMessage]:
        """Take up to ``max_messages`` new messages for a consumer group.

        Offsets advance on poll (auto-commit semantics), round-robin across
        partitions for fairness.
        """
        with self._lock:
            offsets = self._offsets.setdefault(group, [0] * self.num_partitions)
            batch: list[TopicMessage] = []
            progressed = True
            while len(batch) < max_messages and progressed:
                progressed = False
                for partition in range(self.num_partitions):
                    position = offsets[partition]
                    log = self._partitions[partition]
                    if position < len(log):
                        batch.append(log[position])
                        offsets[partition] = position + 1
                        progressed = True
                        if len(batch) >= max_messages:
                            break
            return batch

    def lag(self, group: str) -> int:
        """Messages not yet consumed by a group."""
        with self._lock:
            offsets = self._offsets.get(group, [0] * self.num_partitions)
            return sum(
                len(log) - position
                for log, position in zip(self._partitions, offsets)
            )

    def total_messages(self) -> int:
        with self._lock:
            return sum(len(log) for log in self._partitions)

    def iter_all(self) -> Iterator[TopicMessage]:
        """Snapshot iterator over everything (tests/diagnostics)."""
        with self._lock:
            snapshot = [message for log in self._partitions for message in log]
        return iter(snapshot)
