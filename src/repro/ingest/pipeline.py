"""The IPS ingestion job: instance topic -> ``add_profile`` calls (§III-A).

One streaming job with user-defined extraction logic consumes joined
instance records from the Kafka-substitute topic and writes profile
updates into IPS through the unified client.  The extraction function maps
an :class:`~repro.ingest.events.InstanceRecord` to zero or more profile
writes — this is the per-product "user defined extraction logic" hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from .events import InstanceRecord
from .streams import Topic


@dataclass(frozen=True)
class ProfileWrite:
    """One extracted write destined for IPS."""

    profile_id: int
    timestamp_ms: int
    slot: int
    type_id: int
    fid: int
    counts: dict[str, int]


#: Maps a joined instance to the profile writes it implies.
ExtractionFn = Callable[[InstanceRecord], Iterable[ProfileWrite]]


def default_extraction(
    attributes: Sequence[str],
    slot_signal: str = "slot",
    type_signal: str = "type",
    default_slot: int = 0,
    default_type: int = 0,
) -> ExtractionFn:
    """Extraction used by the examples: item id becomes the feature id.

    The item's category signals select the (slot, type) bucket, and each
    action whose name appears in the table's attribute schema contributes
    its value to the count vector.  Negative samples (no actions) still
    count an impression when the schema has an ``impression`` attribute.
    """

    def extract(record: InstanceRecord) -> Iterable[ProfileWrite]:
        counts = {
            action: value
            for action, value in record.actions.items()
            if action in attributes
        }
        if "impression" in attributes:
            counts["impression"] = counts.get("impression", 0) + 1
        if not counts:
            return []
        return [
            ProfileWrite(
                profile_id=record.user_id,
                timestamp_ms=record.timestamp_ms,
                slot=record.signals.get(slot_signal, default_slot),
                type_id=record.signals.get(type_signal, default_type),
                fid=record.item_id,
                counts=counts,
            )
        ]

    return extract


@dataclass
class IngestionStats:
    instances_consumed: int = 0
    writes_issued: int = 0
    write_failures: int = 0


class IngestionJob:
    """Consumes the instance topic and writes into IPS via a client."""

    def __init__(
        self,
        topic: Topic,
        client,
        extraction: ExtractionFn,
        group: str = "ips-ingest",
        batch_size: int = 1000,
        tracer=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._topic = topic
        self._client = client
        self._extraction = extraction
        self._group = group
        self._batch_size = batch_size
        self.stats = IngestionStats()
        #: Default to the client's tracer/registry so ingest writes appear
        #: in the same trace tree and exposition as the serving path.
        if tracer is None:
            tracer = getattr(client, "tracer", NULL_TRACER)
        if registry is None:
            registry = getattr(client, "registry", None)
        self.tracer = tracer
        if registry is not None:
            self._consumed_counter = registry.counter(
                "ingest_instances_total", group=group
            )
            self._writes_counter = registry.counter(
                "ingest_writes_total", group=group
            )
            self._failures_counter = registry.counter(
                "ingest_write_failures_total", group=group
            )
        else:
            self._consumed_counter = None
            self._writes_counter = None
            self._failures_counter = None

    def run_once(self) -> int:
        """One poll-extract-write cycle; returns instances consumed."""
        batch = self._topic.poll(self._group, self._batch_size)
        writes_before = self.stats.writes_issued
        failures_before = self.stats.write_failures
        with self.tracer.span(
            "ingest.cycle", group=self._group, instances=len(batch)
        ) as span:
            for message in batch:
                record: InstanceRecord = message.value
                self.stats.instances_consumed += 1
                for write in self._extraction(record):
                    written = self._client.add_profile(
                        write.profile_id,
                        write.timestamp_ms,
                        write.slot,
                        write.type_id,
                        write.fid,
                        write.counts,
                    )
                    self.stats.writes_issued += 1
                    if written == 0:
                        self.stats.write_failures += 1
            writes = self.stats.writes_issued - writes_before
            failures = self.stats.write_failures - failures_before
            span.tag(writes=writes, failures=failures)
        if self._consumed_counter is not None:
            self._consumed_counter.inc(len(batch))
            self._writes_counter.inc(writes)
            self._failures_counter.inc(failures)
        return len(batch)

    def run_until_drained(self, max_cycles: int = 1_000_000) -> int:
        """Poll until the topic has no lag for this group."""
        consumed = 0
        for _ in range(max_cycles):
            step = self.run_once()
            consumed += step
            if step == 0:
                break
        return consumed

    def lag(self) -> int:
        return self._topic.lag(self._group)
