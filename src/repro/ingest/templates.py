"""Streaming-job templates (§V-a).

The paper's adoption lesson: most customers build the same ingestion
topology, so the team shipped templates that wire it up in one call.
:class:`StreamingPipeline` bundles the §III-A chain — joiner, instance
topic, ingestion job — behind three methods (``feed_events``, ``tick``,
``drain``), and the module-level constructors pre-configure it for the
two headline scenarios (content feeds and advertising).
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import ActionEvent, FeatureEvent, ImpressionEvent
from .join import InstanceJoiner
from .pipeline import ExtractionFn, IngestionJob, default_extraction
from .streams import Topic


@dataclass
class PipelineStats:
    """Aggregated view over the stages of one pipeline."""

    events_in: int = 0
    instances_joined: int = 0
    instances_ingested: int = 0
    writes_issued: int = 0


class StreamingPipeline:
    """The §III-A topology in a box: events → join → topic → IPS."""

    def __init__(
        self,
        client,
        extraction: ExtractionFn,
        join_window_ms: int = 60_000,
        topic_partitions: int = 4,
        topic_name: str = "instance",
        consumer_group: str = "ips-ingest",
        ingest_batch_size: int = 1000,
    ) -> None:
        self.joiner = InstanceJoiner(window_ms=join_window_ms)
        self.topic = Topic(topic_name, num_partitions=topic_partitions)
        self.job = IngestionJob(
            self.topic, client, extraction,
            group=consumer_group, batch_size=ingest_batch_size,
        )
        self._watermark_ms = 0
        self._events_in = 0

    # ------------------------------------------------------------------

    def feed_impression(self, event: ImpressionEvent) -> None:
        self._events_in += 1
        self.joiner.on_impression(event)
        self._advance(event.timestamp_ms)

    def feed_action(self, event: ActionEvent) -> None:
        self._events_in += 1
        self.joiner.on_action(event)
        self._advance(event.timestamp_ms)

    def feed_feature(self, event: FeatureEvent) -> None:
        self._events_in += 1
        self.joiner.on_feature(event)
        self._advance(event.timestamp_ms)

    def feed_events(
        self,
        impression: ImpressionEvent,
        actions: list[ActionEvent],
        feature: FeatureEvent,
    ) -> None:
        """Feed one request's worth of events (the generator's triple)."""
        self.feed_impression(impression)
        self.feed_feature(feature)
        for action in actions:
            self.feed_action(action)

    def _advance(self, timestamp_ms: int) -> None:
        """Watermark follows the max event time; closed joins publish."""
        if timestamp_ms > self._watermark_ms:
            self._watermark_ms = timestamp_ms
            for record in self.joiner.advance_watermark(timestamp_ms):
                self.topic.produce(record.user_id, record, record.timestamp_ms)

    # ------------------------------------------------------------------

    def tick(self) -> int:
        """One ingestion poll; call periodically.  Returns instances read."""
        return self.job.run_once()

    def drain(self) -> int:
        """Flush pending joins and consume the topic to empty (shutdown)."""
        for record in self.joiner.flush():
            self.topic.produce(record.user_id, record, record.timestamp_ms)
        return self.job.run_until_drained()

    @property
    def stats(self) -> PipelineStats:
        return PipelineStats(
            events_in=self._events_in,
            instances_joined=self.joiner.stats.emitted,
            instances_ingested=self.job.stats.instances_consumed,
            writes_issued=self.job.stats.writes_issued,
        )


def content_feed_pipeline(
    client,
    attributes: tuple[str, ...] | list[str],
    join_window_ms: int = 60_000,
) -> StreamingPipeline:
    """Template for the content-feeds scenario (§I-c).

    Uses the default extraction: item id as fid, category signals as
    (slot, type), impressions counted for negative samples.
    """
    return StreamingPipeline(
        client,
        default_extraction(tuple(attributes)),
        join_window_ms=join_window_ms,
        topic_name="instance-feed",
        consumer_group="feed-ingest",
    )


def advertising_pipeline(
    client,
    attributes: tuple[str, ...] | list[str],
    join_window_ms: int = 30_000,
) -> StreamingPipeline:
    """Template for the advertising scenario (§I-d).

    Shorter join window (conversion signals are latency-critical for flow
    control) and an extraction that records conversions even without the
    attribute appearing in every schema.
    """
    return StreamingPipeline(
        client,
        default_extraction(tuple(attributes)),
        join_window_ms=join_window_ms,
        topic_name="instance-ads",
        consumer_group="ads-ingest",
    )
