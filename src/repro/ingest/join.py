"""Windowed stream join of impression/action/feature events (§III-A).

The Flink-substitute joiner buffers events per ``request_id`` and emits a
joined :class:`~repro.ingest.events.InstanceRecord` when either

* the join window expires (watermark passes the impression time), emitting
  whatever actions arrived — including none, a negative sample; or
* the record is complete and :meth:`flush` is called.

Impressions anchor a pending join; actions and features arriving before
their impression are buffered and matched when it shows up (out-of-order
tolerance), and orphans whose impression never arrives are dropped when
the window expires, counted in :class:`JoinStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import ActionEvent, FeatureEvent, ImpressionEvent, InstanceRecord


@dataclass
class JoinStats:
    impressions: int = 0
    actions: int = 0
    features: int = 0
    emitted: int = 0
    positives: int = 0
    orphans_dropped: int = 0


@dataclass
class _PendingJoin:
    impression: ImpressionEvent | None = None
    actions: dict[str, int] = field(default_factory=dict)
    signals: dict[str, int] = field(default_factory=dict)
    first_seen_ms: int = 0
    last_event_ms: int = 0


class InstanceJoiner:
    """Join operator with a fixed event-time window."""

    def __init__(self, window_ms: int = 60_000) -> None:
        if window_ms <= 0:
            raise ValueError(f"window must be positive, got {window_ms}")
        self.window_ms = window_ms
        self._pending: dict[str, _PendingJoin] = {}
        self.stats = JoinStats()

    # -- event intake ---------------------------------------------------------

    def on_impression(self, event: ImpressionEvent) -> None:
        self.stats.impressions += 1
        pending = self._pending_for(event.request_id, event.timestamp_ms)
        pending.impression = event
        pending.last_event_ms = max(pending.last_event_ms, event.timestamp_ms)

    def on_action(self, event: ActionEvent) -> None:
        self.stats.actions += 1
        pending = self._pending_for(event.request_id, event.timestamp_ms)
        pending.actions[event.action] = (
            pending.actions.get(event.action, 0) + event.value
        )
        pending.last_event_ms = max(pending.last_event_ms, event.timestamp_ms)

    def on_feature(self, event: FeatureEvent) -> None:
        self.stats.features += 1
        pending = self._pending_for(event.request_id, event.timestamp_ms)
        pending.signals.update(event.signals)
        pending.last_event_ms = max(pending.last_event_ms, event.timestamp_ms)

    def _pending_for(self, request_id: str, timestamp_ms: int) -> _PendingJoin:
        pending = self._pending.get(request_id)
        if pending is None:
            pending = _PendingJoin(first_seen_ms=timestamp_ms)
            self._pending[request_id] = pending
        return pending

    # -- watermark / emission ----------------------------------------------

    def advance_watermark(self, watermark_ms: int) -> list[InstanceRecord]:
        """Emit every join whose window closed before the watermark."""
        emitted: list[InstanceRecord] = []
        expired = [
            request_id
            for request_id, pending in self._pending.items()
            if watermark_ms - pending.first_seen_ms >= self.window_ms
        ]
        for request_id in expired:
            pending = self._pending.pop(request_id)
            record = self._emit(request_id, pending)
            if record is not None:
                emitted.append(record)
        return emitted

    def flush(self) -> list[InstanceRecord]:
        """Emit everything pending regardless of window (shutdown path)."""
        emitted = []
        for request_id, pending in self._pending.items():
            record = self._emit(request_id, pending)
            if record is not None:
                emitted.append(record)
        self._pending.clear()
        return emitted

    def _emit(self, request_id: str, pending: _PendingJoin) -> InstanceRecord | None:
        if pending.impression is None:
            # Action/feature without an impression: a broken trace.
            self.stats.orphans_dropped += 1
            return None
        self.stats.emitted += 1
        if pending.actions:
            self.stats.positives += 1
        return InstanceRecord(
            request_id=request_id,
            user_id=pending.impression.user_id,
            item_id=pending.impression.item_id,
            timestamp_ms=pending.last_event_ms,
            actions=dict(pending.actions),
            signals=dict(pending.signals),
        )

    @property
    def pending_count(self) -> int:
        return len(self._pending)
