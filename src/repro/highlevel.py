"""Higher-level feature APIs (§V-a, "Simplify User Adoption").

The paper's operational lesson: raw ``get_profile_*`` calls and manual
parameter tuning were an adoption barrier, so the team shipped
"higher-level APIs or templating tools" summarising the typical usage
scenarios.  :class:`FeatureClient` wraps any IPS client (cluster- or
deployment-backed) with the patterns the paper's customers use most:

* ``top_interests`` — the Listing-1 "favourite X over the last N days";
* ``ctr`` — click-through rate features from impression/click counters;
* ``recent_activity`` — newest-first action history;
* ``trending`` — short-window, recency-decayed interests;
* ``engagement_score`` — weighted multi-dimensional scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from .core.query import FeatureResult, SortType
from .core.timerange import TimeRange
from .errors import ConfigError


@dataclass(frozen=True)
class CTRFeature:
    """One fid's click-through-rate feature row."""

    fid: int
    impressions: int
    clicks: int

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0


class FeatureClient:
    """Scenario-level wrapper over a low-level IPS client.

    ``attributes`` must be the owning table's attribute schema, which the
    wrapper uses to locate impression/click counters and validate weights.
    """

    def __init__(self, client, attributes: tuple[str, ...] | list[str]) -> None:
        self._client = client
        self._attributes = tuple(attributes)

    def _index(self, attribute: str) -> int:
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise ConfigError(
                f"attribute {attribute!r} not in schema {list(self._attributes)}"
            ) from None

    # ------------------------------------------------------------------
    # Scenario APIs
    # ------------------------------------------------------------------

    def top_interests(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None = None,
        days: int = 30,
        by: str | None = None,
        k: int = 10,
    ) -> list[FeatureResult]:
        """Most-engaged features in the last ``days`` days.

        ``by`` names an attribute to rank by (default: total engagement) —
        the paper's Listing-1 query is ``top_interests(..., by="like", k=1)``.
        """
        window = TimeRange.current(days * MILLIS_PER_DAY)
        if by is None:
            return self._client.get_profile_topk(
                profile_id, slot, type_id, window, SortType.TOTAL, k
            )
        self._index(by)  # Validate early for a clear error.
        return self._client.get_profile_topk(
            profile_id, slot, type_id, window, SortType.ATTRIBUTE, k,
            sort_attribute=by,
        )

    def ctr(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None = None,
        hours: int = 24,
        min_impressions: int = 1,
        k: int = 50,
        impression_attribute: str = "impression",
        click_attribute: str = "click",
    ) -> list[CTRFeature]:
        """Click-through-rate features over the last ``hours`` hours.

        Returns rows ordered by impressions (the exposure-weighted view a
        ranking model wants), filtered to ``min_impressions``.
        """
        impression_idx = self._index(impression_attribute)
        click_idx = self._index(click_attribute)
        window = TimeRange.current(hours * MILLIS_PER_HOUR)
        rows = self._client.get_profile_topk(
            profile_id, slot, type_id, window, SortType.ATTRIBUTE, k,
            sort_attribute=impression_attribute,
        )
        return [
            CTRFeature(
                fid=row.fid,
                impressions=row.count(impression_idx),
                clicks=row.count(click_idx),
            )
            for row in rows
            if row.count(impression_idx) >= min_impressions
        ]

    def recent_activity(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None = None,
        days: int = 7,
        k: int = 20,
    ) -> list[FeatureResult]:
        """Newest-first features the user interacted with recently."""
        window = TimeRange.current(days * MILLIS_PER_DAY)
        return self._client.get_profile_topk(
            profile_id, slot, type_id, window, SortType.TIMESTAMP, k
        )

    def trending(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None = None,
        hours: int = 6,
        half_life_hours: float = 1.0,
        k: int = 10,
        by: str | None = None,
    ) -> list[FeatureResult]:
        """Short-window interests with exponential recency decay.

        The "quickly promote the trendy content" pattern of §I-c: a small
        window plus a sub-window half life strongly favours what the user
        is doing *right now*.
        """
        window = TimeRange.current(hours * MILLIS_PER_HOUR)
        return self._client.get_profile_decay(
            profile_id, slot, type_id, window,
            decay_function="exponential",
            decay_factor=half_life_hours * MILLIS_PER_HOUR,
            k=k,
            sort_attribute=by,
        )

    def engagement_score(
        self,
        profile_id: int,
        slot: int,
        weights: dict[str, float],
        type_id: int | None = None,
        days: int = 30,
        k: int = 10,
    ) -> list[FeatureResult]:
        """Multi-dimensional top-K: rank by a weighted attribute sum.

        E.g. ``weights={"share": 3, "comment": 2, "like": 1}`` scores a
        share as worth three likes.
        """
        if not weights:
            raise ConfigError("engagement_score requires non-empty weights")
        for attribute in weights:
            self._index(attribute)
        window = TimeRange.current(days * MILLIS_PER_DAY)
        return self._client.get_profile_topk(
            profile_id, slot, type_id, window, SortType.WEIGHTED, k,
            sort_weights=weights,
        )

    def lifetime_favorites(
        self,
        profile_id: int,
        slot: int,
        type_id: int | None = None,
        k: int = 10,
    ) -> list[FeatureResult]:
        """Long-term interests anchored at the user's last activity.

        Uses a RELATIVE window so a dormant user's history still answers —
        the long-term-profile role of the legacy Lambda architecture (§I).
        """
        window = TimeRange.relative(365 * MILLIS_PER_DAY)
        return self._client.get_profile_topk(
            profile_id, slot, type_id, window, SortType.TOTAL, k
        )
