"""Chaos engine: deterministic fault injection for the live cluster.

Turns the Fig. 17 availability result from an analytic model into an
executable experiment: :class:`ChaosEngine` wraps the real cluster's seams
(RPC transport, KV stores, nodes, replication pump) and injects scheduled
or probabilistic faults — node crash/restart, added RPC latency,
dropped/erroring RPCs, KV read/write errors, replica-lag spikes and whole-
region outages — all driven by the injected clock and a seeded RNG so
runs replay byte-identically.
"""

from .engine import ChaosEngine, ChaosEvent, paper_fault_timeline

__all__ = ["ChaosEngine", "ChaosEvent", "paper_fault_timeline"]
