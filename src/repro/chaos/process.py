"""Chaos over real processes: ``node_crash`` becomes a SIGKILL.

The simulated :class:`~repro.chaos.engine.ChaosEngine` injects faults at
in-process seams; this engine reuses the same
:class:`~repro.chaos.engine.ChaosEvent` timeline shape but applies
``node_crash`` to a :class:`~repro.net.cluster.ProcessCluster`: the
target worker is SIGKILLed — no flush, no checkpoint, the real thing —
and restarted over its surviving data dir when the event window ends, so
WAL replay and registry re-registration are exercised for real.

Time is **wall clock** relative to :meth:`start` (this runs under
``repro.net``'s real-time regime, not the simulated clock): drive
:meth:`tick` from the benchmark loop; each call applies newly-active
events and reverts expired ones.

Only ``node_crash`` maps onto a process fleet — the other fault kinds
(rpc latency/error, region outage, replica lag) live on in-process seams
that do not exist here, so scheduling one raises immediately rather than
silently doing nothing.

Targets may be literal worker ids or **role selectors**, resolved at kill
time against the live registry so the scenario tracks re-elections:

* ``"@master"`` — the currently elected master (lowest live node id);
* ``"@primary:<profile_id>"`` — the roster-ring primary owner of that
  key, the kill-the-primary scenario the failover bench gates on.
"""

from __future__ import annotations

from ..clock import perf_ms
from .engine import ChaosEvent


class ProcessChaosEngine:
    """Applies a ``node_crash`` timeline to real worker processes."""

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self._events: list[ChaosEvent] = []
        self._active: set[ChaosEvent] = set()
        self._start_ms: float | None = None
        #: Role selectors resolved at kill time, so revert restarts the
        #: worker that actually died.
        self._resolved: dict[int, str] = {}
        self.kills = 0
        self.restarts = 0

    def schedule(self, event: ChaosEvent) -> None:
        """Add one event; only ``node_crash`` is meaningful here."""
        if event.kind != "node_crash":
            raise ValueError(
                f"ProcessChaosEngine only supports node_crash, got "
                f"{event.kind!r}"
            )
        if event.target is None:
            raise ValueError("node_crash over processes needs a target worker")
        self._events.append(event)

    def schedule_all(self, events) -> None:
        for event in events:
            self.schedule(event)

    def start(self) -> None:
        """Anchor the timeline at the current wall clock."""
        self._start_ms = perf_ms()

    @property
    def elapsed_ms(self) -> float:
        if self._start_ms is None:
            return 0.0
        return perf_ms() - self._start_ms

    def tick(self) -> tuple[int, int]:
        """Apply/revert events against wall time; returns (kills, restarts)."""
        if self._start_ms is None:
            self.start()
        now_ms = self.elapsed_ms
        kills = restarts = 0
        for event in self._events:
            if event in self._active:
                if now_ms >= event.end_ms:
                    self._active.discard(event)
                    self._cluster.restart_worker(self._victim_of(event))
                    self.restarts += 1
                    restarts += 1
            elif event.active_at(int(now_ms)):
                self._active.add(event)
                victim = self._resolve_target(event.target)
                self._resolved[id(event)] = victim
                self._cluster.kill_worker(victim)
                self.kills += 1
                kills += 1
        return kills, restarts

    def _resolve_target(self, target: str) -> str:
        """Literal worker id, ``@master``, or ``@primary:<profile_id>``."""
        if not target.startswith("@"):
            return target
        if target == "@master":
            master = self._cluster.registry_server.registry.master()
            if master is None:
                raise ValueError("@master: no live master to kill")
            return master
        if target.startswith("@primary:"):
            profile_id = int(target.split(":", 1)[1])
            return self._cluster.primary_for(profile_id)
        raise ValueError(f"unknown chaos target selector {target!r}")

    def _victim_of(self, event: ChaosEvent) -> str:
        return self._resolved.get(id(event), event.target)

    def finish(self) -> None:
        """Revert every still-active event (restart the dead workers)."""
        for event in list(self._active):
            self._cluster.restart_worker(self._victim_of(event))
            self.restarts += 1
        self._active.clear()

    def fault_counts(self) -> dict[str, int]:
        return {"node_crash": self.kills, "restarts": self.restarts}
