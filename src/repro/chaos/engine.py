"""The chaos engine: scheduled, seeded fault injection into real seams.

Faults are described by :class:`ChaosEvent` entries on a timeline measured
in the deployment clock's milliseconds.  A driver loop calls
:meth:`ChaosEngine.tick` as the clock advances; the engine activates and
deactivates events, flips the corresponding seams, and answers the RPC
transport's per-call fault hook for the probabilistic kinds.

Fault kinds and the seams they use:

==================  ====================================================
``node_crash``      :meth:`RPCNodeProxy.crash` — transport down *and*
                    volatile node state (cache, write table) lost; the
                    restart comes up cold, or — when the node has a
                    durability layer — replays checkpoint + WAL first
                    (counted as ``node_recovery``).
``region_outage``   :meth:`Region.fail_region` / ``recover_region``.
``rpc_latency``     added milliseconds on matching calls via the
                    transport's :attr:`~repro.server.rpc.RPCServer
                    .fault_hook` (magnitude = extra ms).
``rpc_error``       matching calls raise a retryable
                    :class:`~repro.errors.RPCTimeoutError` with
                    probability ``magnitude``.
``kv_error``        the targeted region's KV store fails reads/writes
                    with probability ``magnitude`` (attached
                    :class:`~repro.storage.kvstore.FailureInjector`).
``replica_lag``     the replication pump is throttled to ``magnitude``
                    ops per pump (0 stalls it) for the duration.
==================  ====================================================

Determinism: all randomness flows from the engine seed, and every applied
injection is counted in an insertion-ordered dict (:meth:`fault_counts`)
so two same-seed runs over the same workload produce identical counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..clock import Clock
from ..errors import RPCTimeoutError, StorageError
from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..server.proxy import RPCNodeProxy, wrap_region_with_proxies
from ..server.rpc import RPCFault
from ..storage.kvstore import FailureInjector, InMemoryKVStore

#: The fault kinds the engine understands.
FAULT_KINDS = frozenset(
    {
        "node_crash",
        "region_outage",
        "rpc_latency",
        "rpc_error",
        "kv_error",
        "replica_lag",
    }
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault on the chaos timeline.

    ``target`` selects the blast radius: a node id for node-scoped kinds,
    a region name for region-scoped ones, or ``None`` for everything the
    kind can reach.  ``magnitude`` is kind-specific (see module docs).
    """

    start_ms: int
    duration_ms: int
    kind: str
    target: str | None = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_ms}")

    def active_at(self, time_ms: int) -> bool:
        return self.start_ms <= time_ms < self.start_ms + self.duration_ms

    @property
    def end_ms(self) -> int:
        return self.start_ms + self.duration_ms


class _CountingInjector(FailureInjector):
    """KV failure injector that reports each injected error to the engine."""

    def __init__(self, engine: "ChaosEngine", seed: int) -> None:
        super().__init__(failure_rate=0.0, seed=seed)
        self._engine = engine

    def check(self, operation: str) -> None:
        try:
            super().check(operation)
        except StorageError:
            self._engine._count("kv_error")
            raise


class ChaosEngine:
    """Injects scheduled faults into a live cluster or deployment.

    The engine wraps every node behind an :class:`RPCNodeProxy` (idempotent
    — already-proxied deployments are untouched) and registers itself as
    the transport fault hook, attaches counting failure injectors to each
    region's KV store, and drives region/node/replication seams from
    :meth:`tick`.  Call :meth:`tick` from the driver loop at least as often
    as the shortest event window.
    """

    def __init__(
        self,
        deployment,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.deployment = deployment
        self.clock: Clock = deployment.clock
        self.seed = seed
        self._rng = random.Random(seed)
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._events: list[ChaosEvent] = []
        self._active: set[int] = set()  # indices into _events
        self.injections: dict[str, int] = {}
        #: node_id -> (region_name, proxy)
        self._nodes: dict[str, tuple[str, RPCNodeProxy]] = {}
        for proxy in wrap_region_with_proxies(deployment):
            self._nodes[proxy.node_id] = (
                self._region_of(proxy.node_id),
                proxy,
            )
            proxy.rpc.fault_hook = self._rpc_fault
        #: region name -> counting injector on that region's raw store.
        self._injectors: dict[str, FailureInjector] = {}
        kv_cluster = getattr(deployment, "kv_cluster", None)
        for index, (name, region) in enumerate(deployment.regions.items()):
            store = (
                kv_cluster.injection_store(name)
                if kv_cluster is not None
                else region.store
            )
            if isinstance(store, InMemoryKVStore):
                injector = store.failure_injector
                if injector is None:
                    injector = _CountingInjector(self, seed=seed + 1 + index)
                    store.attach_failure_injector(injector)
                self._injectors[name] = injector

    def _region_of(self, node_id: str) -> str:
        for name, region in self.deployment.regions.items():
            if node_id in region.nodes:
                return name
        raise ValueError(f"node {node_id!r} not found in any region")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, event: ChaosEvent) -> None:
        self._events.append(event)

    def schedule_many(self, events) -> None:
        for event in events:
            self.schedule(event)

    @property
    def events(self) -> tuple[ChaosEvent, ...]:
        return tuple(self._events)

    def active_events(self) -> list[ChaosEvent]:
        return [self._events[index] for index in sorted(self._active)]

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Activate/deactivate events against the current clock time."""
        now_ms = self.clock.now_ms()
        for index, event in enumerate(self._events):
            active = index in self._active
            should_be = event.active_at(now_ms)
            if should_be and not active:
                self._active.add(index)
                self._apply(event)
            elif active and not should_be:
                self._active.discard(index)
                self._revert(event)

    def _apply(self, event: ChaosEvent) -> None:
        self._count(event.kind)
        if event.kind == "node_crash":
            for proxy in self._matching_proxies(event.target):
                proxy.crash()
        elif event.kind == "region_outage":
            for region in self._matching_regions(event.target):
                region.fail_region()
        elif event.kind == "kv_error":
            for injector in self._matching_injectors(event.target):
                injector.set_rate(event.magnitude)
        elif event.kind == "replica_lag":
            kv_cluster = getattr(self.deployment, "kv_cluster", None)
            if kv_cluster is not None:
                kv_cluster.set_pump_throttle(int(event.magnitude))
        # rpc_latency / rpc_error are consulted per call by the fault hook.

    def _revert(self, event: ChaosEvent) -> None:
        if event.kind == "node_crash":
            for proxy in self._matching_proxies(event.target):
                report = proxy.restart()
                if report is not None:
                    self._count("node_recovery")
        elif event.kind == "region_outage":
            for region in self._matching_regions(event.target):
                region.recover_region()
        elif event.kind == "kv_error":
            for injector in self._matching_injectors(event.target):
                injector.set_rate(0.0)
        elif event.kind == "replica_lag":
            kv_cluster = getattr(self.deployment, "kv_cluster", None)
            if kv_cluster is not None:
                kv_cluster.set_pump_throttle(None)

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------

    def _matching_proxies(self, target: str | None) -> list[RPCNodeProxy]:
        if target is None:
            return [proxy for _, proxy in self._nodes.values()]
        if target in self._nodes:
            return [self._nodes[target][1]]
        return [
            proxy
            for region_name, proxy in self._nodes.values()
            if region_name == target
        ]

    def _matching_regions(self, target: str | None):
        regions = self.deployment.regions
        if target is None:
            return list(regions.values())
        return [regions[target]] if target in regions else []

    def _matching_injectors(self, target: str | None) -> list[FailureInjector]:
        if target is None:
            return list(self._injectors.values())
        injector = self._injectors.get(target)
        return [injector] if injector is not None else []

    def _event_matches_node(self, event: ChaosEvent, node_id: str) -> bool:
        if event.target is None or event.target == node_id:
            return True
        region_name, _ = self._nodes.get(node_id, (None, None))
        return event.target == region_name

    # ------------------------------------------------------------------
    # The transport fault hook
    # ------------------------------------------------------------------

    def _rpc_fault(self, node_id: str, method: str) -> RPCFault | None:
        """Per-call decision for the RPC transport (latency and/or error)."""
        extra_latency_ms = 0.0
        error: Exception | None = None
        for index in sorted(self._active):
            event = self._events[index]
            if event.kind == "rpc_latency" and self._event_matches_node(
                event, node_id
            ):
                extra_latency_ms += event.magnitude
                self._count("rpc_latency_injected")
            elif (
                event.kind == "rpc_error"
                and error is None
                and self._event_matches_node(event, node_id)
                and self._rng.random() < event.magnitude
            ):
                error = RPCTimeoutError(
                    f"chaos: dropped {method} rpc to {node_id}"
                )
                self._count("rpc_error_injected")
        if extra_latency_ms == 0.0 and error is None:
            return None
        span = self._tracer.current()
        if span is not None:
            # Mark the afflicted request so the tail sampler retains its
            # full span tree under the "chaos" reason.
            span.tag(chaos="rpc_error" if error is not None else "rpc_latency")
        return RPCFault(extra_latency_ms=extra_latency_ms, error=error)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injections[kind] = self.injections.get(kind, 0) + 1
        if self._registry is not None:
            self._registry.counter("chaos_injections", kind=kind).inc()

    def fault_counts(self) -> dict[str, int]:
        """Injection counts by kind, key-sorted (deterministic exports)."""
        return dict(sorted(self.injections.items()))


def paper_fault_timeline(
    start_ms: int,
    region: str = "eu",
    node: str | None = None,
    round_ms: int = 60_000,
) -> list[ChaosEvent]:
    """The Fig. 17 incident mix, compressed onto a benchmark timeline.

    One machine crash, one network blip (erroring + slowed RPCs) and one
    whole-region failover, spaced over 40 ``round_ms`` windows — the same
    three incident kinds the paper's 20-day window contains.
    """
    node = node if node is not None else f"{region}-node-0"
    return [
        ChaosEvent(start_ms + 8 * round_ms, 7 * round_ms, "node_crash", node),
        ChaosEvent(
            start_ms + 20 * round_ms, 4 * round_ms, "rpc_error", region, 0.25
        ),
        ChaosEvent(
            start_ms + 20 * round_ms, 4 * round_ms, "rpc_latency", region, 40.0
        ),
        ChaosEvent(start_ms + 30 * round_ms, 4 * round_ms, "region_outage", region),
        ChaosEvent(
            start_ms + 30 * round_ms, 4 * round_ms, "replica_lag", None, 0
        ),
    ]
