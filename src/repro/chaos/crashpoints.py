"""Deterministic crash-point recovery harness.

Kills a node at seeded byte- and op-granular points — mid-WAL-append,
post-append/pre-fsync, mid-checkpoint, mid-fine-grained-flush — then
restarts it through the real recovery path and property-checks the
durability contract:

    recovered state == every *acked* write, plus at most a prefix of the
    writes that were in flight (appended, never acked) when the machine
    died.

Each seed drives three phases:

1. **Counting pass** — run a seeded workload with a passive injector,
   recording every crash-point site visit (and every KV write op).
2. **Armed pass** — re-run the identical workload with one crash point
   armed: a ``(site, hit, byte_offset)`` triple chosen from the counting
   pass, or a KV write-op index (which lands inside the fine-grained
   flush protocol, between slice writes and the meta fence).  The crash
   raises :class:`~repro.errors.SimulatedCrashError` — a ``BaseException``
   so it rips through ``except Exception`` resilience code exactly like
   a SIGKILL would.
3. **Machine death + recovery** — volatile state is discarded (the WAL's
   :class:`~repro.storage.wal.MemoryLogFile` truncates to its durable
   watermark, optionally after an OS-page-cache-style flush of the torn
   tail), the node restarts with a fresh :class:`WriteAheadLog` /
   :class:`NodeDurability` over the surviving bytes, recovers, and the
   oracle compares canonical profile fingerprints against references
   rebuilt from the acked-write ledger.

Every schedule is rerun under the same seed and must produce a
byte-identical result digest.  ``--prove-teeth`` additionally runs the
same workloads with durability detached and requires the oracle to
*catch* lost acked writes — the harness demonstrably fails when the WAL
is off, so a green run means something.

Usage::

    python -m repro.chaos.crashpoints --seeds 20
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
from dataclasses import dataclass, field

from ..clock import MILLIS_PER_DAY, SimulatedClock
from ..config import TableConfig
from ..errors import SimulatedCrashError
from ..server.node import IPSNode
from ..server.recovery import NodeDurability, RecoveryReport
from ..storage.kvstore import InMemoryKVStore, KVStore, VersionedValue
from ..storage.compression import decompress
from ..storage.serialization import RAW_COLUMN_MIN_ROWS, ProfileCodec
from ..storage.wal import NULL_SITE, MemoryLogFile, WriteAheadLog

NOW = 400 * MILLIS_PER_DAY

#: Salt so crash-point selection draws from a stream independent of the
#: workload generator's (same seed, different purpose).
_PLAN_SALT = 0x5EED_C0DE


# ----------------------------------------------------------------------
# Injection seams
# ----------------------------------------------------------------------


class CrashPointInjector:
    """Crash-point seam shared by the WAL and checkpoint writers.

    Passive by default: every ``write``/``reach`` call records a visit
    (site name, payload length — ``-1`` for pure reach points).  Once
    :meth:`arm`\\ ed, the matching visit writes only ``byte_offset`` bytes
    of its payload and raises :class:`SimulatedCrashError`.
    """

    def __init__(self) -> None:
        #: site -> payload length per visit (-1 for reach sites).
        self.visits: dict[str, list[int]] = {}
        self.fired = False
        self._armed_site: str | None = None
        self._armed_hit = -1
        self._offset = 0

    def arm(self, site: str, hit: int, byte_offset: int = 0) -> None:
        self._armed_site = site
        self._armed_hit = hit
        self._offset = byte_offset

    def _visit(self, site: str, length: int) -> int:
        hits = self.visits.setdefault(site, [])
        hits.append(length)
        return len(hits) - 1

    def write(self, site: str, data: bytes, sink) -> None:
        index = self._visit(site, len(data))
        if site == self._armed_site and index == self._armed_hit and not self.fired:
            self.fired = True
            cut = min(self._offset, len(data))
            if cut:
                sink(data[:cut])
            raise SimulatedCrashError(site, f"hit {index} after {cut} bytes")
        sink(data)

    def reach(self, site: str) -> None:
        index = self._visit(site, -1)
        if site == self._armed_site and index == self._armed_hit and not self.fired:
            self.fired = True
            raise SimulatedCrashError(site, f"hit {index}")


class CrashingKVStore:
    """KV wrapper that dies immediately before a chosen write operation.

    Op-granular crash points inside multi-op storage protocols: arming op
    *k* of a fine-grained flush kills the process between a slice write
    and the meta ``xset`` fence, leaving orphan slices for the recovery
    sweep.  Reads never crash (a dying machine stops writing first), and
    completed writes persist — the store models the *surviving* KV
    cluster, not the dying client.
    """

    def __init__(self, inner: KVStore) -> None:
        self._inner = inner
        self.write_ops = 0
        self.fired = False
        self._crash_at = -1

    def arm(self, op_index: int) -> None:
        self._crash_at = op_index

    def _mutating(self, op: str) -> None:
        if self.write_ops == self._crash_at and not self.fired:
            self.fired = True
            raise SimulatedCrashError(f"kv.{op}", f"write op {self.write_ops}")
        self.write_ops += 1

    def get(self, key: bytes) -> bytes | None:
        return self._inner.get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self._mutating("set")
        self._inner.set(key, value)

    def delete(self, key: bytes) -> None:
        self._mutating("delete")
        self._inner.delete(key)

    def xget(self, key: bytes) -> VersionedValue | None:
        return self._inner.xget(key)

    def xset(self, key: bytes, value: bytes, held_version: int | None) -> int:
        self._mutating("xset")
        return self._inner.xset(key, value, held_version)

    def keys(self):
        return self._inner.keys()


# ----------------------------------------------------------------------
# Seeded workload
# ----------------------------------------------------------------------

#: One logical write: (profile_id, timestamp_ms, slot, type_id, fid, counts).
Write = tuple[int, int, int, int, int, tuple[int, ...]]


@dataclass(frozen=True)
class WorkloadPlan:
    """A fully materialized, seed-deterministic op sequence."""

    seed: int
    fine_grained: bool
    sync: str
    checkpoint_interval: int
    #: ("write", Write) | ("batch", list[Write]) | ("maint", None)
    ops: tuple[tuple[str, object], ...]


def plan_workload(seed: int) -> WorkloadPlan:
    rng = random.Random(seed)
    profile_ids = [100 + i for i in range(rng.randrange(5, 11))]
    timestamp = NOW
    ops: list[tuple[str, object]] = []
    for _ in range(rng.randrange(90, 150)):
        timestamp += rng.randrange(10, 4000)
        roll = rng.random()
        if roll < 0.10:
            ops.append(("maint", None))
        elif roll < 0.22:
            pid = rng.choice(profile_ids)
            slot, type_id = rng.randrange(1, 3), rng.randrange(0, 2)
            if rng.random() < 0.45:
                # Columnar burst: enough distinct fids that the (slot,
                # type) group crosses RAW_COLUMN_MIN_ROWS, so its v2
                # encoding is raw int64 column dumps — torn KV/WAL/
                # checkpoint writes then land mid-memoryview.
                fids = rng.sample(
                    range(1, 200),
                    rng.randrange(
                        RAW_COLUMN_MIN_ROWS + 4, 2 * RAW_COLUMN_MIN_ROWS + 8
                    ),
                )
            else:
                fids = [
                    rng.randrange(1, 40) for _ in range(rng.randrange(2, 6))
                ]
            batch = [
                (pid, timestamp, slot, type_id, fid, (rng.randrange(1, 6),))
                for fid in fids
            ]
            ops.append(("batch", batch))
        else:
            ops.append((
                "write",
                (rng.choice(profile_ids), timestamp, rng.randrange(1, 3),
                 rng.randrange(0, 2), rng.randrange(1, 40),
                 (rng.randrange(1, 6),)),
            ))
    ops.append(("maint", None))  # A final flush/checkpoint opportunity.
    return WorkloadPlan(
        seed=seed,
        fine_grained=seed % 2 == 0,
        sync="always" if rng.random() < 0.5 else "group",
        checkpoint_interval=rng.choice((8, 16, 32)),
        ops=tuple(ops),
    )


def _batch_writes(payload) -> list[Write]:
    return list(payload)


@dataclass
class _Rig:
    """One node under test plus every seam the harness can reach."""

    node: IPSNode
    store: CrashingKVStore
    injector: CrashPointInjector
    wal_file: MemoryLogFile
    checkpoint_file: MemoryLogFile


def _build_rig(plan: WorkloadPlan, durable: bool) -> _Rig:
    injector = CrashPointInjector()
    store = CrashingKVStore(InMemoryKVStore())
    config = TableConfig(
        name="t",
        attributes=("click",),
        fine_grained_persistence=plan.fine_grained,
    )
    node = IPSNode(
        "crash-node",
        config,
        store,
        clock=SimulatedClock(NOW),
        cache_capacity_bytes=4096,
        swap_threshold=0.6,
        swap_target=0.4,
    )
    wal_file = MemoryLogFile()
    checkpoint_file = MemoryLogFile()
    if durable:
        node.durability = NodeDurability(
            WriteAheadLog(wal_file, sync=plan.sync, site=injector),
            checkpoint_file,
            checkpoint_interval_records=plan.checkpoint_interval,
            node_id=node.node_id,
            site=injector,
        )
    return _Rig(node, store, injector, wal_file, checkpoint_file)


def _execute(
    plan: WorkloadPlan, rig: _Rig, stop_after_ops: int | None = None
) -> tuple[list[Write], list[Write], SimulatedCrashError | None]:
    """Drive the plan; returns (acked, in-flight, crash or None).

    A write enters ``acked`` only when its node call returns — exactly
    the client-visible contract the oracle holds recovery to.
    """
    node = rig.node
    acked: list[Write] = []
    for index, (kind, payload) in enumerate(plan.ops):
        if stop_after_ops is not None and index >= stop_after_ops:
            break
        try:
            if kind == "maint":
                node.merge_write_table()
                node.run_cache_cycle()
            elif kind == "write":
                pid, ts, slot, type_id, fid, counts = payload
                node.add_profile(pid, ts, slot, type_id, fid, counts)
                acked.append(payload)
            else:
                writes = _batch_writes(payload)
                pid, ts, slot, type_id = writes[0][:4]
                node.add_profiles(
                    pid, ts, slot, type_id,
                    [w[4] for w in writes],
                    [w[5] for w in writes],
                )
                acked.extend(writes)
        except SimulatedCrashError as crash:
            inflight = [] if kind == "maint" else _batch_writes(
                [payload] if kind == "write" else payload
            )
            return acked, inflight, crash
    return acked, [], None


# ----------------------------------------------------------------------
# Crash-point selection (from the counting pass)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPlan:
    """The single death this schedule injects."""

    kind: str  # "site" or "kv"
    site: str = ""
    hit: int = 0
    byte_offset: int = -1  # -1: reach site (no bytes involved)
    kv_op: int = -1
    #: Model the OS having flushed the torn tail to disk before dying.
    flush_tail: bool = False

    def describe(self) -> str:
        if self.kind == "kv":
            return f"kv write op {self.kv_op}"
        where = self.site if self.byte_offset < 0 else (
            f"{self.site}+{self.byte_offset}B"
        )
        return f"{where} hit {self.hit}"


def choose_crash_plan(
    seed: int, visits: dict[str, list[int]], kv_write_ops: int
) -> CrashPlan:
    rng = random.Random(seed ^ _PLAN_SALT)
    candidates = sorted(site for site, hits in visits.items() if hits)
    if kv_write_ops > 0:
        candidates.append("kv")
    if not candidates:
        raise RuntimeError(f"seed {seed}: counting pass visited no crash sites")
    site = rng.choice(candidates)
    flush_tail = rng.random() < 0.5
    if site == "kv":
        return CrashPlan(
            kind="kv", kv_op=rng.randrange(kv_write_ops), flush_tail=flush_tail
        )
    hits = visits[site]
    hit = rng.randrange(len(hits))
    length = hits[hit]
    if length < 0:
        offset = -1
    elif length >= 48 and rng.random() < 0.5:
        # Large payloads carry raw int64 column sections (the zero-copy
        # v2 encoding); tearing in the interior lands mid-column rather
        # than in the varint header or the final bytes.
        offset = rng.randrange(16, length - 15)
    else:
        offset = rng.randrange(length + 1)
    return CrashPlan(
        kind="site", site=site, hit=hit, byte_offset=offset,
        flush_tail=flush_tail,
    )


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------


def profile_fingerprint(profile) -> tuple:
    """Canonical, order-independent digest of one profile's contents."""
    rows = []
    for data_slice in profile.slices:
        for slot, instance_set in data_slice.slots_items():
            for type_id, features in instance_set.items():
                for fid, stat in features.items():
                    rows.append((
                        data_slice.start_ms, data_slice.end_ms, slot,
                        type_id, fid, tuple(stat.counts),
                        stat.last_timestamp_ms,
                    ))
    return tuple(sorted(rows))


def node_state(node: IPSNode, profile_ids) -> dict[int, tuple]:
    """Fingerprint every profile the node can serve (memory or KV)."""
    state = {}
    for profile_id in sorted(set(profile_ids)):
        profile = node.cache.get(profile_id)
        if profile is None:
            continue
        fingerprint = profile_fingerprint(profile)
        if fingerprint:
            state[profile_id] = fingerprint
    return state


def expected_states(
    plan: WorkloadPlan, acked: list[Write], inflight: list[Write]
) -> list[dict[int, tuple]]:
    """Legal post-recovery states: acked + each prefix of the in-flight op."""
    config = TableConfig(name="t", attributes=("click",))
    reference = IPSNode(
        "reference", config, InMemoryKVStore(),
        clock=SimulatedClock(NOW), isolation_enabled=False,
    )
    profile_ids = {w[0] for w in acked} | {w[0] for w in inflight}
    for pid, ts, slot, type_id, fid, counts in acked:
        reference.add_profile(pid, ts, slot, type_id, fid, counts)
    states = [node_state(reference, profile_ids)]
    for pid, ts, slot, type_id, fid, counts in inflight:
        reference.add_profile(pid, ts, slot, type_id, fid, counts)
        states.append(node_state(reference, profile_ids))
    return states


def _digest(state: dict[int, tuple]) -> str:
    return hashlib.sha256(repr(sorted(state.items())).encode()).hexdigest()[:16]


def _count_raw_groups(blob: bytes) -> int:
    """Raw (zero-copy) column sections inside one persisted blob.

    KV values may be (compressed) whole-profile images, single-slice
    blobs or unrelated metadata; anything undecodable counts zero.
    """
    try:
        blob = decompress(blob)
    except Exception:
        pass  # not a compressed value (e.g. meta records) — try as-is
    for decode in (ProfileCodec.decode_profile, ProfileCodec.decode_slice):
        try:
            decoded = decode(blob)
        except Exception:
            continue
        slices = decoded.slices if hasattr(decoded, "slices") else [decoded]
        return sum(
            1
            for profile_slice in slices
            for _, instance_set in profile_slice.slots_items()
            for _, group in instance_set.groups_items()
            if group.is_columnar and len(group) >= RAW_COLUMN_MIN_ROWS
        )
    return 0


def count_surviving_raw_sections(store) -> int:
    """Raw column sections across every value in the (surviving) KV."""
    total = 0
    for key in list(store.keys()):
        value = store.get(key)
        if isinstance(value, (bytes, bytearray)):
            total += _count_raw_groups(bytes(value))
    return total


# ----------------------------------------------------------------------
# One schedule
# ----------------------------------------------------------------------


@dataclass
class ScheduleResult:
    """Everything one seeded crash schedule produced."""

    seed: int
    crash: str = ""
    sync: str = ""
    fine_grained: bool = False
    acked: int = 0
    inflight: int = 0
    matched_prefix: int = -1  # -1: state matched nothing legal
    ok: bool = False
    failure: str = ""
    state_digest: str = ""
    #: Raw (zero-copy) v2 column sections in the surviving KV after
    #: recovery — the harness requires these to occur somewhere across a
    #: run, or the mid-memoryview tear coverage would be vacuous.
    raw_sections: int = 0
    report: RecoveryReport | None = field(default=None, repr=False)

    def line(self) -> str:
        status = "ok" if self.ok else f"FAIL ({self.failure})"
        replayed = self.report.records_replayed if self.report else 0
        return (
            f"seed {self.seed:3d}  {status:<28s} crash={self.crash:<28s} "
            f"sync={self.sync:<6s} fg={int(self.fine_grained)} "
            f"acked={self.acked:3d} inflight={self.inflight} "
            f"replayed={replayed:3d} prefix=+{max(self.matched_prefix, 0)} "
            f"raw={self.raw_sections} digest={self.state_digest}"
        )


def run_schedule(seed: int) -> ScheduleResult:
    """Counting pass, armed pass, machine death, recovery, oracle."""
    plan = plan_workload(seed)
    result = ScheduleResult(
        seed=seed, sync=plan.sync, fine_grained=plan.fine_grained
    )

    counting = _build_rig(plan, durable=True)
    _, _, crash = _execute(plan, counting)
    if crash is not None:  # An unarmed rig must never die.
        result.failure = f"counting pass crashed: {crash}"
        return result
    crash_plan = choose_crash_plan(
        seed, counting.injector.visits, counting.store.write_ops
    )
    result.crash = crash_plan.describe()

    armed = _build_rig(plan, durable=True)
    if crash_plan.kind == "kv":
        armed.store.arm(crash_plan.kv_op)
    else:
        armed.injector.arm(
            crash_plan.site, crash_plan.hit, max(crash_plan.byte_offset, 0)
        )
    acked, inflight, crash = _execute(plan, armed)
    result.acked, result.inflight = len(acked), len(inflight)
    if crash is None:
        result.failure = "armed crash never fired"
        return result

    # Machine death: volatile bytes past the durable watermark are gone
    # (optionally the OS flushed the torn tail first), the process state
    # with them.  The KV cluster survives.
    if crash_plan.flush_tail:
        armed.wal_file.fsync()
    armed.wal_file.crash()
    armed.checkpoint_file.crash()
    armed.node.crash()

    # Restart: a fresh process re-opens the surviving log bytes.
    armed.node.durability = NodeDurability(
        WriteAheadLog(armed.wal_file, sync=plan.sync, site=NULL_SITE),
        armed.checkpoint_file,
        checkpoint_interval_records=plan.checkpoint_interval,
        node_id=armed.node.node_id,
    )
    result.report = armed.node.recover()

    legal = expected_states(plan, acked, inflight)
    recovered = node_state(armed.node, {w[0] for w in acked + inflight})
    result.state_digest = _digest(recovered)
    result.raw_sections = count_surviving_raw_sections(armed.store)
    for prefix, state in enumerate(legal):
        if recovered == state:
            result.matched_prefix = prefix
            result.ok = True
            break
    else:
        missing = sorted(set(legal[0]) - set(recovered))
        result.failure = (
            f"acked writes lost (profiles {missing})" if missing
            else "recovered state matches no acked-prefix"
        )
    return result


def run_teeth_proof(seed: int) -> ScheduleResult:
    """Same workload and oracle, durability off: loss should be caught."""
    plan = plan_workload(seed)
    rig = _build_rig(plan, durable=False)
    rng = random.Random(seed ^ _PLAN_SALT)
    stop_after = rng.randrange(len(plan.ops) // 2, len(plan.ops))
    acked, _, _ = _execute(plan, rig, stop_after_ops=stop_after)
    rig.node.crash()

    result = ScheduleResult(
        seed=seed, sync="off", fine_grained=plan.fine_grained,
        acked=len(acked), crash=f"power cut after op {stop_after}",
    )
    legal = expected_states(plan, acked, [])
    recovered = node_state(rig.node, {w[0] for w in acked})
    result.state_digest = _digest(recovered)
    if recovered == legal[0]:
        result.matched_prefix, result.ok = 0, True
    else:
        result.failure = "acked writes lost (no WAL)"
    return result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def run_harness(
    seeds: int = 20, base_seed: int = 0, prove_teeth: bool = True
) -> tuple[list[ScheduleResult], list[str]]:
    """All schedules plus the determinism and teeth checks.

    Returns (results, problems); an empty problem list means the
    durability contract held everywhere it was attacked.
    """
    problems: list[str] = []
    results: list[ScheduleResult] = []
    for seed in range(base_seed, base_seed + seeds):
        first = run_schedule(seed)
        results.append(first)
        if not first.ok:
            problems.append(f"seed {seed}: {first.failure}")
            continue
        rerun = run_schedule(seed)
        if rerun.line() != first.line():
            problems.append(
                f"seed {seed}: rerun diverged\n  a: {first.line()}\n"
                f"  b: {rerun.line()}"
            )
    if results and not any(result.raw_sections for result in results):
        problems.append(
            "no raw (zero-copy) v2 column sections reached the KV in any "
            "schedule — the mid-memoryview torn-write coverage is vacuous"
        )
    if prove_teeth:
        losses = sum(
            not run_teeth_proof(seed).ok
            for seed in range(base_seed, base_seed + seeds)
        )
        if losses == 0:
            problems.append(
                "teeth proof failed: durability off, yet no seed lost an "
                "acked write — the oracle is not detecting anything"
            )
    return results, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded crash-point recovery harness"
    )
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument(
        "--skip-teeth", action="store_true",
        help="skip the durability-off loss-detection proof",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    results, problems = run_harness(
        seeds=args.seeds, base_seed=args.base_seed,
        prove_teeth=not args.skip_teeth,
    )
    if args.as_json:
        print(json.dumps(
            {
                "schedules": [result.line() for result in results],
                "problems": problems,
                "passed": sum(result.ok for result in results),
            },
            indent=2,
        ))
    else:
        for result in results:
            print(result.line())
        print(
            f"\n{sum(result.ok for result in results)}/{len(results)} "
            "schedules recovered exactly the acked writes"
        )
        if not args.skip_teeth:
            print("teeth proof: durability-off runs lose acked writes (caught)")
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
