"""Chaos smoke run (``python -m repro.chaos.smoke``; ``make chaos``).

Builds a two-region mini-deployment, injects a short seeded fault
timeline (node crash, RPC error/latency blip, KV errors), drives a
resilient client through it and checks the two properties the chaos
subsystem promises:

* **no unhandled exceptions** — every failure surfaces as a typed
  :class:`~repro.errors.IPSError` the client either absorbs or reports;
* **determinism** — two runs with the same seed produce identical fault
  injection counts and identical client error counts.

Exit status is non-zero if either property fails, so the target can gate
``make check``.
"""

from __future__ import annotations

import argparse
import json
import random

from ..clock import MILLIS_PER_DAY, SimulatedClock
from ..cluster.cluster import MultiRegionDeployment
from ..cluster.resilience import ResilienceConfig
from ..config import TableConfig
from ..core.query import SortType
from ..core.timerange import TimeRange
from ..errors import IPSError
from ..obs.registry import MetricsRegistry
from .engine import ChaosEngine, ChaosEvent


def run_once(seed: int, rounds: int = 20, reads_per_round: int = 30) -> dict:
    """One seeded chaos run; returns a JSON-able result summary."""
    start_ms = 400 * MILLIS_PER_DAY
    round_ms = 1_000
    clock = SimulatedClock(start_ms)
    registry = MetricsRegistry()
    config = TableConfig(name="chaos-smoke", attributes=("click",))
    deployment = MultiRegionDeployment(
        config,
        ["us", "eu"],
        nodes_per_region=2,
        clock=clock,
        registry=registry,
    )
    engine = ChaosEngine(deployment, seed=seed, registry=registry)
    engine.schedule_many(
        [
            ChaosEvent(start_ms + 3 * round_ms, 3 * round_ms, "node_crash", "us-node-0"),
            ChaosEvent(start_ms + 8 * round_ms, 3 * round_ms, "rpc_error", "us", 0.3),
            ChaosEvent(start_ms + 8 * round_ms, 3 * round_ms, "rpc_latency", "us", 20.0),
            ChaosEvent(start_ms + 13 * round_ms, 2 * round_ms, "kv_error", "us", 0.5),
        ]
    )
    client = deployment.client(
        "us",
        caller="chaos-smoke",
        resilience=ResilienceConfig(seed=seed),
    )
    window = TimeRange.absolute(
        start_ms - 30 * MILLIS_PER_DAY, start_ms + rounds * round_ms
    )

    for profile_id in range(40):
        client.add_profile(
            profile_id,
            start_ms - (profile_id + 1) * 3_600_000,
            1,
            1,
            profile_id % 20,
            {"click": 1 + profile_id % 3},
        )
    deployment.run_background_cycle()

    rng = random.Random(seed)
    reads = 0
    errors = 0
    for _ in range(rounds):
        engine.tick()
        for _ in range(reads_per_round):
            profile_id = rng.randrange(40)
            reads += 1
            try:
                client.get_profile_topk(
                    profile_id, 1, 1, window, SortType.TOTAL, k=5
                )
            except IPSError:
                errors += 1
        clock.advance(round_ms)
    engine.tick()  # past the last window: revert everything still active

    summary = {
        key: value
        for key, value in client.resilience_summary().items()
        if key != "breaker_states"
    }
    return {
        "seed": seed,
        "reads": reads,
        "errors": errors,
        "faults": engine.fault_counts(),
        "resilience": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument(
        "--json", action="store_true", help="emit the run summaries as JSON"
    )
    args = parser.parse_args(argv)

    first = run_once(args.seed, rounds=args.rounds)
    second = run_once(args.seed, rounds=args.rounds)

    if args.json:
        print(json.dumps({"first": first, "second": second}, indent=2))
    else:
        print(f"chaos smoke: seed={args.seed} rounds={args.rounds}")
        print(f"  reads={first['reads']} errors={first['errors']}")
        print(f"  faults={first['faults']}")
        print(f"  resilience={first['resilience']}")

    first_bytes = json.dumps(first, sort_keys=True)
    second_bytes = json.dumps(second, sort_keys=True)
    if first_bytes != second_bytes:
        print("FAIL: same-seed runs diverged")
        print(f"  first : {first_bytes}")
        print(f"  second: {second_bytes}")
        return 1
    if not first["faults"]:
        print("FAIL: no faults were injected")
        return 1
    print("OK: two same-seed runs produced identical fault/error counts")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
