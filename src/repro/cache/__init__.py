"""GCache: the write-back compute cache of IPS (§III-C).

GCache holds resident profiles and consists of two sharded structures: the
*LRU list* driving swap-out decisions and the *dirty list* driving flushes
to the persistent key-value store.  Sharding by profile id reduces lock
contention among the background swap threads; a ``try_lock``-and-skip
discipline avoids blocking on entries another thread is already handling.
"""

from .dirty import ShardedDirtyList
from .gcache import CacheEntry, CacheMetrics, GCache
from .lru import LRUShard, ShardedLRU

__all__ = [
    "CacheEntry",
    "CacheMetrics",
    "GCache",
    "LRUShard",
    "ShardedDirtyList",
    "ShardedLRU",
]
