"""Sharded dirty list (§III-C, Fig. 9).

Updated or newly written profiles are tracked on a dirty list until flush
threads persist them to the key-value store.  Like the LRU list, the dirty
list is sharded by profile id; the paper requires the number of flush
threads to be a multiple of the shard count so that every shard has at
least one dedicated flusher and threads do not interfere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class DirtyShard:
    """One dirty-list partition, FIFO ordered by first-dirty time."""

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self.lock = threading.Lock()
        #: profile_id -> dirty-sequence number of the *latest* mutation.
        self._entries: OrderedDict[int, int] = OrderedDict()

    def mark(self, profile_id: int, sequence: int) -> None:
        """Mark a profile dirty at a mutation sequence number.

        Re-marking keeps the original FIFO position but bumps the sequence,
        so a flush that raced with a concurrent write can detect the entry
        is dirty again.
        """
        with self.lock:
            if profile_id in self._entries:
                self._entries[profile_id] = sequence
            else:
                self._entries[profile_id] = sequence

    def peek_batch(self, limit: int) -> list[tuple[int, int]]:
        """Snapshot up to ``limit`` oldest (profile_id, sequence) pairs."""
        with self.lock:
            batch = []
            for profile_id, sequence in self._entries.items():
                batch.append((profile_id, sequence))
                if len(batch) >= limit:
                    break
            return batch

    def clear_if_unchanged(self, profile_id: int, sequence: int) -> bool:
        """Remove an entry only if no newer mutation arrived since ``sequence``.

        Returns True if the entry was removed (the flush covered the latest
        state) and False if the profile was re-dirtied mid-flush and must be
        flushed again.
        """
        with self.lock:
            current = self._entries.get(profile_id)
            if current is None:
                return True
            if current == sequence:
                del self._entries[profile_id]
                return True
            return False

    def discard(self, profile_id: int) -> None:
        with self.lock:
            self._entries.pop(profile_id, None)

    def ids(self) -> list[int]:
        """Snapshot of the profile ids currently dirty in this shard."""
        with self.lock:
            return list(self._entries.keys())

    def sequence_of(self, profile_id: int) -> int | None:
        """Current dirty sequence for a profile, or None if clean."""
        with self.lock:
            return self._entries.get(profile_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, profile_id: int) -> bool:
        with self.lock:
            return profile_id in self._entries


class ShardedDirtyList:
    """The full sharded dirty list."""

    def __init__(self, num_shards: int = 4) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self._shards = [DirtyShard(index) for index in range(num_shards)]
        self._sequence = 0
        self._sequence_lock = threading.Lock()

    def next_sequence(self) -> int:
        with self._sequence_lock:
            self._sequence += 1
            return self._sequence

    def shard_for(self, profile_id: int) -> DirtyShard:
        return self._shards[hash(profile_id) % self.num_shards]

    def shard_at(self, index: int) -> DirtyShard:
        return self._shards[index % self.num_shards]

    def mark(self, profile_id: int) -> int:
        """Mark a profile dirty; returns the mutation sequence assigned."""
        sequence = self.next_sequence()
        self.shard_for(profile_id).mark(profile_id, sequence)
        return sequence

    def discard(self, profile_id: int) -> None:
        self.shard_for(profile_id).discard(profile_id)

    def dirty_ids(self) -> list[int]:
        """Snapshot of every dirty profile id across all shards."""
        ids: list[int] = []
        for shard in self._shards:
            ids.extend(shard.ids())
        return ids

    def __contains__(self, profile_id: int) -> bool:
        return profile_id in self.shard_for(profile_id)

    def total_entries(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def validate_flush_threads(self, num_flush_threads: int) -> None:
        """Enforce the paper's rule: flushers must be a multiple of shards."""
        if num_flush_threads <= 0 or num_flush_threads % self.num_shards != 0:
            raise ValueError(
                f"number of flush threads ({num_flush_threads}) must be a "
                f"positive multiple of dirty shards ({self.num_shards})"
            )
