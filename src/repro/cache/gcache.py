"""GCache: the write-back cache tying LRU, dirty list and persistence together.

GCache fronts the profile table: serving threads call :meth:`get` /
:meth:`put` / :meth:`mark_dirty`, swap workers evict cold profiles when
memory exceeds the configured threshold, and flush workers persist dirty
profiles through a pluggable ``flush_fn`` (the persistence manager).  On a
cache miss, :meth:`get` invokes ``load_fn`` to reload the profile from the
key-value store.

Two execution modes are supported:

* **deterministic** — tests and benchmarks call :meth:`run_swap_once` and
  :meth:`run_flush_once` directly;
* **background** — :meth:`start_workers` spawns real swap/flush threads
  with the paper's constraint that flush threads are a multiple of dirty
  shards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.profile import ProfileData
from ..obs.trace import NULL_TRACER
from .dirty import ShardedDirtyList
from .lru import ShardedLRU

#: Loads a profile from persistent storage; returns None if absent there too.
LoadFn = Callable[[int], ProfileData | None]
#: Persists one profile; raising marks the flush failed (entry stays dirty).
FlushFn = Callable[[ProfileData], None]
#: Receives a profile that was evicted while still dirty (flush-before-swap).
EvictFn = Callable[[ProfileData], None]
#: Observer of profile mutations crossing the cache: called with the
#: profile id whenever resident state changes (dirty mark, dirty/replace
#: install, recovery install) and with ``None`` when every entry is
#: dropped at once (crash semantics).  Clean miss-loads and flush-before-
#: evict do not fire — they change residency, not data.  The server's
#: query-result cache hangs its invalidation off this hook.
InvalidationHook = Callable[[int | None], None]


@dataclass
class CacheMetrics:
    """Counters exposed for Fig. 18-style monitoring."""

    hits: int = 0
    misses: int = 0
    loads: int = 0
    swaps: int = 0
    swap_skips: int = 0
    flushes: int = 0
    flush_failures: int = 0
    flush_requeues: int = 0
    recovered_installs: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CacheEntry:
    """Residency record for one profile."""

    profile: ProfileData
    #: Per-entry lock honoured by the try_lock swap discipline.
    lock: threading.Lock = field(default_factory=threading.Lock)


class GCache:
    """Sharded write-back cache over a profile population."""

    def __init__(
        self,
        load_fn: LoadFn,
        flush_fn: FlushFn,
        capacity_bytes: int = 64 * 1024 * 1024,
        swap_threshold: float = 0.85,
        swap_target: float = 0.80,
        lru_shards: int = 16,
        dirty_shards: int = 4,
        evict_callback: EvictFn | None = None,
        invalidation_hook: InvalidationHook | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        if not 0.0 < swap_target <= swap_threshold <= 1.0:
            raise ValueError(
                "need 0 < swap_target <= swap_threshold <= 1, got "
                f"target={swap_target}, threshold={swap_threshold}"
            )
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self._load_fn = load_fn
        self._flush_fn = flush_fn
        self._evict_callback = evict_callback
        self._invalidation_hook = invalidation_hook
        self.tracer = tracer
        self.capacity_bytes = capacity_bytes
        self.swap_threshold = swap_threshold
        self.swap_target = swap_target
        self.lru = ShardedLRU(lru_shards)
        self.dirty = ShardedDirtyList(dirty_shards)
        self.metrics = CacheMetrics()
        self._entries: dict[int, CacheEntry] = {}
        self._entries_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._workers: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Serving-path API
    # ------------------------------------------------------------------

    def get(self, profile_id: int) -> ProfileData | None:
        """Look up a profile, loading it from persistence on a miss.

        Returns ``None`` only when the profile exists in neither the cache
        nor the persistent store.
        """
        with self.tracer.span("cache.get", profile=profile_id) as span:
            entry = self._entry(profile_id)
            if entry is not None:
                self.metrics.hits += 1
                self.lru.touch(profile_id, entry.profile.memory_bytes())
                span.tag(hit=True)
                return entry.profile
            self.metrics.misses += 1
            span.tag(hit=False)
            loaded = self._load_fn(profile_id)
            if loaded is None:
                return None
            self.metrics.loads += 1
            self._install(loaded, dirty=False)
            return loaded

    def get_resident(self, profile_id: int) -> ProfileData | None:
        """Look up a profile without triggering a load (peeking)."""
        entry = self._entry(profile_id)
        return entry.profile if entry is not None else None

    def get_many(
        self, profile_ids
    ) -> tuple[dict[int, ProfileData | None], dict[int, Exception]]:
        """Batched lookup: one probe pass, then a grouped miss-fill.

        The residency probe runs over the whole batch first (hits are
        counted and LRU-touched exactly as :meth:`get` would), and only
        then are the collected misses loaded from persistence in one
        grouped pass.  A load failure is captured per key instead of
        aborting the batch; the second mapping carries those exceptions.
        ``None`` in the first mapping means the profile exists in neither
        the cache nor the persistent store.
        """
        with self.tracer.span("cache.get_many") as span:
            profiles: dict[int, ProfileData | None] = {}
            errors: dict[int, Exception] = {}
            missing: list[int] = []
            with self._entries_lock:
                for profile_id in profile_ids:
                    if profile_id in profiles or profile_id in errors:
                        continue
                    entry = self._entries.get(profile_id)
                    if entry is not None:
                        profiles[profile_id] = entry.profile
                    else:
                        missing.append(profile_id)
            hits = len(profiles)
            for profile_id, profile in profiles.items():
                self.metrics.hits += 1
                self.lru.touch(profile_id, profile.memory_bytes())
            for profile_id in missing:
                self.metrics.misses += 1
                try:
                    loaded = self._load_fn(profile_id)
                except Exception as exc:  # Degrade the key, not the batch.
                    errors[profile_id] = exc
                    continue
                if loaded is None:
                    profiles[profile_id] = None
                    continue
                self.metrics.loads += 1
                self._install(loaded, dirty=False)
                profiles[profile_id] = loaded
            span.tag(hits=hits, misses=len(missing))
            return profiles, errors

    def put(self, profile: ProfileData, dirty: bool = True) -> None:
        """Install (or replace) a resident profile, marking it dirty."""
        self._install(profile, dirty=dirty)

    def set_invalidation_hook(self, hook: InvalidationHook | None) -> None:
        """Attach (or clear) the mutation observer after construction."""
        self._invalidation_hook = hook

    def _notify_invalidation(self, profile_id: int | None) -> None:
        if self._invalidation_hook is not None:
            self._invalidation_hook(profile_id)

    def mark_dirty(self, profile_id: int) -> None:
        """Record that a resident profile mutated and must be re-flushed."""
        entry = self._entry(profile_id)
        if entry is None:
            return
        self.dirty.mark(profile_id)
        self.lru.update_cost(profile_id, entry.profile.memory_bytes())
        self._notify_invalidation(profile_id)

    def install_recovered(self, profile: ProfileData) -> None:
        """Install a crash-recovered profile as resident *and dirty*.

        Recovery rebuilds profiles from the checkpoint base plus the WAL
        tail, so the freshly rebuilt state supersedes whatever the KV
        store holds and must be queued for re-flush — this is how the
        dirty list is rebuilt after a crash.
        """
        self._install(profile, dirty=True)
        self.metrics.recovered_installs += 1

    def resident_ids(self) -> list[int]:
        """Ids of every resident profile (checkpoint enumeration)."""
        with self._entries_lock:
            return list(self._entries.keys())

    def entry_lock(self, profile_id: int) -> threading.Lock | None:
        """Expose the per-entry lock for serving-path critical sections."""
        entry = self._entry(profile_id)
        return entry.lock if entry is not None else None

    def _entry(self, profile_id: int) -> CacheEntry | None:
        with self._entries_lock:
            return self._entries.get(profile_id)

    def _install(self, profile: ProfileData, dirty: bool) -> None:
        with self._entries_lock:
            replaced = self._entries.get(profile.profile_id)
            self._entries[profile.profile_id] = CacheEntry(profile)
        self.lru.touch(profile.profile_id, profile.memory_bytes())
        if dirty:
            self.dirty.mark(profile.profile_id)
        # Dirty installs (writes, recovery) and replacements of a resident
        # entry with a different object change readable state; a clean
        # miss-load of an absent profile does not.
        if dirty or (replaced is not None and replaced.profile is not profile):
            self._notify_invalidation(profile.profile_id)

    # ------------------------------------------------------------------
    # Swap (eviction)
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.lru.total_bytes()

    def memory_ratio(self) -> float:
        return self.memory_bytes() / self.capacity_bytes

    def needs_swap(self) -> bool:
        return self.memory_ratio() > self.swap_threshold

    def run_swap_once(self, max_evictions: int = 1024) -> int:
        """One swap pass: evict LRU entries until usage reaches the target.

        Scans shards largest-first (§III-C).  Dirty entries are flushed
        before eviction so no data is lost.  Entries whose lock is held are
        skipped rather than waited on — the try_lock discipline of Fig. 8.
        Returns the number of evicted profiles.
        """
        if not self.needs_swap():
            return 0
        target_bytes = int(self.capacity_bytes * self.swap_target)
        evicted = 0
        # Entries whose eviction failed this pass (e.g. the flush-before-
        # evict hit a storage error) are skipped for the rest of the pass:
        # one attempt per entry bounds the work under a storage outage.
        failed: set[int] = set()
        for shard in self.lru.shards_by_size():
            while self.memory_bytes() > target_bytes and evicted < max_evictions:
                popped = shard.pop_lru(
                    skip=lambda pid: pid in failed or self._skip_locked(pid)
                )
                if popped is None:
                    break  # Shard drained, locked or all-failed; next shard.
                profile_id, _cost = popped
                if self._evict(profile_id):
                    evicted += 1
                else:
                    failed.add(profile_id)
            if self.memory_bytes() <= target_bytes or evicted >= max_evictions:
                break
        return evicted

    def _skip_locked(self, profile_id: int) -> bool:
        """try_lock probe: True means another thread owns the entry, skip it."""
        entry = self._entry(profile_id)
        if entry is None:
            return False  # Stale LRU record; pop it so it gets dropped.
        acquired = entry.lock.acquire(blocking=False)
        if not acquired:
            self.metrics.swap_skips += 1
            return True
        entry.lock.release()
        return False

    def _evict(self, profile_id: int) -> bool:
        entry = self._entry(profile_id)
        if entry is None:
            return False
        with entry.lock:
            if profile_id in self.dirty:
                try:
                    self._flush_fn(entry.profile)
                    self.metrics.flushes += 1
                except Exception:
                    self.metrics.flush_failures += 1
                    # Keep the profile resident rather than lose data.
                    self.lru.touch(profile_id, entry.profile.memory_bytes())
                    return False
                self.dirty.discard(profile_id)
            with self._entries_lock:
                self._entries.pop(profile_id, None)
        self.metrics.swaps += 1
        if self._evict_callback is not None:
            self._evict_callback(entry.profile)
        return True

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def run_flush_once(self, shard_index: int | None = None, batch: int = 256) -> int:
        """One flush pass over one dirty shard (or all shards).

        Flushing snapshots the dirty sequence before persisting; if the
        profile is re-dirtied mid-flush the entry stays on the list so the
        newer state is flushed on the next pass.  Returns flush count.
        """
        shard_indices = (
            range(self.dirty.num_shards) if shard_index is None else [shard_index]
        )
        flushed = 0
        for index in shard_indices:
            shard = self.dirty.shard_at(index)
            for profile_id, sequence in shard.peek_batch(batch):
                entry = self._entry(profile_id)
                if entry is None:
                    shard.discard(profile_id)
                    continue
                try:
                    with entry.lock:
                        self._flush_fn(entry.profile)
                except Exception:
                    self.metrics.flush_failures += 1
                    continue
                self.metrics.flushes += 1
                flushed += 1
                if not shard.clear_if_unchanged(profile_id, sequence):
                    self.metrics.flush_requeues += 1
        return flushed

    def flush_ids(self, profile_ids) -> list[int]:
        """Flush exactly these profiles now; returns the ids that failed.

        The checkpoint path uses this to drain the profiles that were
        dirty *at the barrier* without chasing entries re-dirtied by
        writes arriving mid-flush (which would starve the checkpoint
        under sustained load).  Same discipline as :meth:`run_flush_once`:
        a profile re-dirtied during its flush stays on the dirty list,
        but its flush still persisted all pre-flush state, so it does not
        count as a failure.
        """
        failed: list[int] = []
        for profile_id in profile_ids:
            shard = self.dirty.shard_for(profile_id)
            entry = self._entry(profile_id)
            if entry is None:
                shard.discard(profile_id)
                continue
            sequence = shard.sequence_of(profile_id)
            if sequence is None:
                continue  # Already flushed (e.g. by a concurrent pass).
            try:
                with entry.lock:
                    self._flush_fn(entry.profile)
            except Exception:
                self.metrics.flush_failures += 1
                failed.append(profile_id)
                continue
            self.metrics.flushes += 1
            if not shard.clear_if_unchanged(profile_id, sequence):
                self.metrics.flush_requeues += 1
        return failed

    def drop_all(self) -> int:
        """Drop every resident entry *without* flushing (crash semantics).

        Used by the chaos engine's node-crash fault: a crashed process
        loses its cache and any unflushed dirty state; profiles reload
        from the KV store on the next miss.  Returns the number dropped.
        """
        with self._entries_lock:
            entries = list(self._entries.items())
            self._entries.clear()
        for profile_id, entry in entries:
            self.dirty.discard(profile_id)
            self.lru.remove(profile_id)
            if self._evict_callback is not None:
                self._evict_callback(entry.profile)
        # A crash loses unflushed dirty state: the next miss reloads an
        # *older* profile, so everything cached about this node is suspect.
        self._notify_invalidation(None)
        return len(entries)

    def flush_all(self) -> int:
        """Drain every dirty entry (shutdown / test helper)."""
        total = 0
        while self.dirty.total_entries():
            flushed = self.run_flush_once()
            if flushed == 0 and self.metrics.flush_failures:
                break  # Persistent store is failing; avoid spinning.
            total += flushed
        return total

    # ------------------------------------------------------------------
    # Background workers
    # ------------------------------------------------------------------

    def start_workers(
        self,
        num_swap_threads: int = 2,
        num_flush_threads: int | None = None,
        interval_s: float = 0.05,
    ) -> None:
        """Spawn swap and flush threads.

        ``num_flush_threads`` defaults to one per dirty shard and must be a
        multiple of the dirty shard count (§III-C).
        """
        if self._workers:
            raise RuntimeError("workers already started")
        if num_flush_threads is None:
            num_flush_threads = self.dirty.num_shards
        self.dirty.validate_flush_threads(num_flush_threads)
        self._stop_event.clear()
        for index in range(num_swap_threads):
            worker = threading.Thread(
                target=self._swap_loop,
                args=(interval_s,),
                name=f"gcache-swap-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        for index in range(num_flush_threads):
            worker = threading.Thread(
                target=self._flush_loop,
                args=(index % self.dirty.num_shards, interval_s),
                name=f"gcache-flush-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def stop_workers(self, flush_remaining: bool = True) -> None:
        self._stop_event.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers.clear()
        if flush_remaining:
            self.flush_all()

    def _swap_loop(self, interval_s: float) -> None:
        while not self._stop_event.wait(interval_s):
            self.run_swap_once()

    def _flush_loop(self, shard_index: int, interval_s: float) -> None:
        while not self._stop_event.wait(interval_s):
            self.run_flush_once(shard_index)

    # ------------------------------------------------------------------

    def resident_count(self) -> int:
        with self._entries_lock:
            return len(self._entries)

    def __contains__(self, profile_id: int) -> bool:
        return self._entry(profile_id) is not None
