"""Sharded LRU list (§III-C, Figs. 7-8).

The LRU cache is partitioned into shards hashed by profile id.  Each shard
is an ordered dict (most-recently-used last) behind its own lock, so a swap
thread working one shard never contends with serving threads touching other
shards.  Swap-out starts from the *largest* shard, and entry access during
swap uses ``try_lock`` semantics: if an entry's owner lock is held, the swap
thread skips it and proceeds instead of blocking (Fig. 8).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterator


class LRUShard:
    """One LRU partition: an ordered map of profile id -> cost in bytes."""

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self.lock = threading.Lock()
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._bytes = 0

    def touch(self, profile_id: int, cost_bytes: int) -> None:
        """Insert or refresh an entry as most recently used."""
        with self.lock:
            previous = self._entries.pop(profile_id, None)
            if previous is not None:
                self._bytes -= previous
            self._entries[profile_id] = cost_bytes
            self._bytes += cost_bytes

    def update_cost(self, profile_id: int, cost_bytes: int) -> bool:
        """Adjust an entry's cost without changing recency."""
        with self.lock:
            previous = self._entries.get(profile_id)
            if previous is None:
                return False
            self._entries[profile_id] = cost_bytes
            self._bytes += cost_bytes - previous
            return True

    def remove(self, profile_id: int) -> bool:
        with self.lock:
            previous = self._entries.pop(profile_id, None)
            if previous is None:
                return False
            self._bytes -= previous
            return True

    def pop_lru(
        self, skip: Callable[[int], bool] | None = None
    ) -> tuple[int, int] | None:
        """Pop the least-recently-used entry.

        ``skip`` implements the try_lock discipline: entries for which it
        returns True are left in place and the scan proceeds to the next
        oldest entry.  Returns ``(profile_id, cost_bytes)`` or ``None``.
        """
        with self.lock:
            for profile_id in self._entries:
                if skip is not None and skip(profile_id):
                    continue
                cost = self._entries.pop(profile_id)
                self._bytes -= cost
                return profile_id, cost
            return None

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, profile_id: int) -> bool:
        with self.lock:
            return profile_id in self._entries

    def keys_snapshot(self) -> list[int]:
        with self.lock:
            return list(self._entries.keys())


class ShardedLRU:
    """The full sharded LRU list."""

    def __init__(self, num_shards: int = 16) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self._shards = [LRUShard(index) for index in range(num_shards)]

    def shard_for(self, profile_id: int) -> LRUShard:
        return self._shards[hash(profile_id) % self.num_shards]

    def touch(self, profile_id: int, cost_bytes: int) -> None:
        self.shard_for(profile_id).touch(profile_id, cost_bytes)

    def update_cost(self, profile_id: int, cost_bytes: int) -> bool:
        return self.shard_for(profile_id).update_cost(profile_id, cost_bytes)

    def remove(self, profile_id: int) -> bool:
        return self.shard_for(profile_id).remove(profile_id)

    def __contains__(self, profile_id: int) -> bool:
        return profile_id in self.shard_for(profile_id)

    def total_bytes(self) -> int:
        return sum(shard.size_bytes for shard in self._shards)

    def total_entries(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shards_by_size(self) -> list[LRUShard]:
        """Shards sorted largest-first: the swap scan order (§III-C)."""
        return sorted(self._shards, key=lambda shard: shard.size_bytes, reverse=True)

    def iter_shards(self) -> Iterator[LRUShard]:
        return iter(self._shards)
