"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
environments that have wheel) work either way.
"""

from setuptools import setup

setup()
