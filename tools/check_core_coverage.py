#!/usr/bin/env python
"""Line-coverage floors for the hot subsystems with zero external deps.

The image has neither ``coverage`` nor ``pytest-cov``, and Python 3.11
predates ``sys.monitoring`` — so this uses the stdlib tracer directly: a
``sys.settrace`` hook records executed lines for files under the target
directories while the focused test files run in-process via
``pytest.main``.  Executable lines come from the compiled code objects'
``co_lines`` tables (every nested function/class body included).

Each target carries its own floor:

* ``src/repro/core`` — the query/profile engine the kernels tentpole
  doubled the implementations of; the differential suites must keep
  reaching both.
* ``src/repro/server`` — the node read/write paths plus the hot-read
  layer (result cache, singleflight, batch windows, durability), kept
  honest by the invalidation oracle and the coalescing suite.
* ``src/repro/obs`` — the judgment layer itself (metrics registry,
  tracer, tail sampler, SLO engine); an observability stack nobody
  tests is exactly the code that lies during an incident.

Fails the build when any target's aggregate line coverage drops below
its floor.  Run from the repo root (``make coverage-core`` does):
``python tools/check_core_coverage.py [--floor NAME=0.85 ...]``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: (name, directory, aggregate executed/executable floor).
TARGETS = (
    ("core", SRC / "repro" / "core", 0.85),
    ("server", SRC / "repro" / "server", 0.85),
    ("obs", SRC / "repro" / "obs", 0.85),
    # The array-native representation (PR 10) made the codec a correctness
    # seam: WAL/KV/checkpoint images are memoryview dumps of live columns.
    ("storage", SRC / "repro" / "storage", 0.85),
)

#: Test files that exercise the targets (kept explicit so the traced run
#: stays fast; the full suite is covered by ``make test`` untraced).
TRACED_TEST_FILES = (
    "tests/test_core_compaction.py",
    "tests/test_core_engine.py",
    "tests/test_core_feature.py",
    "tests/test_core_query.py",
    "tests/test_core_shrink.py",
    "tests/test_core_slice_profile.py",
    "tests/test_core_timerange.py",
    "tests/test_core_truncate.py",
    "tests/test_core_udaf_weighted.py",
    "tests/test_columnar.py",
    "tests/test_kernel_oracle.py",
    "tests/test_kernel_properties.py",
    "tests/test_query_oracle.py",
    "tests/test_query_properties_extra.py",
    "tests/test_hot_reload.py",
    # storage targets (columnar-native serialization + the stores it feeds)
    "tests/test_storage_serialization.py",
    "tests/test_serialization_properties.py",
    "tests/test_serialization_fuzz.py",
    "tests/test_storage_compression.py",
    "tests/test_storage_wal.py",
    "tests/test_storage_kvstore.py",
    "tests/test_storage_filestore.py",
    "tests/test_storage_persistence.py",
    "tests/test_storage_snapshot.py",
    "tests/test_storage_replication.py",
    "tests/test_storage_load_window.py",
    # server targets
    "tests/test_server_node.py",
    "tests/test_server_isolation.py",
    "tests/test_server_quota.py",
    "tests/test_server_rpc.py",
    "tests/test_server_proxy.py",
    "tests/test_server_service.py",
    "tests/test_server_maintenance_pool.py",
    "tests/test_server_coalesce.py",
    "tests/test_result_cache.py",
    "tests/test_result_cache_oracle.py",
    "tests/test_recovery.py",
    "tests/test_crashpoints.py",
    "tests/test_batch_query.py",
    # obs targets
    "tests/test_obs_registry.py",
    "tests/test_obs_trace.py",
    "tests/test_obs_slo.py",
    "tests/test_obs_tail.py",
)


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler marks executable, across nested scopes."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    code_type = type(code)
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
        for _start, _end, lineno in current.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def parse_floor_override(raw: str) -> tuple[str, float]:
    name, _, value = raw.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(
            f"expected NAME=RATIO, got {raw!r}"
        )
    return name, float(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--floor",
        type=parse_floor_override,
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help="override one target's floor, e.g. --floor server=0.80",
    )
    args = parser.parse_args()
    overrides = dict(args.floor)
    unknown = set(overrides) - {name for name, _, _ in TARGETS}
    if unknown:
        parser.error(f"unknown coverage targets: {sorted(unknown)}")

    sys.path.insert(0, str(SRC))
    import pytest  # after the path tweak, mirroring the Makefile env

    target_prefixes = tuple(str(directory) for _, directory, _ in TARGETS)
    executed: dict[str, set[int]] = {}
    wanted: dict[str, bool] = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        take = wanted.get(filename)
        if take is None:
            take = filename.startswith(target_prefixes)
            wanted[filename] = take
        if not take:
            return None
        lines = executed.setdefault(filename, set())
        lines.add(frame.f_lineno)

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        return local

    sys.settrace(tracer)
    try:
        exit_code = pytest.main(
            ["-q", "-p", "no:cacheprovider", *TRACED_TEST_FILES]
        )
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(
            f"traced test run failed (pytest exit {exit_code}); "
            "coverage not evaluated",
            file=sys.stderr,
        )
        return 1

    failed = False
    for name, directory, default_floor in TARGETS:
        floor = overrides.get(name, default_floor)
        total_executable = 0
        total_executed = 0
        report = []
        for path in sorted(directory.rglob("*.py")):
            lines = executable_lines(path)
            hit = executed.get(str(path), set()) & lines
            total_executable += len(lines)
            total_executed += len(hit)
            ratio = len(hit) / len(lines) if lines else 1.0
            report.append(
                (ratio, path.relative_to(ROOT), len(hit), len(lines))
            )

        coverage = (
            total_executed / total_executable if total_executable else 1.0
        )
        for ratio, rel_path, hit, lines in sorted(report):
            print(f"  {ratio:6.1%}  {hit:4d}/{lines:<4d}  {rel_path}")
        print(
            f"{name} coverage {coverage:.1%} "
            f"({total_executed}/{total_executable} lines, floor {floor:.0%})"
        )
        if coverage < floor:
            print(
                f"{name} coverage {coverage:.1%} below floor {floor:.0%}",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
