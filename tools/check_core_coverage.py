#!/usr/bin/env python
"""Line-coverage floor for ``src/repro/core`` with zero external deps.

The image has neither ``coverage`` nor ``pytest-cov``, and Python 3.11
predates ``sys.monitoring`` — so this uses the stdlib tracer directly: a
``sys.settrace`` hook records executed lines for files under
``src/repro/core`` while the core-focused test files run in-process via
``pytest.main``.  Executable lines come from the compiled code objects'
``co_lines`` tables (every nested function/class body included).

Fails the build when aggregate line coverage over the core drops below
the floor — the kernels tentpole doubled the number of hot-path
implementations, and the differential suites must keep reaching both.

Run from the repo root (``make coverage-core`` does):
``python tools/check_core_coverage.py [--floor 0.85]``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
TARGET_DIR = SRC / "repro" / "core"

#: Aggregate executed/executable line ratio the core must keep.
DEFAULT_FLOOR = 0.85

#: Test files that exercise repro.core (kept explicit so the traced run
#: stays fast; the full suite is covered by ``make test`` untraced).
CORE_TEST_FILES = (
    "tests/test_core_compaction.py",
    "tests/test_core_engine.py",
    "tests/test_core_feature.py",
    "tests/test_core_query.py",
    "tests/test_core_shrink.py",
    "tests/test_core_slice_profile.py",
    "tests/test_core_timerange.py",
    "tests/test_core_truncate.py",
    "tests/test_core_udaf_weighted.py",
    "tests/test_kernel_oracle.py",
    "tests/test_kernel_properties.py",
    "tests/test_query_oracle.py",
    "tests/test_query_properties_extra.py",
    "tests/test_hot_reload.py",
)


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler marks executable, across nested scopes."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    code_type = type(code)
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
        for _start, _end, lineno in current.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"minimum aggregate line coverage (default {DEFAULT_FLOOR})",
    )
    args = parser.parse_args()

    sys.path.insert(0, str(SRC))
    import pytest  # after the path tweak, mirroring the Makefile env

    target_prefix = str(TARGET_DIR)
    executed: dict[str, set[int]] = {}
    wanted: dict[str, bool] = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        take = wanted.get(filename)
        if take is None:
            take = filename.startswith(target_prefix)
            wanted[filename] = take
        if not take:
            return None
        lines = executed.setdefault(filename, set())
        lines.add(frame.f_lineno)

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        return local

    sys.settrace(tracer)
    try:
        exit_code = pytest.main(
            ["-q", "-p", "no:cacheprovider", *CORE_TEST_FILES]
        )
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(
            f"core test run failed (pytest exit {exit_code}); "
            "coverage not evaluated",
            file=sys.stderr,
        )
        return 1

    total_executable = 0
    total_executed = 0
    report = []
    for path in sorted(TARGET_DIR.rglob("*.py")):
        lines = executable_lines(path)
        hit = executed.get(str(path), set()) & lines
        total_executable += len(lines)
        total_executed += len(hit)
        ratio = len(hit) / len(lines) if lines else 1.0
        report.append((ratio, path.relative_to(ROOT), len(hit), len(lines)))

    coverage = total_executed / total_executable if total_executable else 1.0
    for ratio, rel_path, hit, lines in sorted(report):
        print(f"  {ratio:6.1%}  {hit:4d}/{lines:<4d}  {rel_path}")
    print(
        f"core coverage {coverage:.1%} "
        f"({total_executed}/{total_executable} lines, floor {args.floor:.0%})"
    )
    if coverage < args.floor:
        print(
            f"core coverage {coverage:.1%} below floor {args.floor:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
