#!/usr/bin/env python
"""Perf history: snapshot the gated benches, diff against prior snapshots.

The bench suite gates individual claims (kernel speedup, trace overhead,
hot-tier hit ratio) but until now nothing *persisted* machine-readable
results, so a PR could quietly halve a number that still clears its gate.
This harness runs the same benches at smoke size, extracts the headline
metrics into a schema-versioned snapshot (``benchmarks/history/
BENCH_<n>.json``), and renders a tolerance-banded regression verdict
against earlier snapshots.

Tolerance model: every metric declares a direction (``better`` =
``lower`` | ``higher``) and a band ``max(abs_tol, rel_tol * |prev|)``.
Only movement in the *worse* direction beyond the band is a regression —
wall-clock metrics carry wide relative bands (machines differ), ratio
and count metrics carry tight absolute ones.  Snapshots contain no
timestamps or host info, so a re-run on the same tree is byte-stable
modulo the banded measurements themselves.

Usage (also ``make bench-history``)::

    python tools/bench_history.py                # snapshot + diff
    python tools/bench_history.py --update       # overwrite the baseline
    python tools/bench_history.py --list         # history across PRs
    python tools/bench_history.py --ingest F.json  # merge pytest-recorded
                                                   # metrics (conftest hook)
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.join(ROOT, "benchmarks"))

SCHEMA = "bench-history/v1"
#: This PR's snapshot number; bump per PR so history accumulates.
SNAPSHOT_NUMBER = 10
HISTORY_DIR = os.path.join(ROOT, "benchmarks", "history")
_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")


def metric(
    value: float,
    unit: str,
    better: str,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> dict:
    if better not in ("lower", "higher"):
        raise ValueError(f"better must be lower|higher, got {better!r}")
    return {
        "value": round(float(value), 6),
        "unit": unit,
        "better": better,
        "rel_tol": rel_tol,
        "abs_tol": abs_tol,
    }


# ----------------------------------------------------------------------
# Collectors — one per gated bench, smoke-sized
# ----------------------------------------------------------------------


def collect_kernels() -> dict[str, dict]:
    import bench_kernels

    case = bench_kernels.run_case(
        bench_kernels.GATE_FIDS, bench_kernels.GATE_K, repeats=3
    )
    out = {
        "kernels.python_ms": metric(
            case["python_ms"], "ms", "lower", rel_tol=0.6
        ),
    }
    if "numpy_ms" in case:
        out["kernels.numpy_warm_ms"] = metric(
            case["numpy_ms"], "ms", "lower", rel_tol=0.6
        )
        out["kernels.speedup"] = metric(
            case["speedup"], "x", "higher", rel_tol=0.4
        )

    cold = bench_kernels.run_cold_case(repeats=3)
    out["kernels.cold_over_warm"] = metric(
        cold["ratio"], "x", "lower", rel_tol=0.4
    )
    multiget = bench_kernels.run_multiget_case(repeats=3)
    out["kernels.multiget_vs_reference"] = metric(
        multiget["speedup_vs_reference"], "x", "higher", rel_tol=0.4
    )
    if "numpy" in bench_kernels.available_backends():
        out["kernels.multiget_vs_singles"] = metric(
            multiget["speedup_vs_singles"], "x", "higher", rel_tol=0.4
        )
    return out


def collect_server() -> dict[str, dict]:
    import bench_server_batching

    result = bench_server_batching.run_bench(**bench_server_batching._SMOKE)
    return {
        "server.hot_hit_ratio": metric(
            result["hot_hit_ratio"], "ratio", "higher", abs_tol=0.08
        ),
        "server.overall_hit_ratio": metric(
            result["overall_hit_ratio"], "ratio", "higher", abs_tol=0.08
        ),
        "server.cached_p99_us": metric(
            result["cached_p99_us"], "us", "lower", rel_tol=0.6
        ),
        "server.plain_p99_us": metric(
            result["plain_p99_us"], "us", "lower", rel_tol=0.6
        ),
    }


def collect_recovery() -> dict[str, dict]:
    import bench_recovery

    result = bench_recovery.run_bench(
        lengths=[800], interval_writes=800, overhead_writes=1500
    )
    longest = result["wal_length"][-1]
    group = result["ack_overhead"]["wal_group"]
    return {
        "recovery.replay_800_ms": metric(
            longest["recover_ms"], "ms", "lower", rel_tol=0.6
        ),
        "recovery.ack_overhead_group_x": metric(
            group["overhead_x"], "x", "lower", rel_tol=0.5, abs_tol=0.5
        ),
    }


def collect_trace() -> dict[str, dict]:
    import bench_trace_overhead

    # The kernel work in PR 10 made the base query path fast enough that
    # a 4-batch drive finishes in ~4 ms, where scheduler jitter swamps
    # the overhead fraction; 12 batches x 7 repeats keeps the denominator
    # above 10 ms and the fraction stable to a few points.
    result = bench_trace_overhead.run_bench(
        batch_size=64, num_batches=12, num_nodes=3, population=200, repeats=7
    )
    return {
        "trace.overhead_frac": metric(
            result["overhead"], "frac", "lower", abs_tol=0.10
        ),
        "trace.noop_span_ns": metric(
            result["noop_span_ns"], "ns", "lower", rel_tol=1.0
        ),
    }


def collect_availability() -> dict[str, dict]:
    import bench_fig17_real_availability as bench

    result = bench.run_bench(rounds=40, reads_per_round=60)

    def rate(arm):
        return arm["errors"] / arm["reads"] if arm["reads"] else 0.0

    # Both arms run the seeded incident mix, so these are deterministic:
    # zero tolerance on the resilient arm, a tight band on the naive one
    # (its exact value is the chaos schedule, not a perf property).
    return {
        "availability.resilient_error_rate": metric(
            rate(result["resilient"]), "ratio", "lower", abs_tol=0.005
        ),
        "availability.naive_error_rate": metric(
            rate(result["naive"]), "ratio", "lower", abs_tol=0.05
        ),
    }


def collect_cluster() -> dict[str, dict]:
    import bench_cluster_scaleout as bench

    scaling = bench.run_scaleout([1, 2], population=128, duration_ms=900.0)
    chaos = bench.run_chaos_failover(
        workers=2, population=128, duration_ms=1_500.0, kill_at_ms=500.0
    )
    # Real processes on whatever cores the host has: throughput bands are
    # very wide (rel_tol 0.8 ~= "still in the same order of magnitude");
    # the error rates are the real contract and carry tight bands.
    return {
        "cluster.qps_1_worker": metric(
            scaling[1]["qps"], "keys/s", "higher", rel_tol=0.8
        ),
        "cluster.qps_2_workers": metric(
            scaling[2]["qps"], "keys/s", "higher", rel_tol=0.8
        ),
        "cluster.scaleout_error_rate": metric(
            max(s["error_rate"] for s in scaling.values()),
            "ratio", "lower", abs_tol=0.005,
        ),
        "cluster.chaos_error_rate": metric(
            chaos["error_rate"], "ratio", "lower", abs_tol=0.01
        ),
    }


def collect_failover() -> dict[str, dict]:
    import bench_failover as bench

    result = bench.run_failover(
        population=96, duration_ms=4_000.0,
        kill_at_ms=600.0, revert_at_ms=2_800.0, ops_per_round=6,
    )
    # Error/empty rates are the availability contract: tight bands.
    # Bytes-per-delta is the proportionality claim — it is a codec
    # property, not a perf measurement, so its band is narrow too.
    return {
        "failover.error_rate": metric(
            result["error_rate"], "ratio", "lower", abs_tol=0.01
        ),
        "failover.range_empty_reads": metric(
            result["range_empty"], "reads", "lower", abs_tol=0.0
        ),
        "failover.bytes_per_delta": metric(
            result["bytes_per_delta"], "bytes", "lower",
            rel_tol=0.3, abs_tol=8.0,
        ),
        "failover.hints_drained": metric(
            result["hints_drained"], "deltas", "higher", rel_tol=0.9
        ),
    }


COLLECTORS = (
    ("kernels", collect_kernels),
    ("server", collect_server),
    ("recovery", collect_recovery),
    ("trace", collect_trace),
    ("availability", collect_availability),
    ("cluster", collect_cluster),
    ("failover", collect_failover),
)


def collect(only: str | None = None) -> dict[str, dict]:
    metrics: dict[str, dict] = {}
    for name, collector in COLLECTORS:
        if only is not None and name != only:
            continue
        print(f"bench-history: running {name} ...", flush=True)
        metrics.update(collector())
    return metrics


# ----------------------------------------------------------------------
# Snapshot I/O and diffing
# ----------------------------------------------------------------------


def snapshot_path(number: int) -> str:
    return os.path.join(HISTORY_DIR, f"BENCH_{number}.json")


def write_snapshot(number: int, metrics: dict[str, dict]) -> str:
    os.makedirs(HISTORY_DIR, exist_ok=True)
    path = snapshot_path(number)
    payload = {
        "schema": SCHEMA,
        "snapshot": number,
        "metrics": dict(sorted(metrics.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: unknown schema {payload.get('schema')!r} "
            f"(expected {SCHEMA})"
        )
    return payload


def list_snapshots() -> list[tuple[int, str]]:
    if not os.path.isdir(HISTORY_DIR):
        return []
    out = []
    for name in os.listdir(HISTORY_DIR):
        match = _SNAPSHOT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(HISTORY_DIR, name)))
    return sorted(out)


def diff(previous: dict[str, dict], current: dict[str, dict]) -> list[str]:
    """Regression messages comparing current metrics to a prior snapshot.

    The *previous* snapshot's tolerances judge the comparison (they are
    the contract the baseline was recorded under).
    """
    regressions = []
    for name in sorted(previous):
        if name not in current:
            print(f"  [gone]   {name} (was {previous[name]['value']:g})")
            continue
        prev, cur = previous[name], current[name]
        band = max(
            prev.get("abs_tol", 0.0),
            prev.get("rel_tol", 0.0) * abs(prev["value"]),
        )
        delta = cur["value"] - prev["value"]
        worse = delta > band if prev["better"] == "lower" else -delta > band
        status = "REGRESS" if worse else "ok"
        print(
            f"  [{status:>7}] {name}: {prev['value']:g} -> {cur['value']:g} "
            f"{prev['unit']} (band +-{band:g})"
        )
        if worse:
            regressions.append(
                f"{name}: {prev['value']:g} -> {cur['value']:g} "
                f"{prev['unit']} exceeds band {band:g} "
                f"in the worse ({prev['better']}-is-better) direction"
            )
    for name in sorted(set(current) - set(previous)):
        print(f"  [new]    {name} = {current[name]['value']:g}")
    return regressions


def show_history() -> None:
    snapshots = list_snapshots()
    if not snapshots:
        print("no snapshots recorded yet")
        return
    names: list[str] = []
    seen = set()
    loaded = [(number, load_snapshot(path)) for number, path in snapshots]
    for _, payload in loaded:
        for name in payload["metrics"]:
            if name not in seen:
                seen.add(name)
                names.append(name)
    header = "metric".ljust(36) + "".join(
        f"PR{number:>2}".rjust(12) for number, _ in loaded
    )
    print(header)
    for name in names:
        row = name.ljust(36)
        for _, payload in loaded:
            entry = payload["metrics"].get(name)
            row += (f"{entry['value']:>12g}" if entry else f"{'-':>12}")
        print(row)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="overwrite this PR's baseline with freshly collected metrics",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the metric history table"
    )
    parser.add_argument(
        "--only", choices=[name for name, _ in COLLECTORS],
        help="run a single collector (debugging; never writes baselines)",
    )
    parser.add_argument(
        "--ingest", metavar="FILE",
        help="merge metrics recorded by the pytest hook "
             "(IPS_BENCH_RECORD) into the collected set",
    )
    args = parser.parse_args()

    if args.list:
        show_history()
        return 0

    current = collect(only=args.only)
    if args.ingest:
        with open(args.ingest, encoding="utf-8") as handle:
            current.update(json.load(handle))

    baseline = snapshot_path(SNAPSHOT_NUMBER)
    if args.only and not os.path.exists(baseline):
        # A partial run must never become the baseline.
        for name, entry in sorted(current.items()):
            print(f"  {name} = {entry['value']:g} {entry['unit']}")
        return 0
    if (args.update and not args.only) or not os.path.exists(baseline):
        path = write_snapshot(SNAPSHOT_NUMBER, current)
        print(f"bench-history: wrote baseline {os.path.relpath(path, ROOT)}")
        # Still diff against the previous PR's snapshot when one exists.
        prior = [
            (number, path) for number, path in list_snapshots()
            if number < SNAPSHOT_NUMBER
        ]
        if prior:
            number, path = prior[-1]
            print(f"bench-history: diff vs BENCH_{number}.json")
            regressions = diff(load_snapshot(path)["metrics"], current)
            if regressions:
                print("bench-history: REGRESSIONS vs prior PR:")
                for line in regressions:
                    print(f"  {line}")
                return 1
        return 0

    print(
        f"bench-history: diff vs baseline "
        f"{os.path.relpath(baseline, ROOT)}"
    )
    regressions = diff(load_snapshot(baseline)["metrics"], current)
    if args.only:
        # A partial run can't judge the whole baseline.
        return 0
    if regressions:
        print("bench-history: REGRESSIONS:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("bench-history: no regressions beyond tolerance bands")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
