#!/usr/bin/env python
"""Lint: only ``repro.core.kernels`` may import numpy.

The columnar backend is an *optional* accelerator: every other module
must run (and every test must pass) on a numpy-free install, with the
``python`` reference backend picked automatically.  A stray top-level
``import numpy`` anywhere else would break the numpy-absent
configuration and smuggle float semantics into code that is specified
over Python ints.  This script walks ``src/repro``, ``benchmarks`` and
``tools`` and fails the build on any numpy import (plain, ``from``,
``__import__`` or ``importlib.import_module`` with a literal name)
outside ``src/repro/core/kernels``.

Run from the repo root (``make lint`` does):
``python tools/check_numpy_isolation.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIR = ROOT / "src" / "repro"
SCAN_DIRS = (SOURCE_DIR, ROOT / "benchmarks", ROOT / "tools")
#: The one package allowed to touch numpy.
ALLOWED_DIR = SOURCE_DIR / "core" / "kernels"


def _is_numpy(module: str | None) -> bool:
    return module is not None and (
        module == "numpy" or module.startswith("numpy.")
    )


def _dynamic_import_target(node: ast.Call) -> str | None:
    """The literal module name of ``__import__(...)`` /
    ``importlib.import_module(...)`` calls, if statically visible."""
    func = node.func
    is_dunder = isinstance(func, ast.Name) and func.id == "__import__"
    is_import_module = (
        isinstance(func, ast.Attribute)
        and func.attr == "import_module"
    )
    if not (is_dunder or is_import_module):
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _offenders_in(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(_is_numpy(alias.name) for alias in node.names):
                lines.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if _is_numpy(node.module):
                lines.append(node.lineno)
        elif isinstance(node, ast.Call):
            if _is_numpy(_dynamic_import_target(node)):
                lines.append(node.lineno)
    return lines


def main() -> int:
    failures = []
    for scan_dir in SCAN_DIRS:
        for path in sorted(scan_dir.rglob("*.py")):
            if path.is_relative_to(ALLOWED_DIR):
                continue
            for lineno in _offenders_in(path):
                failures.append(f"{path.relative_to(ROOT)}:{lineno}")
    if failures:
        print("numpy imported outside repro.core.kernels:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "route columnar work through repro.core.kernels.get_backend() "
            "so numpy stays an optional accelerator",
            file=sys.stderr,
        )
        return 1
    scanned = ", ".join(
        str(scan_dir.relative_to(ROOT)) for scan_dir in SCAN_DIRS
    )
    print(f"numpy isolation OK ({scanned})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
