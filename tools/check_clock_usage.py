#!/usr/bin/env python
"""Lint: no module outside ``clock.py`` may call ``time.time()`` directly.

All simulated/modelled time must flow through the active
:class:`repro.clock.Clock` (``now_ms``), and all real compute measurement
through :func:`repro.clock.perf_ms` — otherwise simulated runs silently
mix wall time into modelled results.  This script walks ``src/repro``,
``benchmarks`` and ``tools`` and fails the build on any direct
``time.time(...)`` call outside ``clock.py``.

A stricter tier applies to the SLO/tail-sampling modules
(``WALL_CLOCK_FREE``): error-budget windows and alert timelines must
replay byte-identically, so those files may not touch the ``time``
module *at all* — no ``perf_ms``, no ``SystemClock``, no ``import
time``.  They see time only through an injected clock.

A *looser* tier applies to ``src/repro/net/`` (``NET_REAL_TIME``): the
process-per-node cluster runs real sockets against the real wall clock,
so direct ``time.time()`` is permitted there — and **only** there.  The
same boundary holds for ``asyncio``: the event-loop runtime may be
imported only under ``src/repro/net/``, so the simulated/deterministic
core can never grow a hidden dependency on real scheduling.

Run from the repo root (``make lint`` does): ``python tools/check_clock_usage.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIR = ROOT / "src" / "repro"
#: Benchmarks and tools measure real elapsed time too — they must go
#: through ``perf_ms`` just like the library, so they are linted as well.
SCAN_DIRS = (SOURCE_DIR, ROOT / "benchmarks", ROOT / "tools")
#: The one module allowed to touch the wall clock.
ALLOWED = {SOURCE_DIR / "clock.py"}
#: The one *package* allowed real wall-clock time and asyncio: the
#: process-per-node cluster (real sockets, real processes, real time).
NET_REAL_TIME = SOURCE_DIR / "net"
#: The real-time exemption is a *roster*, not a directory wildcard: every
#: module under ``src/repro/net/`` must be listed here, so adding a file
#: to the package is a conscious decision to grant it wall-clock/asyncio
#: access (the lint fails on unlisted files — and on stale entries).
NET_MODULES = frozenset(
    {
        "__init__.py",
        "cluster.py",
        "registry.py",
        "replication.py",
        "transport.py",
        "wire.py",
        "worker.py",
    }
)
#: Modules that must be *fully* wall-clock-free: any use of the ``time``
#: module, ``perf_ms``, or ``SystemClock`` fails the lint.  Alert windows
#: and tail-sampling decisions must depend only on the injected clock.
WALL_CLOCK_FREE = {
    SOURCE_DIR / "obs" / "slo.py",
    SOURCE_DIR / "obs" / "tail.py",
}
_WALL_CLOCK_NAMES = {"perf_ms", "SystemClock"}


def _is_time_time(node: ast.Call) -> bool:
    func = node.func
    # time.time(...)
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return True
    return False


def _offenders_in(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_time_time(node):
            lines.append(node.lineno)
        # from time import time  — an alias that hides the call form above.
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "time" for alias in node.names):
                lines.append(node.lineno)
    return lines


def _wall_clock_offenders_in(path: Path) -> list[tuple[int, str]]:
    """Any route to wall time in a file that must be wall-clock-free."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time" or alias.name.startswith("time."):
                    offenders.append((node.lineno, "import time"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                offenders.append((node.lineno, "from time import ..."))
            else:
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_NAMES:
                        offenders.append(
                            (node.lineno, f"import of {alias.name}")
                        )
        elif isinstance(node, ast.Name) and node.id in _WALL_CLOCK_NAMES:
            offenders.append((node.lineno, f"use of {node.id}"))
        elif (
            isinstance(node, ast.Attribute)
            and node.attr in _WALL_CLOCK_NAMES
        ):
            offenders.append((node.lineno, f"use of .{node.attr}"))
    return offenders


def _asyncio_offenders_in(path: Path) -> list[int]:
    """Any asyncio import in a file outside the ``net/`` package."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "asyncio" or alias.name.startswith("asyncio."):
                    lines.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "asyncio" or module.startswith("asyncio."):
                lines.append(node.lineno)
    return lines


def _in_net_package(path: Path) -> bool:
    try:
        path.relative_to(NET_REAL_TIME)
    except ValueError:
        return False
    return True


def main() -> int:
    failures = []
    net_files = {
        path.name for path in NET_REAL_TIME.glob("*.py")
    }
    for name in sorted(net_files - NET_MODULES):
        failures.append(
            f"src/repro/net/{name}: not in the NET_MODULES roster — new "
            "net/ modules must be explicitly enrolled in the real-time "
            "lint tier (tools/check_clock_usage.py)"
        )
    for name in sorted(NET_MODULES - net_files):
        failures.append(
            f"src/repro/net/{name}: listed in NET_MODULES but missing"
        )
    for scan_dir in SCAN_DIRS:
        for path in sorted(scan_dir.rglob("*.py")):
            if not _in_net_package(path):
                for lineno in _asyncio_offenders_in(path):
                    failures.append(
                        f"{path.relative_to(ROOT)}:{lineno} (asyncio is "
                        "allowed only under src/repro/net/)"
                    )
            if path in ALLOWED or _in_net_package(path):
                continue
            for lineno in _offenders_in(path):
                failures.append(f"{path.relative_to(ROOT)}:{lineno}")
    for path in sorted(WALL_CLOCK_FREE):
        if not path.exists():
            failures.append(
                f"{path.relative_to(ROOT)}: listed in WALL_CLOCK_FREE "
                "but missing"
            )
            continue
        for lineno, what in _wall_clock_offenders_in(path):
            failures.append(
                f"{path.relative_to(ROOT)}:{lineno} ({what}; this module "
                "must be wall-clock-free)"
            )
    if failures:
        print(
            "clock/asyncio discipline violations (wall clock only in "
            "clock.py and src/repro/net/; asyncio only in src/repro/net/):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "use the active Clock's now_ms() for modelled time or "
            "repro.clock.perf_ms() for real compute measurement",
            file=sys.stderr,
        )
        return 1
    scanned = ", ".join(
        str(scan_dir.relative_to(ROOT)) for scan_dir in SCAN_DIRS
    )
    print(f"clock usage OK ({scanned}; net/ real-time tier exempt)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
