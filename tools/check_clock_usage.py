#!/usr/bin/env python
"""Lint: no module outside ``clock.py`` may call ``time.time()`` directly.

All simulated/modelled time must flow through the active
:class:`repro.clock.Clock` (``now_ms``), and all real compute measurement
through :func:`repro.clock.perf_ms` — otherwise simulated runs silently
mix wall time into modelled results.  This script walks ``src/repro``,
``benchmarks`` and ``tools`` and fails the build on any direct
``time.time(...)`` call outside ``clock.py``.

Run from the repo root (``make lint`` does): ``python tools/check_clock_usage.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIR = ROOT / "src" / "repro"
#: Benchmarks and tools measure real elapsed time too — they must go
#: through ``perf_ms`` just like the library, so they are linted as well.
SCAN_DIRS = (SOURCE_DIR, ROOT / "benchmarks", ROOT / "tools")
#: The one module allowed to touch the wall clock.
ALLOWED = {SOURCE_DIR / "clock.py"}


def _is_time_time(node: ast.Call) -> bool:
    func = node.func
    # time.time(...)
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return True
    return False


def _offenders_in(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_time_time(node):
            lines.append(node.lineno)
        # from time import time  — an alias that hides the call form above.
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "time" for alias in node.names):
                lines.append(node.lineno)
    return lines


def main() -> int:
    failures = []
    for scan_dir in SCAN_DIRS:
        for path in sorted(scan_dir.rglob("*.py")):
            if path in ALLOWED:
                continue
            for lineno in _offenders_in(path):
                failures.append(f"{path.relative_to(ROOT)}:{lineno}")
    if failures:
        print("direct time.time() usage outside clock.py:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "use the active Clock's now_ms() for modelled time or "
            "repro.clock.perf_ms() for real compute measurement",
            file=sys.stderr,
        )
        return 1
    scanned = ", ".join(
        str(scan_dir.relative_to(ROOT)) for scan_dir in SCAN_DIRS
    )
    print(f"clock usage OK ({scanned})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
